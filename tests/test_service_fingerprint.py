"""Fingerprint properties: exactness, invariance, and cache keying."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph
from repro.service import (
    PartitionRequest,
    canonical_fingerprint,
    exact_fingerprint,
    request_fingerprint,
)
from tests.conftest import random_hypergraph
from tests.strategies import partitionable_hypergraphs


def relabeled(h: Hypergraph, seed: int) -> Hypergraph:
    """A random module/net relabeling of ``h`` (same netlist)."""
    rng = random.Random(seed)
    perm = list(range(h.num_modules))
    rng.shuffle(perm)
    nets = [
        [perm[v] for v in h.pins(e)] for e in range(h.num_nets)
    ]
    order = list(range(h.num_nets))
    rng.shuffle(order)
    inverse = [0] * h.num_modules
    for old, new in enumerate(perm):
        inverse[new] = old
    return Hypergraph(
        [nets[e] for e in order],
        num_modules=h.num_modules,
        module_areas=[h.module_area(inverse[v]) for v in range(h.num_modules)],
        net_weights=(
            [h.net_weight(e) for e in order] if h.has_net_weights else None
        ),
    )


class TestExactFingerprint:
    def test_deterministic(self):
        h = random_hypergraph(3)
        assert exact_fingerprint(h) == exact_fingerprint(h)
        assert len(exact_fingerprint(h)) == 64

    def test_same_structure_same_hash(self):
        nets = [[0, 1], [1, 2, 3], [0, 3]]
        assert exact_fingerprint(Hypergraph(nets)) == exact_fingerprint(
            Hypergraph([list(n) for n in nets])
        )

    def test_structure_changes_hash(self):
        h1 = Hypergraph([[0, 1], [1, 2]])
        h2 = Hypergraph([[0, 1], [0, 2]])
        assert exact_fingerprint(h1) != exact_fingerprint(h2)

    def test_net_order_changes_hash(self):
        h1 = Hypergraph([[0, 1], [1, 2]])
        h2 = Hypergraph([[1, 2], [0, 1]])
        assert exact_fingerprint(h1) != exact_fingerprint(h2)

    def test_isolated_module_count_changes_hash(self):
        nets = [[0, 1], [1, 2]]
        assert exact_fingerprint(
            Hypergraph(nets, num_modules=3)
        ) != exact_fingerprint(Hypergraph(nets, num_modules=5))

    def test_areas_and_weights_change_hash(self):
        nets = [[0, 1], [1, 2]]
        plain = exact_fingerprint(Hypergraph(nets))
        assert (
            exact_fingerprint(Hypergraph(nets, module_areas=[2, 1, 1]))
            != plain
        )
        assert (
            exact_fingerprint(Hypergraph(nets, net_weights=[2.0, 1.0]))
            != plain
        )

    def test_names_do_not_change_hash(self):
        nets = [[0, 1], [1, 2]]
        named = Hypergraph(
            nets,
            module_names=["a", "b", "c"],
            net_names=["x", "y"],
            name="circuit",
        )
        assert exact_fingerprint(named) == exact_fingerprint(
            Hypergraph(nets)
        )

    def test_unit_weights_equal_no_weights(self):
        nets = [[0, 1], [1, 2]]
        assert exact_fingerprint(
            Hypergraph(nets, net_weights=[1.0, 1.0])
        ) == exact_fingerprint(Hypergraph(nets))


class TestCanonicalFingerprint:
    def test_differs_from_exact_domain(self):
        h = random_hypergraph(5)
        assert canonical_fingerprint(h) != exact_fingerprint(h)

    @settings(max_examples=40)
    @given(partitionable_hypergraphs(), st.integers(0, 2**16))
    def test_invariant_under_relabeling(self, h, seed):
        assert canonical_fingerprint(
            relabeled(h, seed)
        ) == canonical_fingerprint(h)

    def test_invariant_on_benchmark_circuit(self):
        h = random_hypergraph(7, num_modules=30, num_nets=40)
        for seed in range(5):
            assert canonical_fingerprint(
                relabeled(h, seed)
            ) == canonical_fingerprint(h)

    def test_distinguishes_different_structures(self):
        path = Hypergraph([[0, 1], [1, 2], [2, 3]])
        star = Hypergraph([[0, 1], [0, 2], [0, 3]])
        assert canonical_fingerprint(path) != canonical_fingerprint(star)

    def test_weights_still_matter(self):
        nets = [[0, 1], [1, 2]]
        assert canonical_fingerprint(
            Hypergraph(nets, net_weights=[2.0, 1.0])
        ) != canonical_fingerprint(Hypergraph(nets))

    def test_names_do_not_matter(self):
        nets = [[0, 1], [1, 2]]
        assert canonical_fingerprint(
            Hypergraph(nets, module_names=["a", "b", "c"])
        ) == canonical_fingerprint(Hypergraph(nets))

    def test_empty_hypergraph(self):
        assert canonical_fingerprint(Hypergraph([])) == canonical_fingerprint(
            Hypergraph([])
        )


class TestRequestFingerprint:
    def setup_method(self):
        self.h = random_hypergraph(1)

    def test_algorithm_and_seed_key(self):
        base = request_fingerprint(self.h, PartitionRequest("fm", seed=0))
        assert request_fingerprint(
            self.h, PartitionRequest("fm", seed=1)
        ) != base
        assert request_fingerprint(
            self.h, PartitionRequest("kl", seed=0)
        ) != base

    def test_irrelevant_knob_shares_cache_line(self):
        # ``restarts`` only matters to rcut: fm requests with different
        # restart counts are the same cache entry.
        assert request_fingerprint(
            self.h, PartitionRequest("fm", restarts=10)
        ) == request_fingerprint(
            self.h, PartitionRequest("fm", restarts=50)
        )

    def test_relevant_knob_splits_cache_line(self):
        assert request_fingerprint(
            self.h, PartitionRequest("rcut", restarts=10)
        ) != request_fingerprint(
            self.h, PartitionRequest("rcut", restarts=50)
        )
        assert request_fingerprint(
            self.h, PartitionRequest("fm", starts=1)
        ) != request_fingerprint(
            self.h, PartitionRequest("fm", starts=4)
        )
        assert request_fingerprint(
            self.h, PartitionRequest("ig-match", split_stride=1)
        ) != request_fingerprint(
            self.h, PartitionRequest("ig-match", split_stride=2)
        )

    def test_hypergraph_keys(self):
        req = PartitionRequest("ig-match")
        assert request_fingerprint(
            random_hypergraph(1), req
        ) != request_fingerprint(random_hypergraph(2), req)


class TestRequestValidation:
    def test_unknown_algorithm_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown algorithm"):
            PartitionRequest("simulated-annealing")

    def test_non_integer_seed_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="seed"):
            PartitionRequest("fm", seed="zero")

    def test_bounds(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            PartitionRequest("rcut", restarts=0)

    def test_from_mapping_rejects_unknown_keys(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown request field"):
            PartitionRequest.from_mapping({"algorithm": "fm", "sneed": 1})
