"""Tests for min-cut placement and the HPWL metric."""

import random

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.placement import hpwl, mincut_placement
from tests.conftest import random_hypergraph


class TestHpwl:
    def test_hand_computed(self):
        h = Hypergraph([[0, 1], [0, 1, 2]])
        positions = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]
        # net0 bbox: 1x0 -> 1 ; net1 bbox: 1x1 -> 2
        assert hpwl(h, positions) == pytest.approx(3.0)

    def test_colocated_is_free(self):
        h = Hypergraph([[0, 1, 2]])
        assert hpwl(h, [(0.3, 0.7)] * 3) == 0.0

    def test_degenerate_nets_ignored(self):
        h = Hypergraph([[0], [0, 1]], num_modules=2)
        assert hpwl(h, [(0, 0), (1, 1)]) == pytest.approx(2.0)

    def test_length_mismatch(self):
        h = Hypergraph([[0, 1]])
        with pytest.raises(PartitionError):
            hpwl(h, [(0, 0)])


class TestMincutPlacement:
    def test_positions_in_unit_square(self, small_circuit):
        placement = mincut_placement(small_circuit, levels=2)
        assert placement.grid == 4
        for x, y in placement.positions:
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0
        for col, row in placement.cell_of:
            assert 0 <= col < 4 and 0 <= row < 4

    def test_occupancy_roughly_balanced(self, small_circuit):
        placement = mincut_placement(small_circuit, levels=2)
        occupancy = placement.occupancy()
        expected = small_circuit.num_modules / 16
        assert max(occupancy.values()) <= 2 * expected + 2

    def test_beats_random_placement(self, medium_circuit):
        placement = mincut_placement(medium_circuit, levels=2)
        rng = random.Random(0)
        grid = placement.grid
        random_positions = [
            (
                (rng.randrange(grid) + 0.5) / grid,
                (rng.randrange(grid) + 0.5) / grid,
            )
            for _ in range(medium_circuit.num_modules)
        ]
        assert placement.wirelength < hpwl(
            medium_circuit, random_positions
        )

    def test_two_clusters_separate(self, two_cluster_hypergraph):
        placement = mincut_placement(two_cluster_hypergraph, levels=1)
        cells_a = {placement.cell_of[v] for v in range(4)}
        cells_b = {placement.cell_of[v] for v in range(4, 8)}
        assert not (cells_a & cells_b)

    def test_deterministic(self, small_circuit):
        a = mincut_placement(small_circuit, levels=2, seed=3)
        b = mincut_placement(small_circuit, levels=2, seed=3)
        assert a.positions == b.positions

    def test_details(self, small_circuit):
        placement = mincut_placement(small_circuit, levels=1)
        assert placement.details["levels"] == 1
        assert placement.details["hpwl"] == pytest.approx(
            placement.wirelength
        )

    def test_validation(self, small_circuit):
        with pytest.raises(PartitionError):
            mincut_placement(Hypergraph([[0]], num_modules=1))
        with pytest.raises(PartitionError):
            mincut_placement(small_circuit, levels=0)

    def test_beats_random_at_same_resolution(self, medium_circuit):
        # HPWL is only comparable at equal grid resolution (coarser
        # grids collocate modules for free), so compare level-3 min-cut
        # against random assignment on the same 8x8 grid.
        deep = mincut_placement(medium_circuit, levels=3)
        rng = random.Random(1)
        grid = deep.grid
        random_positions = [
            (
                (rng.randrange(grid) + 0.5) / grid,
                (rng.randrange(grid) + 0.5) / grid,
            )
            for _ in range(medium_circuit.num_modules)
        ]
        assert deep.wirelength < 0.7 * hpwl(
            medium_circuit, random_positions
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_random_instances(self, seed):
        h = random_hypergraph(seed, num_modules=24, num_nets=30)
        placement = mincut_placement(h, levels=2)
        assert len(placement.positions) == 24
        assert placement.wirelength >= 0
