"""Tests for hypergraph validation."""

import pytest

from repro.errors import ValidationError
from repro.hypergraph import Hypergraph, check, validate


def codes(report):
    return sorted(i.code for i in report.issues)


class TestValidate:
    def test_clean_netlist(self, tiny_hypergraph):
        report = validate(tiny_hypergraph)
        assert report.ok
        assert report.issues == []

    def test_empty_netlist_is_error(self):
        report = validate(Hypergraph([]))
        assert not report.ok
        assert "empty-netlist" in codes(report)

    def test_single_module_is_error(self):
        report = validate(Hypergraph([], num_modules=1))
        assert not report.ok
        assert "too-few-modules" in codes(report)

    def test_no_nets_is_error(self):
        report = validate(Hypergraph([], num_modules=3))
        assert not report.ok
        assert "no-nets" in codes(report)

    def test_empty_net_is_warning(self):
        report = validate(Hypergraph([[0, 1], []], num_modules=2))
        assert report.ok
        assert "empty-net" in codes(report)

    def test_single_pin_net_is_warning(self):
        report = validate(Hypergraph([[0, 1], [1]]))
        assert report.ok
        assert "single-pin-net" in codes(report)

    def test_isolated_module_is_warning(self):
        report = validate(Hypergraph([[0, 1]], num_modules=3))
        assert report.ok
        assert "isolated-module" in codes(report)

    def test_duplicate_net_is_warning(self):
        report = validate(Hypergraph([[0, 1], [1, 0]]))
        assert report.ok
        assert "duplicate-net" in codes(report)

    def test_warnings_and_errors_separated(self):
        report = validate(Hypergraph([[0]], num_modules=1))
        assert len(report.errors) >= 1
        assert len(report.warnings) >= 1


class TestCheck:
    def test_check_passes_clean(self, tiny_hypergraph):
        check(tiny_hypergraph)  # no exception

    def test_check_raises_on_error(self):
        with pytest.raises(ValidationError):
            check(Hypergraph([]))

    def test_check_allows_warnings(self):
        check(Hypergraph([[0, 1], [1]]))  # single-pin net tolerated
