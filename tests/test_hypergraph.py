"""Tests for the core Hypergraph data structure."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import Hypergraph


class TestConstruction:
    def test_basic_counts(self, tiny_hypergraph):
        assert tiny_hypergraph.num_modules == 4
        assert tiny_hypergraph.num_nets == 3
        assert tiny_hypergraph.num_pins == 7

    def test_empty_hypergraph(self):
        h = Hypergraph([])
        assert h.num_modules == 0
        assert h.num_nets == 0
        assert h.num_pins == 0

    def test_explicit_module_count_allows_isolated(self):
        h = Hypergraph([[0, 1]], num_modules=5)
        assert h.num_modules == 5
        assert h.isolated_modules() == [2, 3, 4]

    def test_module_count_too_small_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 5]], num_modules=3)

    def test_negative_pin_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, -1]])

    def test_duplicate_pins_collapsed(self):
        h = Hypergraph([[2, 2, 0, 2]])
        assert h.pins(0) == (0, 2)
        assert h.num_pins == 2

    def test_pins_sorted(self):
        h = Hypergraph([[3, 1, 2]])
        assert h.pins(0) == (1, 2, 3)

    def test_name(self):
        assert Hypergraph([[0, 1]], name="x").name == "x"


class TestAccessors:
    def test_pins_out_of_range(self, tiny_hypergraph):
        with pytest.raises(HypergraphError):
            tiny_hypergraph.pins(3)

    def test_nets_of(self, tiny_hypergraph):
        assert tiny_hypergraph.nets_of(0) == (0, 2)
        assert tiny_hypergraph.nets_of(1) == (0, 1)
        assert tiny_hypergraph.nets_of(2) == (1,)

    def test_nets_of_out_of_range(self, tiny_hypergraph):
        with pytest.raises(HypergraphError):
            tiny_hypergraph.nets_of(99)

    def test_net_size_and_degree(self, tiny_hypergraph):
        assert tiny_hypergraph.net_size(1) == 3
        assert tiny_hypergraph.module_degree(3) == 2

    def test_net_sizes_list(self, tiny_hypergraph):
        assert tiny_hypergraph.net_sizes() == [2, 3, 2]

    def test_module_degrees_list(self, tiny_hypergraph):
        assert tiny_hypergraph.module_degrees() == [2, 2, 1, 2]

    def test_default_names(self, tiny_hypergraph):
        assert tiny_hypergraph.module_name(2) == "m2"
        assert tiny_hypergraph.net_name(1) == "n1"
        assert not tiny_hypergraph.has_module_names

    def test_explicit_names(self):
        h = Hypergraph(
            [[0, 1]], module_names=["a", "b"], net_names=["clk"]
        )
        assert h.module_name(1) == "b"
        assert h.net_name(0) == "clk"
        assert h.has_net_names

    def test_name_length_mismatch(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1]], module_names=["only-one"])


class TestAreas:
    def test_default_unit_areas(self, tiny_hypergraph):
        assert tiny_hypergraph.module_area(0) == 1.0
        assert tiny_hypergraph.total_area == 4.0

    def test_explicit_areas(self):
        h = Hypergraph([[0, 1]], module_areas=[2.5, 0.5])
        assert h.module_area(0) == 2.5
        assert h.total_area == 3.0

    def test_negative_area_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1]], module_areas=[1.0, -1.0])

    def test_area_count_mismatch(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1]], module_areas=[1.0])


class TestDerived:
    def test_neighbors_of_module(self, tiny_hypergraph):
        assert tiny_hypergraph.neighbors_of_module(0) == [1, 3]
        assert tiny_hypergraph.neighbors_of_module(2) == [1, 3]

    def test_nets_sharing_module(self, tiny_hypergraph):
        # n0={0,1} shares module 1 with n1 and module 0 with n2.
        assert tiny_hypergraph.nets_sharing_module(0) == [1, 2]

    def test_clique_model_nonzeros(self, tiny_hypergraph):
        # k(k-1) per net: 2 + 6 + 2 = 10
        assert tiny_hypergraph.clique_model_nonzeros() == 10

    def test_iter_nets(self, tiny_hypergraph):
        items = list(tiny_hypergraph.iter_nets())
        assert items[0] == (0, (0, 1))
        assert len(items) == 3


class TestEquality:
    def test_equal(self):
        a = Hypergraph([[0, 1], [1, 2]])
        b = Hypergraph([[1, 0], [2, 1]])
        assert a == b
        assert hash(a) == hash(b)

    def test_not_equal_structure(self):
        assert Hypergraph([[0, 1]]) != Hypergraph([[0, 1], [0, 1]])

    def test_not_equal_areas(self):
        a = Hypergraph([[0, 1]])
        b = Hypergraph([[0, 1]], module_areas=[2.0, 1.0])
        assert a != b

    def test_repr(self, tiny_hypergraph):
        text = repr(tiny_hypergraph)
        assert "4 modules" in text and "3 nets" in text
