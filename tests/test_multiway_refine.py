"""Tests for recursive multiway partitioning and post-refinement."""

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partitioning import (
    FMConfig,
    fm_bipartition,
    ig_match,
    recursive_partition,
    refine,
)


class TestMultiway:
    def test_four_blocks(self, medium_circuit):
        result = recursive_partition(medium_circuit, 4)
        assert result.num_blocks == 4
        assert sorted(set(result.block_of)) == [0, 1, 2, 3]
        assert len(result.block_of) == medium_circuit.num_modules

    def test_non_power_of_two(self, medium_circuit):
        result = recursive_partition(medium_circuit, 3)
        assert result.num_blocks == 3

    def test_blocks_property(self, small_circuit):
        result = recursive_partition(small_circuit, 2)
        blocks = result.blocks
        assert sum(len(b) for b in blocks) == small_circuit.num_modules
        assert not (set(blocks[0]) & set(blocks[1]))

    def test_nets_cut_counts_spanning(self):
        # Hand-checkable: chain of 3 clusters.
        nets = []
        for base in (0, 3, 6):
            nets += [[base, base + 1], [base + 1, base + 2],
                     [base, base + 2]]
        nets += [[2, 3], [5, 6]]
        h = Hypergraph(nets)
        result = recursive_partition(h, 3)
        assert result.num_blocks == 3
        assert result.nets_cut == 2

    def test_custom_bipartitioner(self, small_circuit):
        result = recursive_partition(
            small_circuit,
            2,
            bipartitioner=lambda h: fm_bipartition(h, FMConfig(seed=0)),
        )
        assert result.num_blocks == 2

    def test_block_sizes(self, small_circuit):
        result = recursive_partition(small_circuit, 4)
        assert sum(result.block_sizes) == small_circuit.num_modules
        assert all(size >= 1 for size in result.block_sizes)

    def test_external_nets_of_block(self):
        h = Hypergraph([[0, 1], [1, 2], [2, 3], [0, 3]])
        result = recursive_partition(h, 2)
        for b in range(2):
            external = result.external_nets_of_block(b)
            assert 0 <= external <= h.num_nets

    def test_bad_block_count(self, small_circuit):
        with pytest.raises(PartitionError):
            recursive_partition(small_circuit, 1)
        with pytest.raises(PartitionError):
            recursive_partition(small_circuit, 10**6)

    def test_largest_block_split_first(self, medium_circuit):
        result = recursive_partition(medium_circuit, 3)
        # No block should dominate: the largest was always split.
        sizes = sorted(result.block_sizes)
        assert sizes[-1] < medium_circuit.num_modules


class TestRefine:
    def test_never_degrades(self, small_circuit):
        base = ig_match(small_circuit)
        polished = refine(base)
        assert polished.ratio_cut <= base.ratio_cut + 1e-15
        assert polished.algorithm == "IG-Match+refine"
        assert "pre_refine_ratio_cut" in polished.details

    def test_improves_weak_input(self, small_circuit):
        weak = fm_bipartition(small_circuit, FMConfig(seed=1))
        polished = refine(weak)
        assert polished.ratio_cut <= weak.ratio_cut

    def test_details_preserved(self, small_circuit):
        base = ig_match(small_circuit)
        polished = refine(base)
        assert polished.details["weighting"] == base.details["weighting"]
