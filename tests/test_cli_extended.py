"""Tests for the newer CLI paths: reports, k-way, .hgr/.v inputs."""

import json

import pytest

from repro.cli import main
from repro.hypergraph import save_hgr
from tests.conftest import random_hypergraph

VERILOG = """
module m (a, b, y);
  input a, b;
  output y;
  wire w;
  and g1 (w, a, b);
  not g2 (y, w);
endmodule
"""


class TestInputFormats:
    def test_hgr_input(self, tmp_path, capsys):
        h = random_hypergraph(4, num_modules=18, num_nets=20)
        path = tmp_path / "c.hgr"
        save_hgr(h, path)
        assert main([str(path)]) == 0
        assert "IG-Match" in capsys.readouterr().out

    def test_verilog_input(self, tmp_path, capsys):
        path = tmp_path / "m.v"
        path.write_text(VERILOG, encoding="utf-8")
        assert main([str(path), "-a", "fm"]) == 0

    def test_bad_verilog_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.v"
        path.write_text("module m (a); assign x = a; endmodule")
        assert main([str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestReport:
    def test_report_flag(self, tmp_path, capsys):
        from repro.hypergraph import save_net

        h = random_hypergraph(5, num_modules=20, num_nets=24)
        path = tmp_path / "c.net"
        save_net(h, path)
        assert main([str(path), "--report"]) == 0
        out = capsys.readouterr().out
        assert "partition report" in out
        assert "cut histogram" in out


class TestReplicateFlag:
    def test_replicate(self, capsys):
        assert main(
            ["--generate", "Test02", "--scale", "0.12",
             "--replicate", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "replication:" in out

    def test_bad_fraction(self, capsys):
        assert main(
            ["--generate", "bm1", "--scale", "0.1",
             "--replicate", "3.0"]
        ) == 1
        assert "error" in capsys.readouterr().err


class TestMultiwayCli:
    def test_blocks_flag_recursive(self, capsys):
        assert main(
            ["--generate", "Test02", "--scale", "0.12", "--blocks", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 blocks" in out
        assert "scaled cost" in out

    def test_spectral_kway_algorithm(self, capsys):
        assert main(
            [
                "--generate", "Test02", "--scale", "0.12",
                "-a", "spectral-kway", "--blocks", "4",
            ]
        ) == 0
        assert "spectral-kway" in capsys.readouterr().out

    def test_multiway_json(self, capsys):
        assert main(
            [
                "--generate", "bm1", "--scale", "0.12",
                "--blocks", "4", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["blocks"] == 4
        assert len(payload["block_sizes"]) == 4

    def test_multiway_sides_out(self, tmp_path, capsys):
        out_file = tmp_path / "blocks.txt"
        assert main(
            [
                "--generate", "bm1", "--scale", "0.12",
                "--blocks", "3", "--sides-out", str(out_file),
            ]
        ) == 0
        lines = out_file.read_text().strip().splitlines()
        labels = {line.split()[1] for line in lines}
        assert labels <= {"0", "1", "2"}
        assert len(labels) == 3


class TestFingerprintFlag:
    def test_prints_canonical_hash_and_exits(self, capsys):
        assert main(
            ["--generate", "Test02", "--scale", "0.12", "--fingerprint"]
        ) == 0
        out = capsys.readouterr().out.strip()
        assert len(out) == 64
        int(out, 16)  # a hex digest, nothing else

    def test_same_netlist_same_fingerprint(self, capsys):
        argv = ["--generate", "bm1", "--scale", "0.12", "--fingerprint"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_json_includes_both_hashes(self, capsys):
        assert main(
            [
                "--generate", "Test02", "--scale", "0.12",
                "--fingerprint", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"canonical", "exact"}
        assert payload["canonical"] != payload["exact"]

    def test_fingerprint_skips_partitioning(self, capsys):
        # No partition summary follows the hash.
        assert main(
            ["--generate", "Test02", "--scale", "0.12", "--fingerprint"]
        ) == 0
        assert "IG-Match" not in capsys.readouterr().out


class TestCacheFlag:
    def test_miss_then_disk_hit_across_invocations(
        self, tmp_path, capsys
    ):
        argv = [
            "--generate", "Test02", "--scale", "0.12",
            "-a", "fm", "--cache", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "cache miss" in cold.err
        # A fresh main() is a fresh engine: only the disk tier persists.
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "cache hit (disk)" in warm.err

    def test_cached_answer_matches_direct_run(self, tmp_path, capsys):
        base = ["--generate", "bm1", "--scale", "0.12", "-a", "fm", "--json"]
        assert main(base) == 0
        direct = json.loads(capsys.readouterr().out)
        for _ in range(2):  # cold, then cached
            assert main(
                base + ["--cache", "--cache-dir", str(tmp_path)]
            ) == 0
            served = json.loads(capsys.readouterr().out)
            assert served["nets_cut"] == direct["nets_cut"]
            assert served["areas"] == direct["areas"]
            assert served["ratio_cut"] == direct["ratio_cut"]

    def test_no_cache_is_accepted(self, capsys):
        assert main(
            ["--generate", "Test02", "--scale", "0.12", "--no-cache"]
        ) == 0

    def test_cache_and_no_cache_conflict(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["--generate", "Test02", "--scale", "0.12",
                 "--cache", "--no-cache"]
            )
