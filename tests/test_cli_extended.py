"""Tests for the newer CLI paths: reports, k-way, .hgr/.v inputs."""

import json

import pytest

from repro.cli import main
from repro.hypergraph import save_hgr
from tests.conftest import random_hypergraph

VERILOG = """
module m (a, b, y);
  input a, b;
  output y;
  wire w;
  and g1 (w, a, b);
  not g2 (y, w);
endmodule
"""


class TestInputFormats:
    def test_hgr_input(self, tmp_path, capsys):
        h = random_hypergraph(4, num_modules=18, num_nets=20)
        path = tmp_path / "c.hgr"
        save_hgr(h, path)
        assert main([str(path)]) == 0
        assert "IG-Match" in capsys.readouterr().out

    def test_verilog_input(self, tmp_path, capsys):
        path = tmp_path / "m.v"
        path.write_text(VERILOG, encoding="utf-8")
        assert main([str(path), "-a", "fm"]) == 0

    def test_bad_verilog_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.v"
        path.write_text("module m (a); assign x = a; endmodule")
        assert main([str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestReport:
    def test_report_flag(self, tmp_path, capsys):
        from repro.hypergraph import save_net

        h = random_hypergraph(5, num_modules=20, num_nets=24)
        path = tmp_path / "c.net"
        save_net(h, path)
        assert main([str(path), "--report"]) == 0
        out = capsys.readouterr().out
        assert "partition report" in out
        assert "cut histogram" in out


class TestReplicateFlag:
    def test_replicate(self, capsys):
        assert main(
            ["--generate", "Test02", "--scale", "0.12",
             "--replicate", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "replication:" in out

    def test_bad_fraction(self, capsys):
        assert main(
            ["--generate", "bm1", "--scale", "0.1",
             "--replicate", "3.0"]
        ) == 1
        assert "error" in capsys.readouterr().err


class TestMultiwayCli:
    def test_blocks_flag_recursive(self, capsys):
        assert main(
            ["--generate", "Test02", "--scale", "0.12", "--blocks", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 blocks" in out
        assert "scaled cost" in out

    def test_spectral_kway_algorithm(self, capsys):
        assert main(
            [
                "--generate", "Test02", "--scale", "0.12",
                "-a", "spectral-kway", "--blocks", "4",
            ]
        ) == 0
        assert "spectral-kway" in capsys.readouterr().out

    def test_multiway_json(self, capsys):
        assert main(
            [
                "--generate", "bm1", "--scale", "0.12",
                "--blocks", "4", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["blocks"] == 4
        assert len(payload["block_sizes"]) == 4

    def test_multiway_sides_out(self, tmp_path, capsys):
        out_file = tmp_path / "blocks.txt"
        assert main(
            [
                "--generate", "bm1", "--scale", "0.12",
                "--blocks", "3", "--sides-out", str(out_file),
            ]
        ) == 0
        lines = out_file.read_text().strip().splitlines()
        labels = {line.split()[1] for line in lines}
        assert labels <= {"0", "1", "2"}
        assert len(labels) == 3
