"""Tests for the Partition and PartitionResult records."""

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partitioning import Partition, PartitionResult


class TestConstruction:
    def test_basic(self, tiny_hypergraph):
        p = Partition(tiny_hypergraph, [0, 0, 1, 1])
        assert p.u_modules == [0, 1]
        assert p.w_modules == [2, 3]
        assert p.u_size == 2 and p.w_size == 2

    def test_from_u_side(self, tiny_hypergraph):
        p = Partition.from_u_side(tiny_hypergraph, {1, 2})
        assert p.sides == (1, 0, 0, 1)

    def test_from_u_side_bad_module(self, tiny_hypergraph):
        with pytest.raises(PartitionError):
            Partition.from_u_side(tiny_hypergraph, {99})

    def test_length_mismatch(self, tiny_hypergraph):
        with pytest.raises(PartitionError):
            Partition(tiny_hypergraph, [0, 1])

    def test_bad_side_value(self, tiny_hypergraph):
        with pytest.raises(PartitionError):
            Partition(tiny_hypergraph, [0, 1, 2, 0])

    def test_empty_side_rejected(self, tiny_hypergraph):
        with pytest.raises(PartitionError):
            Partition(tiny_hypergraph, [0, 0, 0, 0])


class TestMetricsOnPartition:
    def test_cut_nets(self, tiny_hypergraph):
        # sides 0,0,1,1: n0={0,1} uncut; n1={1,2,3} cut; n2={0,3} cut.
        p = Partition(tiny_hypergraph, [0, 0, 1, 1])
        assert p.cut_nets == (1, 2)
        assert p.num_nets_cut == 2

    def test_ratio_cut(self, tiny_hypergraph):
        p = Partition(tiny_hypergraph, [0, 0, 1, 1])
        assert p.ratio_cut == pytest.approx(2 / 4)

    def test_ratio_cut_unbalanced(self, tiny_hypergraph):
        p = Partition(tiny_hypergraph, [0, 1, 1, 1])
        # n0 cut, n2 cut => 2 / (1*3)
        assert p.ratio_cut == pytest.approx(2 / 3)

    def test_areas(self):
        h = Hypergraph([[0, 1], [1, 2]], module_areas=[1.0, 2.0, 4.0])
        p = Partition(h, [0, 0, 1])
        assert p.u_area == 3.0
        assert p.w_area == 4.0
        assert p.area_string == "3:4"

    def test_area_string_float(self):
        h = Hypergraph([[0, 1]], module_areas=[1.5, 1.0])
        p = Partition(h, [0, 1])
        assert p.area_string == "1.5:1"


class TestOperations:
    def test_flipped(self, tiny_hypergraph):
        p = Partition(tiny_hypergraph, [0, 0, 1, 1])
        f = p.flipped()
        assert f.sides == (1, 1, 0, 0)
        assert f.ratio_cut == p.ratio_cut

    def test_equality_up_to_flip(self, tiny_hypergraph):
        a = Partition(tiny_hypergraph, [0, 0, 1, 1])
        b = Partition(tiny_hypergraph, [1, 1, 0, 0])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self, tiny_hypergraph):
        a = Partition(tiny_hypergraph, [0, 0, 1, 1])
        c = Partition(tiny_hypergraph, [0, 1, 0, 1])
        assert a != c

    def test_canonical(self, tiny_hypergraph):
        p = Partition(tiny_hypergraph, [1, 1, 0, 0])
        assert p.canonical().side(0) == 0

    def test_side_out_of_range(self, tiny_hypergraph):
        p = Partition(tiny_hypergraph, [0, 0, 1, 1])
        with pytest.raises(PartitionError):
            p.side(10)


class TestPartitionResult:
    def test_row_and_str(self, tiny_hypergraph):
        p = Partition(tiny_hypergraph, [0, 0, 1, 1])
        r = PartitionResult("Test", p, elapsed_seconds=1.5)
        row = r.row()
        assert row["algorithm"] == "Test"
        assert row["nets_cut"] == 2
        assert "Test" in str(r)
        assert r.areas == "2:2"
