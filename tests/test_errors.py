"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BenchmarkError,
    GraphError,
    HypergraphError,
    MatchingError,
    ParseError,
    PartitionError,
    ReproError,
    SpectralError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            BenchmarkError,
            GraphError,
            HypergraphError,
            MatchingError,
            ParseError,
            PartitionError,
            SpectralError,
            ValidationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_validation_is_hypergraph_error(self):
        assert issubclass(ValidationError, HypergraphError)

    def test_parse_error_line_prefix(self):
        err = ParseError("bad token", line=7)
        assert "line 7" in str(err)
        assert err.line == 7

    def test_parse_error_without_line(self):
        err = ParseError("bad token")
        assert str(err) == "bad token"
        assert err.line is None

    def test_catch_all_pattern(self):
        """Library consumers can catch ReproError alone."""
        from repro.hypergraph import Hypergraph

        with pytest.raises(ReproError):
            Hypergraph([[0, -5]])
