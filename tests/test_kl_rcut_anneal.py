"""Tests for the KL, RCut and simulated-annealing baselines."""

import pytest

from repro.errors import PartitionError
from repro.graph import Graph
from repro.hypergraph import Hypergraph
from repro.partitioning import (
    AnnealingConfig,
    KLConfig,
    RCutConfig,
    anneal,
    kl_bisection,
    kl_bisection_graph,
    rcut,
)
from repro.partitioning.metrics import graph_edge_cut, is_bisection


class TestKL:
    def test_two_cliques_graph(self):
        g = Graph(8)
        for base in (0, 4):
            for i in range(4):
                for j in range(i + 1, 4):
                    g.add_edge(base + i, base + j)
        g.add_edge(3, 4)
        sides = kl_bisection_graph(g, seed=0)
        assert graph_edge_cut(g, sides) == 1.0
        assert is_bisection(sides)

    def test_respects_initial_sides(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        sides = kl_bisection_graph(g, initial_sides=[0, 0, 1, 1])
        assert graph_edge_cut(g, sides) == 0.0

    def test_bisection_maintained(self, small_circuit):
        result = kl_bisection(small_circuit, KLConfig(seed=1))
        assert is_bisection(result.partition.sides)

    def test_on_hypergraph_two_clusters(self, two_cluster_hypergraph):
        result = kl_bisection(two_cluster_hypergraph, KLConfig(seed=3))
        assert result.nets_cut == 1

    def test_too_small(self):
        with pytest.raises(PartitionError):
            kl_bisection_graph(Graph(1))

    def test_initial_sides_length_checked(self):
        g = Graph(3)
        with pytest.raises(PartitionError):
            kl_bisection_graph(g, initial_sides=[0, 1])


class TestRCut:
    def test_two_clusters(self, two_cluster_hypergraph):
        result = rcut(two_cluster_hypergraph, RCutConfig(restarts=4, seed=0))
        assert result.nets_cut == 1
        assert result.ratio_cut == pytest.approx(1 / 16)

    def test_small_circuit_reasonable(self, small_circuit):
        result = rcut(small_circuit, RCutConfig(restarts=5, seed=1))
        # Should be near the planted 30:90 quality.
        assert result.ratio_cut < 0.01

    def test_restart_count_in_details(self, small_circuit):
        result = rcut(small_circuit, RCutConfig(restarts=3, seed=0))
        assert result.details["restarts"] == 3
        assert len(result.details["runs"]) == 3

    def test_best_of_restarts_reported(self, small_circuit):
        result = rcut(small_circuit, RCutConfig(restarts=4, seed=2))
        run_ratios = [r["ratio_cut"] for r in result.details["runs"]]
        assert result.ratio_cut <= min(run_ratios) + 1e-12

    def test_initial_sides_single_run(self, two_cluster_hypergraph):
        result = rcut(
            two_cluster_hypergraph,
            RCutConfig(seed=0),
            initial_sides=[0, 0, 0, 0, 1, 1, 1, 1],
        )
        assert result.details["restarts"] == 1
        assert result.nets_cut == 1

    def test_sides_never_empty(self, small_circuit):
        result = rcut(small_circuit, RCutConfig(restarts=2, seed=5))
        assert result.partition.u_size >= 1
        assert result.partition.w_size >= 1

    def test_too_small(self):
        with pytest.raises(PartitionError):
            rcut(Hypergraph([], num_modules=1))


class TestAnnealing:
    def test_two_clusters(self, two_cluster_hypergraph):
        config = AnnealingConfig(seed=1, t_initial=1e-2, t_final=1e-6)
        result = anneal(two_cluster_hypergraph, config)
        assert result.nets_cut == 1

    def test_improves_on_random(self, small_circuit):
        import random

        from repro.partitioning.fm import random_balanced_sides
        from repro.partitioning.metrics import ratio_cut_of_sides

        rng = random.Random(0)
        initial = random_balanced_sides(small_circuit, rng)
        start_ratio = ratio_cut_of_sides(small_circuit, initial)
        result = anneal(
            small_circuit,
            AnnealingConfig(seed=0, moves_per_temperature=200),
            initial_sides=initial,
        )
        assert result.ratio_cut < start_ratio

    def test_deterministic(self, two_cluster_hypergraph):
        a = anneal(two_cluster_hypergraph, AnnealingConfig(seed=4))
        b = anneal(two_cluster_hypergraph, AnnealingConfig(seed=4))
        assert a.partition.sides == b.partition.sides

    def test_too_small(self):
        with pytest.raises(PartitionError):
            anneal(Hypergraph([], num_modules=1))
