"""Tests for the gate-level synthetic logic generator."""

import pytest

from repro.bench import generate_logic_circuit, generate_logic_verilog
from repro.errors import BenchmarkError
from repro.hypergraph import loads_verilog, net_size_histogram, validate


class TestVerilogGeneration:
    def test_parses_through_front_end(self):
        text = generate_logic_verilog(seed=1)
        h = loads_verilog(text, name="t")
        assert h.num_modules > 0
        assert h.num_nets > 0
        assert validate(h).ok

    def test_deterministic(self):
        assert generate_logic_verilog(seed=7) == generate_logic_verilog(
            seed=7
        )
        assert generate_logic_verilog(seed=7) != generate_logic_verilog(
            seed=8
        )

    def test_gate_count_scales(self):
        small = generate_logic_circuit(
            seed=0, gates_per_level=10, levels=3
        )
        large = generate_logic_circuit(
            seed=0, gates_per_level=30, levels=6
        )
        assert large.num_modules > small.num_modules

    def test_clock_is_a_wide_net(self):
        h = generate_logic_circuit(
            seed=2, dff_fraction=0.3, gates_per_level=30, levels=5
        )
        sizes = h.net_sizes()
        # The clk net connects the pad plus every flip-flop.
        widest = max(sizes)
        dffs = sum(
            1
            for v in range(h.num_modules)
            if h.module_name(v).startswith("ff")
        )
        assert dffs > 3
        assert widest >= dffs  # clk spans all of them

    def test_combinational_only(self):
        text = generate_logic_verilog(seed=3, dff_fraction=0.0)
        assert "dff" not in text
        assert "clk" not in text
        h = loads_verilog(text)
        assert validate(h).ok

    def test_ports_become_pads(self):
        h = generate_logic_circuit(seed=4, num_inputs=6, num_outputs=4)
        pads = [
            v
            for v in range(h.num_modules)
            if h.module_name(v).startswith("pad:")
        ]
        # 6 PIs + 4 POs + clk pad
        assert len(pads) == 11
        assert all(h.module_area(v) == 0.0 for v in pads)

    def test_validation_errors(self):
        with pytest.raises(BenchmarkError):
            generate_logic_verilog(num_inputs=1)
        with pytest.raises(BenchmarkError):
            generate_logic_verilog(levels=0)
        with pytest.raises(BenchmarkError):
            generate_logic_verilog(max_fanin=1)
        with pytest.raises(BenchmarkError):
            generate_logic_verilog(dff_fraction=1.0)


class TestPartitioningLogic:
    def test_igmatch_partitions_logic(self):
        from repro.partitioning import ig_match

        h = generate_logic_circuit(
            seed=5, gates_per_level=25, levels=6, dff_fraction=0.1
        )
        result = ig_match(h)
        assert result.partition.u_size >= 1
        assert result.nets_cut >= 1  # levelised logic is connected

    def test_clique_explodes_on_clock(self):
        """The paper's Section 2.1 point, on generated logic: the wide
        clock net makes the clique model far denser than the IG."""
        from repro.analysis import compare_sparsity

        h = generate_logic_circuit(
            seed=6, gates_per_level=40, levels=6, dff_fraction=0.4
        )
        cmp = compare_sparsity(h)
        assert cmp.sparsity_ratio > 1.5
