"""Tests for the IG-Vote and EIG1 baselines."""

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.intersection import intersection_graph
from repro.partitioning import (
    EIG1Config,
    IGVoteConfig,
    eig1,
    ig_match,
    ig_vote,
)
from repro.spectral import spectral_ordering


class TestIGVote:
    def test_two_clusters(self, two_cluster_hypergraph):
        result = ig_vote(two_cluster_hypergraph)
        assert result.nets_cut == 1

    def test_direction_recorded(self, small_circuit):
        result = ig_vote(small_circuit)
        assert result.details["direction"] in ("forward", "backward")

    def test_deterministic(self, small_circuit):
        a = ig_vote(small_circuit, IGVoteConfig(seed=0))
        b = ig_vote(small_circuit, IGVoteConfig(seed=0))
        assert a.partition.sides == b.partition.sides

    def test_explicit_order(self, small_circuit):
        order = spectral_ordering(
            intersection_graph(small_circuit, "paper"), seed=0
        )
        result = ig_vote(small_circuit, order=order)
        assert result.nets_cut >= 1

    def test_bad_order(self, small_circuit):
        with pytest.raises(PartitionError):
            ig_vote(small_circuit, order=[1, 1])

    def test_threshold_variants(self, small_circuit):
        half = ig_vote(small_circuit, IGVoteConfig(threshold=0.5))
        strict = ig_vote(small_circuit, IGVoteConfig(threshold=0.8))
        assert half.nets_cut >= 1
        assert strict.nets_cut >= 1

    def test_too_small(self):
        with pytest.raises(PartitionError):
            ig_vote(Hypergraph([[0]], num_modules=1))

    def test_vote_mechanics_hand_example(self):
        """Half-weight threshold: a module moves once half its incident
        net weight has swept past."""
        # Module 1 is on nets n0 (size 2) and n1 (size 2): each
        # contributes weight 1/2, total 1.  After sweeping n0 alone its
        # moved weight is 1/2 >= 1/2 -> module 1 moves with n0's sweep.
        h = Hypergraph([[0, 1], [1, 2], [2, 3]])
        result = ig_vote(h, order=[0, 1, 2])
        # Some valid bipartition came out with both sides non-empty.
        assert result.partition.u_size >= 1
        assert result.partition.w_size >= 1

    def test_igmatch_dominates_igvote_on_shared_ordering(
        self, medium_circuit
    ):
        order = spectral_ordering(
            intersection_graph(medium_circuit, "paper"), seed=0
        )
        vote = ig_vote(medium_circuit, order=order)
        match = ig_match(medium_circuit, order=order)
        # Table 3's shape: IG-Match is never (meaningfully) worse.
        assert match.ratio_cut <= vote.ratio_cut * 1.001


class TestEIG1:
    def test_two_clusters(self, two_cluster_hypergraph):
        result = eig1(two_cluster_hypergraph)
        assert result.nets_cut == 1

    def test_deterministic(self, small_circuit):
        a = eig1(small_circuit, EIG1Config(seed=0))
        b = eig1(small_circuit, EIG1Config(seed=0))
        assert a.partition.sides == b.partition.sides

    def test_net_model_recorded(self, small_circuit):
        result = eig1(small_circuit, EIG1Config(net_model="star"))
        assert result.details["net_model"] == "star"

    def test_all_net_models(self, small_circuit):
        from repro.netmodels import available_models

        for model in available_models():
            result = eig1(small_circuit, EIG1Config(net_model=model))
            assert result.partition.u_size >= 1

    def test_too_small(self):
        with pytest.raises(PartitionError):
            eig1(Hypergraph([[0]], num_modules=1))

    def test_finds_planted(self, small_circuit):
        result = eig1(small_circuit)
        assert result.ratio_cut < 0.01
