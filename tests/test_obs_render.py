"""Tests for trace/bench rendering (:mod:`repro.obs.render`)."""

import json

import pytest

from repro import obs
from repro.obs.render import (
    render_html,
    render_markdown,
    render_trace_html,
    span_tree_from_events,
)
from tests.test_obs_diff import make_circuit, make_payload


@pytest.fixture(autouse=True)
def _obs_off():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpanTree:
    def test_rebuilds_nesting_from_depth_and_seq(self):
        sink = obs.MemorySink()
        with obs.enabled(sink=sink):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
                obs.add_timing("agg", 0.25, count=4)
            with obs.span("second"):
                pass
        roots = span_tree_from_events(sink.events)
        assert [n["name"] for n in roots] == ["outer", "second"]
        children = roots[0]["children"]
        assert [n["name"] for n in children] == ["inner", "inner", "agg"]
        assert children[2]["count"] == 4

    def test_ignores_points_and_counters(self):
        events = [
            {"type": "point", "name": "x", "seq": 1},
            {"type": "span", "name": "a", "dur_s": 0.1, "depth": 0,
             "seq": 2},
            {"type": "counters", "values": {"c": 1}},
        ]
        roots = span_tree_from_events(events)
        assert [n["name"] for n in roots] == ["a"]

    def test_orphan_depths_surface_as_roots(self):
        # A truncated trace whose parent span never closed.
        events = [
            {"type": "span", "name": "child", "dur_s": 0.1, "depth": 2,
             "seq": 1},
        ]
        assert [n["name"] for n in span_tree_from_events(events)] == [
            "child"
        ]


class TestTraceHtml:
    def build_events(self):
        sink = obs.MemorySink()
        with obs.enabled(sink=sink):
            with obs.span("igmatch", modules=40):
                with obs.span("spectral.fiedler", n=44):
                    pass
                obs.emit(
                    "igmatch.curve",
                    ranks=[1, 2, 3, 4],
                    ratio_cuts=[0.5, 0.25, 0.125, 0.3],
                    nets_cut=[4, 3, 2, 3],
                    matching_sizes=[4, 4, 4, 4],
                )
                obs.incr("matching.augmentations", 12)
        return sink.events

    def test_self_contained_html(self):
        html = render_trace_html(self.build_events())
        assert html.startswith("<!doctype html>")
        assert "igmatch" in html and "spectral.fiedler" in html
        assert "<svg" in html and "polyline" in html
        assert "matching.augmentations" in html
        # Self-contained: no external assets of any kind.
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html and "<link" not in html

    def test_empty_trace(self):
        assert "(no events)" in render_trace_html([])

    def test_log_scale_for_residual_curves(self):
        events = [
            {
                "type": "point",
                "name": "spectral.lanczos.convergence",
                "steps": [10, 20, 30],
                "residuals": [1e-1, 1e-5, 1e-11],
                "seq": 1,
            }
        ]
        html = render_trace_html(events)
        assert "log y" in html


class TestBenchHtml:
    def test_renders_real_suite_payload(self):
        from repro.bench import run_observed_suite

        payload = run_observed_suite(names=["bm1"], scale=0.1)
        html = render_html(payload)
        assert "bm1" in html
        assert 'class="frow"' in html  # phase-tree flame view
        assert "<svg" in html  # convergence curves
        assert "http://" not in html and "https://" not in html

    def test_diff_section_included(self):
        base = make_payload()
        cur = make_payload(
            make_circuit(counters={"lanczos.iterations": 99})
        )
        diff = obs.diff_payloads(base, cur)
        html = render_html(cur, diff=diff)
        assert "Baseline comparison" in html
        assert "deterministic regression" in html
        assert "lanczos.iterations" in html

    def test_config_mismatch_warning(self):
        diff = obs.diff_payloads(make_payload(seed=1), make_payload())
        html = render_html(make_payload(), diff=diff)
        assert "config mismatch" in html

    def test_json_roundtrip_of_payload_renders(self):
        from repro.bench import run_observed_suite

        payload = json.loads(
            json.dumps(run_observed_suite(names=["bm1"], scale=0.1))
        )
        assert "bm1" in render_html(payload)


class TestMarkdown:
    def test_clean_diff_summary(self):
        base = make_payload()
        diff = obs.diff_payloads(base, make_payload())
        text = render_markdown(diff)
        assert "no deterministic regressions" in text

    def test_regression_lines(self):
        cur = make_payload(
            make_circuit(counters={"lanczos.iterations": 99})
        )
        diff = obs.diff_payloads(make_payload(), cur)
        text = render_markdown(diff)
        assert "REGRESSED" in text
        assert "lanczos.iterations" in text
        assert "missing" in text  # matching.augmentations disappeared

    def test_missing_circuit_line(self):
        base = make_payload(make_circuit("bm1"), make_circuit("Prim1"))
        diff = obs.diff_payloads(base, make_payload(make_circuit("bm1")))
        assert "Prim1: circuit missing" in render_markdown(diff)


class TestCurveDownsampling:
    def test_long_curves_are_thinned_but_keep_best_and_last(self):
        from repro.bench.suite import _downsample_curve

        n = 1000
        ratio = [1.0 / (1 + i) for i in range(n)]
        best = ratio.index(min(ratio))
        event = {
            "type": "point",
            "name": "igmatch.curve",
            "ranks": list(range(1, n + 1)),
            "ratio_cuts": ratio,
            "seq": 1,
        }
        sampled = _downsample_curve(event, limit=100)
        assert len(sampled["ranks"]) <= 102
        assert sampled["ranks"][-1] == n
        assert min(sampled["ratio_cuts"]) == min(ratio)
        assert event["ranks"][best] in sampled["ranks"]

    def test_short_curves_untouched(self):
        from repro.bench.suite import _downsample_curve

        event = {"name": "fm.curve", "passes": [0, 1], "cuts": [9, 4]}
        assert _downsample_curve(event) is event
