"""Tests for graph-spectra utilities and Cheeger's inequality."""

import itertools

import numpy as np
import pytest

from repro.errors import SpectralError
from repro.analysis import (
    cheeger_bounds,
    conductance,
    normalized_fiedler_value,
    normalized_laplacian,
    sweep_conductance,
)
from repro.graph import Graph
from tests.conftest import connected_random_graph


def complete_graph(n):
    g = Graph(n)
    for i, j in itertools.combinations(range(n), 2):
        g.add_edge(i, j)
    return g


def true_conductance(g):
    """Exhaustive minimum conductance (tiny graphs only)."""
    n = g.num_vertices
    best = float("inf")
    for mask in range(1, 2 ** (n - 1)):
        subset = [v for v in range(n) if (mask >> v) & 1 or v == 0]
        # force vertex 0 into the subset via the mask trick:
        subset = sorted(set(subset))
        if len(subset) in (0, n):
            continue
        best = min(best, conductance(g, subset))
    return best


class TestConductance:
    def test_hand_computed(self):
        # Two triangles joined by one edge: cutting between them:
        # cut=1, vol per side=7 -> h = 1/7.
        g = Graph(6)
        for base in (0, 3):
            g.add_edge(base, base + 1)
            g.add_edge(base + 1, base + 2)
            g.add_edge(base, base + 2)
        g.add_edge(2, 3)
        assert conductance(g, [0, 1, 2]) == pytest.approx(1 / 7)

    def test_symmetric_in_complement(self):
        g = connected_random_graph(1, num_vertices=10)
        subset = [0, 2, 4, 6]
        complement = [v for v in range(10) if v not in subset]
        assert conductance(g, subset) == pytest.approx(
            conductance(g, complement)
        )

    def test_improper_subsets_rejected(self):
        g = complete_graph(4)
        with pytest.raises(SpectralError):
            conductance(g, [])
        with pytest.raises(SpectralError):
            conductance(g, [0, 1, 2, 3])


class TestNormalizedLaplacian:
    def test_spectrum_in_unit_interval(self):
        g = connected_random_graph(3, num_vertices=12)
        values = np.linalg.eigvalsh(normalized_laplacian(g).toarray())
        assert values.min() > -1e-9
        assert values.max() < 2.0 + 1e-9
        assert abs(values[0]) < 1e-9  # smallest is 0

    def test_complete_graph_value(self):
        # K_n: normalised lambda_2 = n/(n-1).
        n = 6
        assert normalized_fiedler_value(complete_graph(n)) == (
            pytest.approx(n / (n - 1))
        )

    def test_disconnected_rejected(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(SpectralError):
            normalized_fiedler_value(g)


class TestCheeger:
    @pytest.mark.parametrize("seed", range(6))
    def test_inequality_on_random_graphs(self, seed):
        g = connected_random_graph(seed, num_vertices=8, extra_edges=4)
        bounds = cheeger_bounds(g)
        h = true_conductance(g)
        assert bounds.contains(h), (
            f"h={h} outside [{bounds.lower}, {bounds.upper}]"
        )

    def test_barbell_small_gap(self):
        # A graph with an obvious bottleneck has tiny lambda_2 and tiny
        # conductance; a complete graph has both large.
        g = Graph(8)
        for base in (0, 4):
            for i, j in itertools.combinations(range(4), 2):
                g.add_edge(base + i, base + j)
        g.add_edge(3, 4)
        assert cheeger_bounds(g).lambda_2 < (
            cheeger_bounds(complete_graph(8)).lambda_2 / 4
        )


class TestSweep:
    def test_sweep_respects_cheeger_upper_bound(self):
        """The constructive half: sweeping the sorted normalised Fiedler
        vector finds a prefix with h <= sqrt(2 lambda_2)."""
        for seed in range(5):
            g = connected_random_graph(
                seed + 10, num_vertices=14, extra_edges=8
            )
            laplacian = normalized_laplacian(g).toarray()
            _, vectors = np.linalg.eigh(laplacian)
            fiedler = vectors[:, 1]
            degrees = np.asarray(g.degrees())
            embedding = fiedler / np.sqrt(degrees)
            order = list(np.argsort(embedding))
            best = sweep_conductance(g, [int(v) for v in order])
            bounds = cheeger_bounds(g)
            assert best <= bounds.upper + 1e-9
            assert best >= bounds.lower - 1e-9

    def test_sweep_finds_bottleneck(self):
        g = Graph(6)
        for base in (0, 3):
            g.add_edge(base, base + 1)
            g.add_edge(base + 1, base + 2)
            g.add_edge(base, base + 2)
        g.add_edge(2, 3)
        best = sweep_conductance(g, [0, 1, 2, 3, 4, 5])
        assert best == pytest.approx(1 / 7)

    def test_bad_order_rejected(self):
        g = complete_graph(4)
        with pytest.raises(SpectralError):
            sweep_conductance(g, [0, 0, 1, 2])
