"""Cache robustness: LRU byte budgets, disk atomicity, quarantine."""

import json
import os
import threading

from repro.service import DiskCache, MemoryCache, ResultCache
from repro.service.cache import CACHE_ENTRY_SCHEMA, default_cache_dir


def payload_of_size(size: int) -> dict:
    """A payload whose canonical JSON is roughly ``size`` bytes."""
    return {"pad": "x" * size}


KEY = "a" * 64
KEY2 = "b" * 64
KEY3 = "c" * 64
KEY4 = "d" * 64


class TestMemoryCacheLRU:
    def test_roundtrip(self):
        cache = MemoryCache(1024)
        cache.put(KEY, {"v": 1})
        assert cache.get(KEY) == {"v": 1}
        assert cache.get(KEY2) is None

    def test_byte_budget_evicts_least_recently_used_first(self):
        cache = MemoryCache(3 * 120)
        for key in (KEY, KEY2, KEY3):
            assert cache.put(key, payload_of_size(100))
        assert cache.keys() == [KEY, KEY2, KEY3]
        # A fourth entry must push out exactly the oldest (KEY).
        cache.put(KEY4, payload_of_size(100))
        assert cache.get(KEY) is None
        assert cache.get(KEY2) is not None
        assert len(cache) == 3

    def test_get_refreshes_recency(self):
        cache = MemoryCache(3 * 120)
        for key in (KEY, KEY2, KEY3):
            cache.put(key, payload_of_size(100))
        cache.get(KEY)  # now KEY2 is least recently used
        cache.put(KEY4, payload_of_size(100))
        assert cache.get(KEY) is not None
        assert cache.get(KEY2) is None

    def test_put_refreshes_recency_and_replaces(self):
        cache = MemoryCache(3 * 120)
        for key in (KEY, KEY2, KEY3):
            cache.put(key, payload_of_size(100))
        cache.put(KEY, payload_of_size(100))  # refresh + same size
        cache.put(KEY4, payload_of_size(100))
        assert cache.get(KEY2) is None
        assert cache.get(KEY) is not None

    def test_eviction_cascades_for_large_entry(self):
        cache = MemoryCache(400)
        cache.put(KEY, payload_of_size(100))
        cache.put(KEY2, payload_of_size(100))
        cache.put(KEY3, payload_of_size(300))
        assert cache.get(KEY) is None
        assert cache.get(KEY2) is None
        assert cache.get(KEY3) is not None

    def test_oversized_entry_refused(self):
        cache = MemoryCache(50)
        assert not cache.put(KEY, payload_of_size(200))
        assert len(cache) == 0

    def test_zero_budget_disables_storage(self):
        cache = MemoryCache(0)
        assert not cache.put(KEY, {"v": 1})
        assert cache.get(KEY) is None

    def test_used_bytes_accounting(self):
        cache = MemoryCache(10_000)
        cache.put(KEY, payload_of_size(100))
        used = cache.used_bytes
        assert used > 100
        cache.put(KEY, payload_of_size(50))  # replace: no double count
        assert cache.used_bytes < used
        cache.clear()
        assert cache.used_bytes == 0


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.put(KEY, {"v": [1, 2]})
        assert cache.get(KEY) == {"v": [1, 2]}
        assert KEY in cache

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = DiskCache(tmp_path)
        for i in range(5):
            cache.put(KEY, {"v": i})
        leftovers = [
            p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_corrupt_json_quarantined_not_crash(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"v": 1})
        path = cache._path(KEY)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(KEY) is None
        assert cache.quarantined == 1
        assert not path.exists()
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].name.endswith(".unparsable")

    def test_unknown_schema_quarantined(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"v": 1})
        path = cache._path(KEY)
        doc = json.loads(path.read_text())
        doc["schema"] = CACHE_ENTRY_SCHEMA + 99
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert cache.get(KEY) is None
        assert any(
            p.name.endswith(".schema")
            for p in (tmp_path / "quarantine").iterdir()
        )

    def test_key_mismatch_quarantined(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"v": 1})
        # Simulate a mis-filed entry: content says a different key.
        src = cache._path(KEY)
        dst = cache._path(KEY2)
        dst.parent.mkdir(parents=True, exist_ok=True)
        os.replace(src, dst)
        assert cache.get(KEY2) is None
        assert cache.quarantined == 1

    def test_non_object_payload_quarantined(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {"schema": CACHE_ENTRY_SCHEMA, "key": KEY, "payload": [1]}
            ),
            encoding="utf-8",
        )
        assert cache.get(KEY) is None
        assert cache.quarantined == 1

    def test_quarantine_survives_repeated_reads(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"v": 1})
        cache._path(KEY).write_text("garbage", encoding="utf-8")
        assert cache.get(KEY) is None
        # Second read is a plain miss — the bad file is gone, not re-read.
        assert cache.get(KEY) is None
        assert cache.quarantined == 1


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "repro"


class TestResultCache:
    def test_two_tier_promotion(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(KEY, {"v": 1})
        cache.memory.clear()
        payload, tier = cache.lookup(KEY)
        assert payload == {"v": 1} and tier == "disk"
        # Promoted: the next lookup is a memory hit.
        assert cache.lookup(KEY)[1] == "memory"
        stats = cache.snapshot()
        assert stats["disk_hits"] == 1
        assert stats["memory_hits"] == 1

    def test_miss_recorded(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        assert cache.get(KEY) is None
        assert cache.snapshot()["misses"] == 1

    def test_memory_only_mode(self):
        cache = ResultCache(use_disk=False)
        cache.put(KEY, {"v": 1})
        assert cache.lookup(KEY) == ({"v": 1}, "memory")
        assert cache.snapshot()["disk_enabled"] is False

    def test_quarantined_disk_entry_is_miss(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(KEY, {"v": 1})
        cache.memory.clear()
        cache.disk._path(KEY).write_text("junk", encoding="utf-8")
        assert cache.get(KEY) is None
        assert cache.snapshot()["disk_quarantined"] == 1

    def test_thread_safety_smoke(self, tmp_path):
        cache = ResultCache(memory_budget=50_000, disk_dir=tmp_path)
        errors = []

        def hammer(i):
            try:
                for j in range(30):
                    key = f"{(i + j) % 8:064d}"
                    cache.put(key, {"v": [i, j]})
                    cache.get(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
