"""Tests for scale-curve benchmarking (:mod:`repro.bench.scale_curve`),
the exponent-drift diff, and the ``--scale-curve`` CLI mode."""

import json

import pytest

from repro.bench import fit_power_law, run_scale_curve, validate_scale_payload
from repro.bench.__main__ import main as bench_main
from repro.errors import ReproError
from repro.obs import (
    diff_scale_payloads,
    render_scale_html,
    render_scale_markdown,
)

#: A tiny, fast ladder shared by the tests that need a real sweep.
_LADDER = dict(
    circuit="Test02",
    seed=0,
    scales=(0.1, 0.2, 0.4),
    algorithms=("fm",),
)


@pytest.fixture(scope="module")
def payload():
    return run_scale_curve(**_LADDER)


class TestFit:
    def test_recovers_exact_power_law(self):
        sizes = [10, 100, 1000, 10_000]
        values = [3.0 * n ** 2 for n in sizes]
        fit = fit_power_law(sizes, values)
        assert fit["exponent"] == pytest.approx(2.0, abs=1e-6)
        assert fit["coeff"] == pytest.approx(3.0, rel=1e-6)
        assert fit["stderr"] == pytest.approx(0.0, abs=1e-6)
        assert fit["r2"] == pytest.approx(1.0, abs=1e-6)

    def test_noisy_fit_reports_uncertainty(self):
        sizes = [10, 100, 1000, 10_000]
        values = [n ** 1.5 * f for n, f in zip(sizes, (1.3, 0.8, 1.2, 0.9))]
        fit = fit_power_law(sizes, values)
        assert fit["exponent"] == pytest.approx(1.5, abs=0.2)
        assert fit["stderr"] > 0
        assert 0 < fit["r2"] < 1

    def test_rejects_degenerate_ladders(self):
        with pytest.raises(ReproError):
            fit_power_law([100], [1.0])
        with pytest.raises(ReproError):
            fit_power_law([100, 100], [1.0, 2.0])
        with pytest.raises(ReproError):
            fit_power_law([100, 200], [1.0])


class TestRunScaleCurve:
    def test_payload_is_schema_valid(self, payload):
        assert validate_scale_payload(payload) == []
        assert payload["kind"] == "scale"
        assert payload["circuit"] == "Test02"

    def test_points_grow_along_the_ladder(self, payload):
        points = payload["algorithms"][0]["points"]
        assert len(points) == 3
        modules = [p["modules"] for p in points]
        assert modules == sorted(modules) and modules[0] < modules[-1]
        for p in points:
            assert p["wall_s"] > 0
            assert p["peak_mem_bytes"] > 0
            assert p["nets_cut"] >= 0

    def test_fits_present_for_both_metrics(self, payload):
        fits = payload["algorithms"][0]["fits"]
        for metric in ("time", "memory"):
            assert set(fits[metric]) == {"exponent", "coeff", "stderr", "r2"}
        # Memory of any sane implementation grows at least linearly-ish
        # and far slower than n^3.
        assert 0.1 < fits["memory"]["exponent"] < 3.0

    def test_rejects_single_rung(self):
        with pytest.raises(ReproError):
            run_scale_curve(circuit="Test02", scales=(0.2,))

    def test_writes_out_path(self, tmp_path):
        out = tmp_path / "BENCH_scale.json"
        run_scale_curve(
            circuit="Test02", scales=(0.1, 0.2), algorithms=("fm",),
            out_path=out,
        )
        assert validate_scale_payload(json.loads(out.read_text())) == []


class TestValidate:
    def test_flags_structural_problems(self, payload):
        assert validate_scale_payload([]) != []
        assert any(
            "kind" in p for p in validate_scale_payload({"schema": 1})
        )
        broken = json.loads(json.dumps(payload))
        del broken["algorithms"][0]["fits"]["time"]["exponent"]
        broken["algorithms"][0]["points"][0].pop("wall_s")
        problems = validate_scale_payload(broken)
        assert any("fits.time" in p for p in problems)
        assert any("point 0" in p for p in problems)


def _with_exponents(payload, delta):
    """Copy of ``payload`` with every fitted exponent shifted by
    ``delta`` and tight stderr, so the drift band stays at the floor."""
    copy = json.loads(json.dumps(payload))
    for alg in copy["algorithms"]:
        for metric in ("time", "memory"):
            alg["fits"][metric]["exponent"] += delta
            alg["fits"][metric]["stderr"] = 0.0
    return copy


class TestDiff:
    def test_self_diff_is_unchanged_and_passes(self, payload):
        diff = diff_scale_payloads(payload, payload)
        assert not diff.has_regressions
        exponents = [f for f in diff.fields if f.kind == "exponent"]
        assert len(exponents) == 2  # time + memory for one algorithm
        assert all(f.status == "unchanged" for f in exponents)

    def test_grown_exponent_regresses_and_gates(self, payload):
        current = _with_exponents(payload, +1.0)
        baseline = _with_exponents(payload, 0.0)
        diff = diff_scale_payloads(baseline, current)
        assert diff.has_regressions
        assert {f.name for f in diff.regressions} == {
            "fm.time_exponent", "fm.memory_exponent",
        }
        assert all(f.deterministic for f in diff.regressions)

    def test_shrunk_exponent_improves(self, payload):
        diff = diff_scale_payloads(
            _with_exponents(payload, 0.0), _with_exponents(payload, -1.0)
        )
        assert not diff.has_regressions
        assert any(f.status == "improved" for f in diff.fields)

    def test_stderr_widens_the_band(self, payload):
        baseline = _with_exponents(payload, 0.0)
        current = _with_exponents(payload, +0.5)
        # 0.5 drift > 0.2 floor: regresses with exact fits...
        assert diff_scale_payloads(baseline, current).has_regressions
        # ...but not when the fits themselves are that uncertain.
        for alg in current["algorithms"]:
            for metric in ("time", "memory"):
                alg["fits"][metric]["stderr"] = 0.3
        assert not diff_scale_payloads(baseline, current).has_regressions

    def test_wall_and_mem_fields_never_gate(self, payload):
        current = json.loads(json.dumps(payload))
        last = current["algorithms"][0]["points"][-1]
        last["wall_s"] = last["wall_s"] * 100
        last["peak_mem_bytes"] = int(last["peak_mem_bytes"] * 100)
        diff = diff_scale_payloads(payload, current)
        assert not diff.has_regressions  # advisory only
        by_name = {f.name: f for f in diff.fields}
        assert by_name["fm.max_wall_s"].status == "slower"
        assert by_name["fm.max_peak_mem_bytes"].status == "grew"

    def test_mismatched_config_is_surfaced(self, payload):
        other = json.loads(json.dumps(payload))
        other["circuit"] = "Prim1"
        other["seed"] = 7
        diff = diff_scale_payloads(payload, other)
        assert set(diff.mismatched_config) == {"circuit", "seed"}

    def test_one_sided_algorithms_do_not_gate(self, payload):
        current = json.loads(json.dumps(payload))
        current["algorithms"][0]["algorithm"] = "kl"
        diff = diff_scale_payloads(payload, current)
        statuses = {f.name: f.status for f in diff.fields}
        assert statuses["fm"] == "missing"
        assert statuses["kl"] == "new"
        assert not diff.has_regressions


class TestRender:
    def test_html_report_has_loglog_charts(self, payload):
        html = render_scale_html(payload)
        assert html.count("<svg") == 2  # time + memory for one algorithm
        assert "log-log" in html
        assert "fm" in html

    def test_html_includes_diff_verdict(self, payload):
        diff = diff_scale_payloads(
            _with_exponents(payload, 0.0), _with_exponents(payload, +1.0)
        )
        html = render_scale_html(payload, diff=diff)
        assert "regressed" in html.lower()

    def test_markdown_summarises_fits_and_diff(self, payload):
        md = render_scale_markdown(payload)
        assert "Test02" in md and "fm" in md and "n^" in md
        diff = diff_scale_payloads(payload, payload)
        md = render_scale_markdown(payload, diff=diff)
        assert "no exponent regressions" in md


class TestCli:
    def _run(self, *extra, tmp_path):
        out = tmp_path / "BENCH_scale.json"
        argv = [
            "--scale-curve", "--curve-circuit", "Test02",
            "--curve-scales", "0.1,0.2", "--curve-algorithms", "fm",
            "--out", str(out), *extra,
        ]
        return bench_main(argv), out

    def test_writes_valid_payload(self, tmp_path, capsys):
        rc, out = self._run(tmp_path=tmp_path)
        assert rc == 0
        assert validate_scale_payload(json.loads(out.read_text())) == []
        assert "n^" in capsys.readouterr().out

    def test_compare_gates_on_drift(self, tmp_path, capsys):
        rc, out = self._run(tmp_path=tmp_path)
        assert rc == 0
        baseline = json.loads(out.read_text())
        low = tmp_path / "low.json"
        low.write_text(json.dumps(_with_exponents(baseline, -2.0)))
        rc, _ = self._run(
            "--compare", str(low), "--fail-on-regress", tmp_path=tmp_path
        )
        assert rc == 1
        assert "FAIL" in capsys.readouterr().err
        # Same baseline without --fail-on-regress reports but passes.
        rc, _ = self._run("--compare", str(low), tmp_path=tmp_path)
        assert rc == 0

    def test_bad_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 99}))
        rc, _ = self._run("--compare", str(bad), tmp_path=tmp_path)
        assert rc == 2
        assert "not a scale-curve payload" in capsys.readouterr().err

    def test_unknown_circuit_is_usage_error(self, tmp_path, capsys):
        rc = bench_main([
            "--scale-curve", "--curve-circuit", "nope",
            "--out", str(tmp_path / "x.json"),
        ])
        assert rc == 2
        assert "unknown circuit" in capsys.readouterr().err

    def test_positional_names_rejected(self, tmp_path, capsys):
        rc = bench_main([
            "Test02", "--scale-curve", "--out", str(tmp_path / "x.json"),
        ])
        assert rc == 2
        assert "--curve-circuit" in capsys.readouterr().err

    def test_report_written(self, tmp_path):
        report = tmp_path / "scale.html"
        rc, _ = self._run("--report", str(report), tmp_path=tmp_path)
        assert rc == 0
        assert "<svg" in report.read_text()

    def test_checked_in_baseline_is_valid(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[1]
            / "benchmarks" / "results" / "BENCH_scale.json"
        )
        baseline = json.loads(path.read_text())
        assert validate_scale_payload(baseline) == []
        assert baseline["circuit"] == "Prim2"
        assert {a["algorithm"] for a in baseline["algorithms"]} == {
            "ig-match", "fm",
        }
