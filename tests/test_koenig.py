"""Tests for the König / Dulmage–Mendelsohn decomposition.

Verifies Theorems 2 and 3 of the paper: |MVC| = |MM| (König) and
|MIS| + |MVC| = n, plus the structural properties of the Even/Odd/core
classes and the Hasan–Liu critical set.
"""

import random

import pytest
from hypothesis import given, settings

from repro.errors import MatchingError
from repro.matching import (
    BipartiteGraph,
    decompose_bipartite,
    hopcroft_karp,
    matching_size,
)
from tests.conftest import bipartite_strategy


def build(nl, nr, edges):
    b = BipartiteGraph([("L", i) for i in range(nl)],
                       [("R", j) for j in range(nr)])
    for l, r in edges:
        b.add_edge(("L", l), ("R", r))
    return b


def decomposed(nl, nr, edges):
    b = build(nl, nr, edges)
    match = hopcroft_karp(b)
    return b, match, decompose_bipartite(b, match)


class TestKnownInstances:
    def test_single_edge(self):
        b, match, d = decomposed(1, 1, [(0, 0)])
        # Both vertices matched and unreachable: the core.
        assert d.core_left == {("L", 0)}
        assert d.core_right == {("R", 0)}
        assert d.critical_set == frozenset()

    def test_star(self):
        # One left vertex, three right: two rights unmatched, the left
        # vertex is the unique MVC (critical).
        b, match, d = decomposed(1, 3, [(0, 0), (0, 1), (0, 2)])
        assert d.critical_set == {("L", 0)}
        assert d.minimum_vertex_cover() == {("L", 0)}
        mis = d.maximum_independent_set()
        assert mis == {("R", 0), ("R", 1), ("R", 2)}

    def test_isolated_vertices_are_winners(self):
        b, match, d = decomposed(2, 2, [(0, 0)])
        assert ("L", 1) in d.even_left
        assert ("R", 1) in d.even_right


class TestTheorems:
    @settings(max_examples=80, deadline=None)
    @given(bipartite_strategy(max_side=6))
    def test_koenig_theorems_2_and_3(self, instance):
        nl, nr, edges = instance
        b, match, d = decomposed(nl, nr, edges)
        mm = matching_size(match)
        mvc = d.minimum_vertex_cover()
        mis = d.maximum_independent_set()
        n = nl + nr
        # Theorem 3: |MVC| = |MM|
        assert len(mvc) == mm
        # Theorem 2: |MIS| + |MVC| = n and they partition the vertices
        assert len(mis) + len(mvc) == n
        assert mis | mvc == b.left | b.right
        assert not (mis & mvc)

    @settings(max_examples=80, deadline=None)
    @given(bipartite_strategy(max_side=6))
    def test_cover_covers_and_mis_independent(self, instance):
        nl, nr, edges = instance
        b, match, d = decomposed(nl, nr, edges)
        mvc = d.minimum_vertex_cover()
        mis = d.maximum_independent_set()
        for l, r in b.edges():
            assert l in mvc or r in mvc
            assert not (l in mis and r in mis)

    @settings(max_examples=50, deadline=None)
    @given(bipartite_strategy(max_side=6))
    def test_both_core_orientations_work(self, instance):
        nl, nr, edges = instance
        b, match, d = decomposed(nl, nr, edges)
        for flag in (True, False):
            mvc = d.minimum_vertex_cover(cover_core_left=flag)
            assert len(mvc) == matching_size(match)
            for l, r in b.edges():
                assert l in mvc or r in mvc


class TestCriticalSet:
    def test_critical_set_independent_of_matching(self):
        # Hasan–Liu: Odd sets do not depend on which MM was used.
        rng = random.Random(4)
        nl = nr = 7
        edges = [(l, r) for l in range(nl) for r in range(nr)
                 if rng.random() < 0.3]
        b = build(nl, nr, edges)
        from repro.matching import augmenting_path_matching

        d1 = decompose_bipartite(b, hopcroft_karp(b))
        d2 = decompose_bipartite(b, augmenting_path_matching(b))
        assert d1.critical_set == d2.critical_set
        assert d1.even_left == d2.even_left
        assert d1.core_left == d2.core_left

    def test_critical_set_in_every_cover(self):
        # The critical set must be a subset of both orientations' MVCs.
        b, match, d = decomposed(
            3, 3, [(0, 0), (0, 1), (1, 0), (2, 2)]
        )
        for flag in (True, False):
            assert d.critical_set <= d.minimum_vertex_cover(flag)


class TestValidation:
    def test_non_maximum_matching_rejected(self):
        b = build(2, 2, [(0, 0), (0, 1), (1, 0)])
        # A maximal-but-not-maximum matching: just (0,0).
        bad = {("L", 0): ("R", 0), ("R", 0): ("L", 0)}
        with pytest.raises(MatchingError):
            decompose_bipartite(b, bad)

    def test_invalid_matching_rejected(self):
        b = build(2, 2, [(0, 0)])
        with pytest.raises(MatchingError):
            decompose_bipartite(b, {("L", 0): ("R", 1), ("R", 1): ("L", 0)})
