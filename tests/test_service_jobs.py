"""Job scheduler semantics: priorities, retries, deadlines, cancel."""

import threading
import time

import pytest

from repro.service import JobScheduler
from repro.service.jobs import (
    CANCELLED,
    CANCELLING,
    EXPIRED,
    FAILED,
    PENDING,
    RUNNING,
    SUCCEEDED,
)


@pytest.fixture
def scheduler():
    s = JobScheduler(workers=1, backoff_s=0.01)
    yield s
    s.shutdown()


class TestBasics:
    def test_submit_and_wait(self, scheduler):
        job = scheduler.submit(lambda: 41 + 1)
        done = scheduler.wait(job.id, timeout=5)
        assert done.status == SUCCEEDED
        assert done.result == 42
        assert done.attempts == 1

    def test_record_fields(self, scheduler):
        job = scheduler.submit(lambda: "ok", label="fm")
        scheduler.wait(job.id, timeout=5)
        record = job.record()
        assert record["status"] == SUCCEEDED
        assert record["label"] == "fm"
        assert record["result"] == "ok"
        assert record["queued_s"] >= 0
        assert record["running_s"] >= 0

    def test_unknown_job(self, scheduler):
        assert scheduler.get("nope") is None

    def test_duplicate_id_rejected(self, scheduler):
        scheduler.submit(lambda: 1, job_id="same")
        with pytest.raises(ValueError, match="duplicate"):
            scheduler.submit(lambda: 2, job_id="same")

    def test_submit_after_shutdown_raises(self):
        s = JobScheduler(workers=1)
        s.shutdown()
        with pytest.raises(RuntimeError):
            s.submit(lambda: 1)


def occupy_worker(scheduler):
    """Block the (single) worker until the returned event is set."""
    release = threading.Event()
    started = threading.Event()

    def blocker():
        started.set()
        release.wait(10)

    scheduler.submit(blocker)
    assert started.wait(5)
    return release


class TestPriorities:
    def test_higher_priority_runs_first(self, scheduler):
        release = occupy_worker(scheduler)
        order = []
        low = scheduler.submit(lambda: order.append("low"), priority=0)
        high = scheduler.submit(lambda: order.append("high"), priority=5)
        release.set()
        scheduler.wait(low.id, timeout=5)
        scheduler.wait(high.id, timeout=5)
        assert order == ["high", "low"]

    def test_fifo_within_priority(self, scheduler):
        release = occupy_worker(scheduler)
        order = []
        first = scheduler.submit(lambda: order.append("a"), priority=1)
        second = scheduler.submit(lambda: order.append("b"), priority=1)
        release.set()
        scheduler.wait(first.id, timeout=5)
        scheduler.wait(second.id, timeout=5)
        assert order == ["a", "b"]


class TestRetries:
    def test_bounded_retries_then_success(self, scheduler):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "recovered"

        job = scheduler.submit(flaky, max_retries=5)
        done = scheduler.wait(job.id, timeout=10)
        assert done.status == SUCCEEDED
        assert done.result == "recovered"
        assert done.attempts == 3
        assert scheduler.counts["retried"] == 2

    def test_retry_budget_exhausted_fails(self, scheduler):
        def always_broken():
            raise ValueError("permanent damage")

        job = scheduler.submit(always_broken, max_retries=2)
        done = scheduler.wait(job.id, timeout=10)
        assert done.status == FAILED
        assert done.attempts == 3
        assert "permanent damage" in done.error
        assert scheduler.counts["failed"] == 1

    def test_no_retries_by_default(self, scheduler):
        job = scheduler.submit(lambda: 1 / 0)
        done = scheduler.wait(job.id, timeout=5)
        assert done.status == FAILED
        assert done.attempts == 1
        assert "ZeroDivisionError" in done.error


class TestCancellation:
    def test_cancel_pending(self, scheduler):
        release = occupy_worker(scheduler)
        job = scheduler.submit(lambda: "never")
        assert scheduler.cancel(job.id)
        release.set()
        done = scheduler.wait(job.id, timeout=5)
        assert done.status == CANCELLED
        assert done.result is None

    def test_cancel_finished_is_noop(self, scheduler):
        job = scheduler.submit(lambda: 1)
        scheduler.wait(job.id, timeout=5)
        assert not scheduler.cancel(job.id)
        assert job.status == SUCCEEDED

    def test_cancel_unknown(self, scheduler):
        assert not scheduler.cancel("nope")

    def test_cancel_running_marks_cancelling(self, scheduler):
        release = threading.Event()
        started = threading.Event()

        def work():
            started.set()
            release.wait(10)
            return "finished anyway"

        job = scheduler.submit(work)
        assert started.wait(5)
        assert job.status == RUNNING
        assert scheduler.cancel(job.id)
        assert job.status == CANCELLING
        # Idempotent while the work is still draining.
        assert scheduler.cancel(job.id)
        release.set()
        done = scheduler.wait(job.id, timeout=5)
        assert done.status == CANCELLED
        assert done.result is None
        assert "result discarded" in done.error
        assert scheduler.counts["cancelled"] == 1

    def test_cancel_running_suppresses_retries(self, scheduler):
        release = threading.Event()
        started = threading.Event()

        def work():
            started.set()
            release.wait(10)
            raise RuntimeError("boom")

        job = scheduler.submit(work, max_retries=3)
        assert started.wait(5)
        assert scheduler.cancel(job.id)
        release.set()
        done = scheduler.wait(job.id, timeout=5)
        assert done.status == CANCELLED
        assert done.attempts == 1
        assert "cancelled while running" in done.error

    def test_cancelling_counts_as_outstanding(self, scheduler):
        release = threading.Event()
        started = threading.Event()

        def work():
            started.set()
            release.wait(10)

        job = scheduler.submit(work)
        assert started.wait(5)
        scheduler.cancel(job.id)
        snap = scheduler.snapshot()
        assert snap["cancelling"] == 1
        release.set()
        scheduler.wait(job.id, timeout=5)
        assert scheduler.snapshot()["cancelling"] == 0


class TestDeadlines:
    def test_expired_before_start(self, scheduler):
        release = occupy_worker(scheduler)
        job = scheduler.submit(lambda: "late", deadline_s=0.01)
        time.sleep(0.05)
        release.set()
        done = scheduler.wait(job.id, timeout=5)
        assert done.status == EXPIRED
        assert "deadline" in done.error
        assert scheduler.counts["expired"] == 1

    def test_generous_deadline_runs(self, scheduler):
        job = scheduler.submit(lambda: "fast", deadline_s=30)
        done = scheduler.wait(job.id, timeout=5)
        assert done.status == SUCCEEDED


class TestSnapshot:
    def test_counts(self, scheduler):
        job = scheduler.submit(lambda: 1)
        scheduler.wait(job.id, timeout=5)
        snap = scheduler.snapshot()
        assert snap["submitted"] >= 1
        assert snap["completed"] >= 1
        assert snap["pending"] == 0
        assert snap["running"] == 0

    def test_wait_timeout_returns_unfinished(self, scheduler):
        release = occupy_worker(scheduler)
        job = scheduler.submit(lambda: "slow")
        got = scheduler.wait(job.id, timeout=0.05)
        assert got.status == PENDING
        release.set()
        assert scheduler.wait(job.id, timeout=5).status == SUCCEEDED
