"""Tests for the synthetic hierarchical netlist generator."""

import random

import pytest

from repro.bench import generate_hierarchical, sample_net_sizes
from repro.errors import BenchmarkError
from repro.graph import connected_components
from repro.hypergraph import net_size_histogram, validate
from repro.netmodels import get_model
from repro.partitioning.metrics import net_cut_count


class TestSampleSizes:
    def test_count_and_bounds(self):
        rng = random.Random(0)
        sizes = sample_net_sizes(rng, 500, mean_net_size=3.4,
                                 max_net_size=20, wide_max=60)
        assert len(sizes) == 500
        assert all(2 <= s <= 60 for s in sizes)

    def test_mean_approximate(self):
        rng = random.Random(1)
        sizes = sample_net_sizes(
            rng, 4000, mean_net_size=3.4, wide_fraction=0.0
        )
        mean = sum(sizes) / len(sizes)
        assert 3.0 < mean < 3.8

    def test_wide_tail_present(self):
        rng = random.Random(2)
        sizes = sample_net_sizes(
            rng, 1000, max_net_size=20, wide_fraction=0.02, wide_max=80
        )
        assert sum(1 for s in sizes if s >= 20) >= 15

    def test_bad_mean(self):
        with pytest.raises(BenchmarkError):
            sample_net_sizes(random.Random(0), 10, mean_net_size=1.5)


class TestGenerate:
    def test_counts(self):
        h = generate_hierarchical(
            num_modules=150, num_nets=170, natural_fraction=0.3,
            crossing_nets=4, seed=0,
        )
        assert h.num_modules == 150
        assert h.num_nets == 170

    def test_deterministic(self):
        a = generate_hierarchical(100, 110, seed=42)
        b = generate_hierarchical(100, 110, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_hierarchical(100, 110, seed=1)
        b = generate_hierarchical(100, 110, seed=2)
        assert a != b

    def test_no_isolated_modules(self):
        for seed in range(4):
            h = generate_hierarchical(120, 130, seed=seed)
            assert h.isolated_modules() == []

    def test_validation_clean_of_errors(self):
        h = generate_hierarchical(100, 120, seed=3)
        assert validate(h).ok

    def test_each_side_connected(self):
        h = generate_hierarchical(
            num_modules=200, num_nets=220, natural_fraction=0.25,
            crossing_nets=3, seed=5,
        )
        g = get_model("clique").to_graph(h)
        assert len(connected_components(g)) == 1

    def test_planted_partition_cut(self):
        n, crossing, noise = 200, 5, 0.0
        h = generate_hierarchical(
            num_modules=n, num_nets=230, natural_fraction=0.3,
            crossing_nets=crossing, noise=noise, seed=7,
        )
        num_u = round(0.3 * n)
        sides = [0 if v < num_u else 1 for v in range(n)]
        cut = net_cut_count(h, sides)
        # All planted crossings cut; rewiring repair may add a few.
        assert crossing <= cut <= crossing + 8

    def test_exact_histogram(self):
        hist = {2: 40, 3: 20, 5: 10, 9: 2}
        h = generate_hierarchical(
            num_modules=80, num_nets=0, net_size_histogram=hist,
            crossing_nets=2, seed=1,
        )
        assert net_size_histogram(h) == hist

    def test_noise_nets_cross(self):
        h_clean = generate_hierarchical(
            200, 220, natural_fraction=0.5, crossing_nets=2,
            noise=0.0, seed=9,
        )
        h_noisy = generate_hierarchical(
            200, 220, natural_fraction=0.5, crossing_nets=2,
            noise=0.2, seed=9,
        )
        sides = [0 if v < 100 else 1 for v in range(200)]
        assert net_cut_count(h_noisy, sides) > net_cut_count(h_clean, sides)

    def test_bad_fraction(self):
        with pytest.raises(BenchmarkError):
            generate_hierarchical(50, 60, natural_fraction=1.5)

    def test_bad_escape(self):
        with pytest.raises(BenchmarkError):
            generate_hierarchical(50, 60, escape=1.0)

    def test_too_many_crossing(self):
        with pytest.raises(BenchmarkError):
            generate_hierarchical(50, 10, crossing_nets=10)

    def test_too_few_modules(self):
        with pytest.raises(BenchmarkError):
            generate_hierarchical(2, 10)

    def test_net_sizes_within_module_count(self):
        h = generate_hierarchical(
            20, 40, crossing_nets=2, max_net_size=18, seed=0
        )
        assert max(h.net_sizes()) <= 20
