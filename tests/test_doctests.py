"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro
import repro.graph.graph
import repro.hypergraph.builder
import repro.hypergraph.hypergraph
import repro.matching.bipartite
import repro.partitioning.partition


@pytest.mark.parametrize(
    "module",
    [
        repro,
        repro.graph.graph,
        repro.hypergraph.builder,
        repro.hypergraph.hypergraph,
        repro.matching.bipartite,
        repro.partitioning.partition,
    ],
    ids=lambda m: m.__name__,
)
def test_doctests(module):
    failures, tested = doctest.testmod(
        module, verbose=False, raise_on_error=False
    )
    assert tested > 0, f"no doctests found in {module.__name__}"
    assert failures == 0
