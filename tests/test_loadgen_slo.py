"""SLO spec tests: parsing, noise-aware verdicts, the gate."""

import pytest

from repro.errors import ReproError
from repro.loadgen import SLOSpec, evaluate_slo, parse_slo, slo_ok
from repro.obs.diff import DiffThresholds


class TestParseSlo:
    def test_acceptance_form(self):
        spec = parse_slo("p99=2.0,error_rate=0.01")
        assert spec.p99 == 2.0
        assert spec.error_rate == 0.01
        assert spec.p50 is None and spec.rps is None

    def test_all_objectives(self):
        spec = parse_slo("p50=0.1,p95=0.5,p99=2.0,error_rate=0,rps=5")
        assert spec.objectives() == {
            "p50": 0.1,
            "p95": 0.5,
            "p99": 2.0,
            "error_rate": 0.0,
            "rps": 5.0,
        }

    def test_unknown_objective_rejected(self):
        with pytest.raises(ReproError, match="unknown SLO objective"):
            parse_slo("p42=1.0")

    def test_repeat_rejected(self):
        with pytest.raises(ReproError, match="repeated"):
            parse_slo("p99=1,p99=2")

    def test_missing_target_rejected(self):
        with pytest.raises(ReproError, match="needs"):
            parse_slo("p99")

    def test_bad_target_rejected(self):
        with pytest.raises(ReproError, match="bad target"):
            parse_slo("p99=fast")

    def test_negative_target_rejected(self):
        with pytest.raises(ReproError, match=">= 0"):
            parse_slo("rps=-1")

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            parse_slo("")
        with pytest.raises(ReproError):
            parse_slo(" , ")

    def test_describe_carries_noise_model(self):
        doc = parse_slo("p99=2.0").describe()
        assert doc["p99"] == 2.0
        assert doc["noise"] == {"rel_tol": 0.25, "abs_floor_s": 0.02}


def _verdict(rows, objective):
    return next(r for r in rows if r["objective"] == objective)["verdict"]


class TestEvaluateSlo:
    def test_latency_pass(self):
        spec = parse_slo("p99=2.0")
        rows = evaluate_slo(spec, {"p99": 0.5}, None, None)
        assert _verdict(rows, "p99") == "pass"

    def test_latency_hard_fail(self):
        spec = parse_slo("p99=1.0")
        rows = evaluate_slo(spec, {"p99": 2.0}, None, None)
        assert _verdict(rows, "p99") == "fail"

    def test_latency_breach_within_noise_band(self):
        # 2% over a 2 s ceiling is inside the 25% relative band —
        # re-running the load test could land either side of the line.
        spec = parse_slo("p99=2.0")
        rows = evaluate_slo(spec, {"p99": 2.04}, None, None)
        assert _verdict(rows, "p99") == "pass-within-noise"

    def test_tiny_target_uses_absolute_floor(self):
        # A 5 ms breach of a 1 ms ceiling is under the 20 ms absolute
        # floor: indistinguishable from scheduler jitter.
        spec = parse_slo("p50=0.001")
        rows = evaluate_slo(spec, {"p50": 0.006}, None, None)
        assert _verdict(rows, "p50") == "pass-within-noise"

    def test_quantile_without_data_is_skipped(self):
        spec = parse_slo("p99=1.0")
        rows = evaluate_slo(spec, {"p99": None}, None, None)
        assert _verdict(rows, "p99") == "skipped"

    def test_error_rate_is_exact(self):
        spec = parse_slo("error_rate=0.01")
        ok = evaluate_slo(spec, {}, 0.01, None)
        bad = evaluate_slo(spec, {}, 0.0101, None)
        assert _verdict(ok, "error_rate") == "pass"
        assert _verdict(bad, "error_rate") == "fail"

    def test_zero_error_budget(self):
        spec = parse_slo("error_rate=0")
        assert _verdict(evaluate_slo(spec, {}, 0.0, None), "error_rate") == "pass"
        assert _verdict(evaluate_slo(spec, {}, 0.001, None), "error_rate") == "fail"

    def test_rps_floor(self):
        spec = parse_slo("rps=100")
        assert _verdict(evaluate_slo(spec, {}, None, 150.0), "rps") == "pass"
        assert _verdict(evaluate_slo(spec, {}, None, 10.0), "rps") == "fail"
        # 5% under the floor is within the noise band.
        assert (
            _verdict(evaluate_slo(spec, {}, None, 95.0), "rps")
            == "pass-within-noise"
        )

    def test_unasserted_objectives_produce_no_rows(self):
        spec = parse_slo("p99=2.0")
        rows = evaluate_slo(spec, {"p50": 0.1, "p99": 0.1}, 0.5, 1.0)
        assert [r["objective"] for r in rows] == ["p99"]

    def test_custom_thresholds(self):
        spec = SLOSpec(
            p99=1.0, thresholds=DiffThresholds(rel_tol=0.0, abs_floor_s=0.0)
        )
        rows = evaluate_slo(spec, {"p99": 1.0001}, None, None)
        assert _verdict(rows, "p99") == "fail"


class TestSloOk:
    def test_gate(self):
        assert slo_ok([])
        assert slo_ok([{"verdict": "pass"}, {"verdict": "skipped"}])
        assert slo_ok([{"verdict": "pass-within-noise"}])
        assert not slo_ok([{"verdict": "pass"}, {"verdict": "fail"}])
