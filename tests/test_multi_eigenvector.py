"""Tests for nontrivial_eigenvectors, the bisection bound, and the
multi-ordering IG-Match variant."""

import numpy as np
import pytest

from repro.analysis import bisection_width_lower_bound
from repro.errors import SpectralError
from repro.graph import Graph, laplacian_matrix
from repro.partitioning import IGMatchConfig, ig_match
from repro.spectral import nontrivial_eigenvectors
from tests.conftest import connected_random_graph


class TestNontrivialEigenvectors:
    def test_first_column_is_fiedler(self):
        from repro.spectral import fiedler_vector

        g = connected_random_graph(0, num_vertices=18)
        values, vectors = nontrivial_eigenvectors(g, 3)
        fiedler = fiedler_vector(g)
        assert values[0] == pytest.approx(fiedler.eigenvalue, abs=1e-8)
        assert abs(np.dot(vectors[:, 0], fiedler.vector)) == (
            pytest.approx(1.0, abs=1e-7)
        )

    def test_eigen_equations(self):
        g = connected_random_graph(5, num_vertices=16)
        values, vectors = nontrivial_eigenvectors(g, 3)
        q = laplacian_matrix(g).toarray()
        for i in range(3):
            residual = q @ vectors[:, i] - values[i] * vectors[:, i]
            assert np.linalg.norm(residual) < 1e-6

    def test_values_ascending_positive(self):
        g = connected_random_graph(2, num_vertices=20)
        values, _ = nontrivial_eigenvectors(g, 4)
        assert np.all(np.diff(values) >= -1e-9)
        assert values[0] > 0

    def test_backends_agree(self):
        g = connected_random_graph(7, num_vertices=30, extra_edges=25)
        values_s, _ = nontrivial_eigenvectors(g, 2, backend="scipy")
        values_l, _ = nontrivial_eigenvectors(g, 2, backend="lanczos")
        assert np.allclose(values_s, values_l, atol=1e-6)

    def test_disconnected_rejected(self):
        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        g.add_edge(4, 5)
        with pytest.raises(SpectralError):
            nontrivial_eigenvectors(g, 2)

    def test_too_many_requested(self):
        g = connected_random_graph(1, num_vertices=5)
        with pytest.raises(SpectralError):
            nontrivial_eigenvectors(g, 5)

    def test_bad_count(self):
        g = connected_random_graph(1, num_vertices=8)
        with pytest.raises(SpectralError):
            nontrivial_eigenvectors(g, 0)


class TestBisectionBound:
    def test_holds_against_exact_bisection(self):
        import itertools

        from repro.partitioning.metrics import graph_edge_cut

        for seed in range(5):
            g = connected_random_graph(seed, num_vertices=10)
            bound = bisection_width_lower_bound(g)
            best = float("inf")
            for combo in itertools.combinations(range(10), 5):
                sides = [0 if v in combo else 1 for v in range(10)]
                best = min(best, graph_edge_cut(g, sides))
            assert best >= bound - 1e-9

    def test_tight_on_complete_graph(self):
        import itertools

        n = 6
        g = Graph(n)
        for i, j in itertools.combinations(range(n), 2):
            g.add_edge(i, j)
        # K_n: lambda_2 = n, bound = n^2/4 = 9 = actual bisection cut.
        assert bisection_width_lower_bound(g) == pytest.approx(9.0)


class TestMultiOrderingIGMatch:
    def test_never_worse_than_single(self, medium_circuit):
        single = ig_match(medium_circuit, IGMatchConfig(seed=0))
        multi = ig_match(
            medium_circuit,
            IGMatchConfig(seed=0, candidate_orderings=3),
        )
        assert multi.ratio_cut <= single.ratio_cut + 1e-15
        assert multi.details["orderings_tried"] == 3

    def test_deterministic(self, small_circuit):
        a = ig_match(
            small_circuit, IGMatchConfig(seed=0, candidate_orderings=2)
        )
        b = ig_match(
            small_circuit, IGMatchConfig(seed=0, candidate_orderings=2)
        )
        assert a.partition.sides == b.partition.sides

    def test_fallback_on_tiny_graph(self):
        from repro.hypergraph import Hypergraph

        # 3 nets cannot supply 4 nontrivial eigenvectors: fall back.
        h = Hypergraph([[0, 1], [1, 2], [2, 3]])
        result = ig_match(h, IGMatchConfig(candidate_orderings=4))
        assert result.details["orderings_tried"] == 1

    def test_explicit_order_bypasses_candidates(self, small_circuit):
        order = list(range(small_circuit.num_nets))
        result = ig_match(
            small_circuit,
            IGMatchConfig(candidate_orderings=3),
            order=order,
        )
        assert result.details["orderings_tried"] == 1
