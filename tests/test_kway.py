"""Tests for direct spectral k-way partitioning and scaled cost."""

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partitioning import (
    SpectralKWayConfig,
    net_gain_refine,
    recursive_partition,
    scaled_cost,
    spectral_kway,
)
from tests.conftest import random_hypergraph


def three_cluster_circuit():
    """Three 4-module cliques chained by two bridge nets."""
    nets = []
    for base in (0, 4, 8):
        for i in range(4):
            for j in range(i + 1, 4):
                nets.append([base + i, base + j])
    nets.append([3, 4])
    nets.append([7, 8])
    return Hypergraph(nets, name="three-cluster")


class TestScaledCost:
    def test_hand_computed(self):
        h = three_cluster_circuit()
        block_of = [0] * 4 + [1] * 4 + [2] * 4
        # Each bridge net is external to 2 blocks:
        # external = [1, 2, 1]; sizes = [4,4,4]; n=12, k=3.
        expected = (1 / 4 + 2 / 4 + 1 / 4) / (12 * 2)
        assert scaled_cost(h, block_of, 3) == pytest.approx(expected)

    def test_empty_block_infeasible(self):
        h = three_cluster_circuit()
        assert scaled_cost(h, [0] * 12, 2) == float("inf")

    def test_bad_labels(self):
        h = three_cluster_circuit()
        with pytest.raises(PartitionError):
            scaled_cost(h, [0] * 11, 3)
        with pytest.raises(PartitionError):
            scaled_cost(h, [5] * 12, 3)

    def test_better_partition_scores_lower(self):
        h = three_cluster_circuit()
        natural = [0] * 4 + [1] * 4 + [2] * 4
        scrambled = [v % 3 for v in range(12)]
        assert scaled_cost(h, natural, 3) < scaled_cost(h, scrambled, 3)


class TestSpectralKWay:
    def test_finds_three_clusters(self):
        h = three_cluster_circuit()
        result = spectral_kway(h, 3, SpectralKWayConfig(seed=0))
        assert result.num_blocks == 3
        assert sorted(result.block_sizes) == [4, 4, 4]
        assert result.nets_cut == 2  # only the two bridges

    def test_blocks_never_empty(self):
        for seed in range(4):
            h = random_hypergraph(seed, num_modules=24, num_nets=30)
            result = spectral_kway(h, 4, SpectralKWayConfig(seed=seed))
            assert all(s >= 1 for s in result.block_sizes)

    def test_details_present(self, medium_circuit):
        result = spectral_kway(medium_circuit, 4)
        assert result.details["algorithm"] == "spectral-kway"
        assert result.details["scaled_cost"] < float("inf")
        assert result.details["dimensions"] == 3

    def test_deterministic(self, small_circuit):
        a = spectral_kway(small_circuit, 3, SpectralKWayConfig(seed=1))
        b = spectral_kway(small_circuit, 3, SpectralKWayConfig(seed=1))
        assert a.block_of == b.block_of

    def test_competitive_with_recursive(self, medium_circuit):
        direct = spectral_kway(medium_circuit, 4)
        recursive = recursive_partition(medium_circuit, 4)
        direct_cost = scaled_cost(medium_circuit, direct.block_of, 4)
        recursive_cost = scaled_cost(
            medium_circuit, recursive.block_of, 4
        )
        # Same league (either may win on a given circuit).
        assert direct_cost <= 5 * recursive_cost

    def test_k_validation(self, small_circuit):
        with pytest.raises(PartitionError):
            spectral_kway(small_circuit, 1)
        with pytest.raises(PartitionError):
            spectral_kway(small_circuit, 10**6)

    def test_fm_refine_mode_never_worse(self, small_circuit):
        plain = spectral_kway(
            small_circuit, 3, SpectralKWayConfig(seed=0)
        )
        strong = spectral_kway(
            small_circuit, 3, SpectralKWayConfig(seed=0, fm_refine=True)
        )
        assert strong.nets_cut <= plain.nets_cut


class TestNetGainRefine:
    def test_improves_scrambled_partition(self):
        h = three_cluster_circuit()
        block_of = [v % 3 for v in range(12)]
        before = scaled_cost(h, block_of, 3)
        moves = net_gain_refine(h, block_of, 3, max_passes=8)
        after = scaled_cost(h, block_of, 3)
        assert moves > 0
        assert after <= before

    def test_respects_min_block(self):
        h = three_cluster_circuit()
        block_of = [0] * 4 + [1] * 4 + [2] * 4
        net_gain_refine(h, block_of, 3, min_block=4)
        sizes = [block_of.count(b) for b in range(3)]
        assert all(s >= 4 for s in sizes)

    def test_fixed_point_on_natural_partition(self):
        h = three_cluster_circuit()
        block_of = [0] * 4 + [1] * 4 + [2] * 4
        moves = net_gain_refine(h, block_of, 3)
        assert moves == 0
        assert block_of == [0] * 4 + [1] * 4 + [2] * 4

    def test_gain_accounting_matches_metric(self):
        import random

        for seed in range(4):
            h = random_hypergraph(seed + 9, num_modules=15, num_nets=18)
            rng = random.Random(seed)
            block_of = [rng.randrange(3) for _ in range(15)]
            for b in range(3):  # ensure non-empty
                block_of[b] = b

            def spanning(labels):
                return sum(
                    1
                    for _, pins in h.iter_nets()
                    if len({labels[p] for p in pins}) > 1
                )

            before = spanning(block_of)
            net_gain_refine(h, block_of, 3, max_passes=6)
            after = spanning(block_of)
            assert after <= before
