"""Tests for Fiedler vectors and the disconnected-graph handling."""

import numpy as np
import pytest

from repro.errors import SpectralError
from repro.graph import Graph, laplacian_matrix
from repro.spectral import component_spectral_values, fiedler_vector
from tests.conftest import connected_random_graph


def path_graph(n):
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestFiedlerVector:
    def test_path_known_eigenvalue(self):
        # Path P_n: lambda_2 = 2(1 - cos(pi/n)).
        n = 8
        result = fiedler_vector(path_graph(n))
        expected = 2 * (1 - np.cos(np.pi / n))
        assert result.eigenvalue == pytest.approx(expected, abs=1e-8)

    def test_path_vector_monotone(self):
        # The Fiedler vector of a path is monotone along it.
        result = fiedler_vector(path_graph(9))
        diffs = np.diff(result.vector)
        assert np.all(diffs > 0) or np.all(diffs < 0)

    def test_orthogonal_to_constant(self):
        g = connected_random_graph(4, num_vertices=15)
        result = fiedler_vector(g)
        assert abs(result.vector.sum()) < 1e-7

    def test_eigen_equation(self):
        g = connected_random_graph(8, num_vertices=15)
        result = fiedler_vector(g)
        q = laplacian_matrix(g).toarray()
        residual = q @ result.vector - result.eigenvalue * result.vector
        assert np.linalg.norm(residual) < 1e-6

    def test_backends_agree(self):
        g = connected_random_graph(6, num_vertices=40, extra_edges=30)
        scipy_result = fiedler_vector(g, backend="scipy")
        lanczos_result = fiedler_vector(g, backend="lanczos")
        assert scipy_result.eigenvalue == pytest.approx(
            lanczos_result.eigenvalue, abs=1e-6
        )
        # Vectors agree up to sign (canonicalised, so exactly).
        dot = abs(np.dot(scipy_result.vector, lanczos_result.vector))
        assert dot == pytest.approx(1.0, abs=1e-6)

    def test_deterministic(self):
        g = connected_random_graph(3, num_vertices=25)
        a = fiedler_vector(g, seed=5)
        b = fiedler_vector(g, seed=5)
        assert np.array_equal(a.vector, b.vector)

    def test_complete_graph_eigenvalue(self):
        n = 7
        g = Graph(n)
        for i in range(n):
            for j in range(i + 1, n):
                g.add_edge(i, j)
        result = fiedler_vector(g)
        assert result.eigenvalue == pytest.approx(n, abs=1e-8)

    def test_ratio_cut_lower_bound_property(self):
        g = connected_random_graph(10, num_vertices=12)
        result = fiedler_vector(g)
        assert result.ratio_cut_lower_bound() == pytest.approx(
            result.eigenvalue / 12
        )


class TestFiedlerValidation:
    def test_too_small(self):
        with pytest.raises(SpectralError):
            fiedler_vector(Graph(1))

    def test_disconnected_rejected(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(SpectralError):
            fiedler_vector(g)

    def test_bad_backend(self):
        g = path_graph(4)
        with pytest.raises(SpectralError):
            fiedler_vector(g, backend="magic")


class TestComponentValues:
    def test_connected_graph_matches_ordering(self):
        g = path_graph(10)
        values = component_spectral_values(g)
        order = np.argsort(values)
        # A path's spectral order is the path order (or its reverse).
        assert list(order) in ([*range(10)], [*reversed(range(10))])

    def test_components_get_disjoint_ranges(self):
        g = Graph(8)
        for base in (0, 4):
            for i in range(3):
                g.add_edge(base + i, base + i + 1)
        values = component_spectral_values(g)
        first = values[:4]
        second = values[4:]
        assert max(first) < min(second) or max(second) < min(first)

    def test_singleton_components(self):
        g = Graph(3)
        g.add_edge(0, 1)
        values = component_spectral_values(g)
        assert len(set(values)) == 3

    def test_empty_graph(self):
        assert component_spectral_values(Graph(0)).size == 0

    def test_two_vertex_component(self):
        g = Graph(2)
        g.add_edge(0, 1)
        values = component_spectral_values(g)
        assert values[0] != values[1]
