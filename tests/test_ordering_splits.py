"""Tests for spectral orderings and the module split sweep."""

import pytest

from repro.errors import PartitionError, SpectralError
from repro.graph import Graph
from repro.hypergraph import Hypergraph
from repro.netmodels import get_model
from repro.partitioning.metrics import net_cut_count
from repro.spectral import (
    ordering_from_values,
    spectral_ordering,
    sweep_module_splits,
)


class TestOrderingFromValues:
    def test_sorted_ascending(self):
        assert ordering_from_values([3.0, 1.0, 2.0]) == [1, 2, 0]

    def test_ties_broken_by_index(self):
        assert ordering_from_values([1.0, 0.0, 0.0]) == [1, 2, 0]

    def test_rejects_matrix(self):
        import numpy as np

        with pytest.raises(SpectralError):
            ordering_from_values(np.zeros((2, 2)))


class TestSpectralOrdering:
    def test_is_permutation(self, small_circuit):
        g = get_model("clique").to_graph(small_circuit)
        order = spectral_ordering(g)
        assert sorted(order) == list(range(g.num_vertices))

    def test_two_clusters_separate(self, two_cluster_hypergraph):
        g = get_model("clique").to_graph(two_cluster_hypergraph)
        order = spectral_ordering(g)
        first_half = set(order[:4])
        assert first_half in ({0, 1, 2, 3}, {4, 5, 6, 7})

    def test_tiny_graphs(self):
        assert spectral_ordering(Graph(0)) == []
        assert spectral_ordering(Graph(1)) == [0]
        assert spectral_ordering(Graph(2)) == [0, 1]

    def test_disconnected_handled(self):
        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        g.add_edge(4, 5)
        order = spectral_ordering(g)
        assert sorted(order) == list(range(6))
        # components stay contiguous
        positions = {v: i for i, v in enumerate(order)}
        first = sorted(positions[v] for v in (0, 1, 2))
        assert first in ([0, 1, 2], [3, 4, 5])

    def test_deterministic(self, small_circuit):
        g = get_model("clique").to_graph(small_circuit)
        assert spectral_ordering(g, seed=3) == spectral_ordering(g, seed=3)


class TestSweep:
    def test_cut_counts_match_direct_evaluation(self, tiny_hypergraph):
        order = [0, 1, 2, 3]
        sweep = sweep_module_splits(tiny_hypergraph, order)
        for point in sweep.points:
            sides = [
                0 if order.index(v) < point.rank else 1
                for v in range(4)
            ]
            assert point.nets_cut == net_cut_count(tiny_hypergraph, sides)

    def test_ratio_denominator(self, tiny_hypergraph):
        sweep = sweep_module_splits(tiny_hypergraph, [0, 1, 2, 3])
        p = sweep.points[0]
        assert p.ratio_cut == pytest.approx(p.nets_cut / (1 * 3))

    def test_number_of_points(self, small_circuit):
        order = list(range(small_circuit.num_modules))
        sweep = sweep_module_splits(small_circuit, order)
        assert len(sweep.points) == small_circuit.num_modules - 1

    def test_best_split_two_clusters(self, two_cluster_hypergraph):
        # Ordering that lists cluster A then cluster B: best split is 4.
        sweep = sweep_module_splits(
            two_cluster_hypergraph, [0, 1, 2, 3, 4, 5, 6, 7]
        )
        assert sweep.best.rank == 4
        assert sweep.best.nets_cut == 1
        u, w = sweep.best_sides()
        assert u == [0, 1, 2, 3]

    def test_non_permutation_rejected(self, tiny_hypergraph):
        with pytest.raises(PartitionError):
            sweep_module_splits(tiny_hypergraph, [0, 1, 2, 2])

    def test_single_module_rejected(self):
        with pytest.raises(PartitionError):
            sweep_module_splits(Hypergraph([], num_modules=1), [0])

    def test_random_orders_consistent(self, small_circuit):
        import random

        rng = random.Random(0)
        order = list(range(small_circuit.num_modules))
        rng.shuffle(order)
        sweep = sweep_module_splits(small_circuit, order)
        # Spot-check three points against direct counting.
        for point in sweep.points[:: len(sweep.points) // 3]:
            in_u = set(order[: point.rank])
            sides = [
                0 if v in in_u else 1
                for v in range(small_circuit.num_modules)
            ]
            assert point.nets_cut == net_cut_count(small_circuit, sides)
