"""End-to-end serving telemetry: trace ids, access log, /metrics, /debug/slow.

The acceptance path: one HTTP request produces (a) an access-log line
carrying its trace id, (b) a Prometheus-parseable ``/metrics`` document
whose request histogram counts it in the correct latency bucket, and
(c) — with the slow threshold at zero — a ``/debug/slow`` exemplar for
that trace id whose span tree names the compute phases that served it.
"""

import io
import json
import math
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.hypergraph import to_json
from repro.service import (
    AccessLog,
    PartitionEngine,
    PartitionRequest,
    ResultCache,
    SlowLog,
    create_server,
)
from tests.conftest import random_hypergraph


@pytest.fixture
def log_stream():
    return io.StringIO()


@pytest.fixture
def engine(tmp_path):
    return PartitionEngine(
        cache=ResultCache(disk_dir=tmp_path / "cache"),
        slow_threshold_s=0.0,
    )


@pytest.fixture
def server(engine, log_stream):
    srv = create_server(
        engine=engine, access_log=AccessLog(stream=log_stream)
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(5)


@pytest.fixture
def h():
    return random_hypergraph(5, num_modules=14, num_nets=18)


def call(srv, path, body=None, method=None, headers=None):
    host, port = srv.server_address[:2]
    url = f"http://{host}:{port}{path}"
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    for key, value in (headers or {}).items():
        request.add_header(key, value)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (
                response.status,
                response.read(),
                dict(response.headers),
            )
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)


def log_entries(log_stream, expect=None, timeout=5.0):
    """Parsed log lines; with ``expect``, waits for that many.

    The handler writes its access entry *after* flushing the response
    bytes, so a client can observe the response a moment before the
    log line lands — the wait absorbs that scheduling gap.
    """
    deadline = time.monotonic() + timeout
    while True:
        entries = [
            json.loads(line)
            for line in log_stream.getvalue().splitlines()
            if line.strip()
        ]
        if expect is None or len(entries) >= expect:
            return entries
        if time.monotonic() > deadline:
            return entries
        time.sleep(0.01)


class TestTraceIngress:
    def test_inbound_header_honoured_everywhere(self, server, h):
        body = {"netlist": to_json(h), "algorithm": "eig1", "seed": 0}
        status, raw, headers = call(
            server, "/partition", body,
            headers={"X-Trace-Id": "cafe0123cafe0123"},
        )
        assert status == 200
        doc = json.loads(raw)
        assert doc["trace_id"] == "cafe0123cafe0123"
        assert headers["X-Trace-Id"] == "cafe0123cafe0123"

    def test_invalid_header_replaced_with_minted_id(self, server):
        status, raw, headers = call(
            server, "/healthz",
            headers={"X-Trace-Id": "not a valid id!!"},
        )
        assert status == 200
        assert headers["X-Trace-Id"] != "not a valid id!!"
        assert len(headers["X-Trace-Id"]) == 16

    def test_every_response_carries_a_trace_id(self, server):
        for path in ("/healthz", "/readyz", "/metrics", "/debug/slow"):
            _, _, headers = call(server, path)
            assert "X-Trace-Id" in headers, path


class TestAccessLog:
    def test_one_line_per_request_with_trace_id(
        self, server, log_stream, h
    ):
        body = {"netlist": to_json(h), "algorithm": "fm", "seed": 0}
        _, raw, _ = call(
            server, "/partition", body,
            headers={"X-Trace-Id": "beefbeefbeefbeef"},
        )
        call(server, "/healthz")
        entries = log_entries(log_stream, expect=2)
        assert len(entries) == 2
        first, second = entries
        assert first["type"] == "access"
        assert first["method"] == "POST"
        assert first["path"] == "/partition"
        assert first["status"] == 200
        assert first["trace_id"] == "beefbeefbeefbeef"
        assert first["bytes"] == len(raw)
        assert first["duration_s"] > 0
        assert second["path"] == "/healthz"

    def test_cache_provenance_in_entries(self, server, log_stream, h):
        body = {"netlist": to_json(h), "algorithm": "fm", "seed": 1}
        call(server, "/partition", body)
        call(server, "/partition", body)
        entries = log_entries(log_stream, expect=2)
        assert entries[0]["source"] == "computed"
        assert entries[0]["cached"] is False
        assert entries[1]["source"] == "memory"
        assert entries[1]["cached"] is True

    def test_handler_error_logged_and_500(self, server, log_stream):
        server.engine.metrics = lambda: 1 / 0  # simulate a crash
        status, raw, _ = call(server, "/metrics")
        assert status == 500
        doc = json.loads(raw)
        assert "ZeroDivisionError" in doc["error"]
        errors = [
            e
            for e in log_entries(log_stream, expect=2)
            if e["type"] == "error"
        ]
        assert len(errors) == 1
        assert "ZeroDivisionError" in errors[0]["error"]
        assert errors[0]["trace_id"]

    def test_quiet_suppresses_access_but_never_errors(self):
        stream = io.StringIO()
        log = AccessLog(stream=stream, quiet=True)
        log.access(path="/healthz", status=200)
        log.error(error="broken")
        entries = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert [e["type"] for e in entries] == ["error"]


class TestMetricsExposition:
    def test_json_by_default(self, server):
        status, raw, headers = call(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        doc = json.loads(raw)
        assert "histograms" in doc and "slow" in doc

    def test_prometheus_via_query_param(self, server, h):
        body = {"netlist": to_json(h), "algorithm": "fm", "seed": 2}
        call(server, "/partition", body)
        status, raw, headers = call(server, "/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        samples = obs.parse_prometheus_text(raw.decode("utf-8"))
        assert samples["repro_service_requests_total"] == [({}, 1.0)]

    def test_prometheus_via_accept_header(self, server):
        status, raw, headers = call(
            server, "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        obs.parse_prometheus_text(raw.decode("utf-8"))

    def test_format_param_overrides_accept(self, server):
        _, raw, headers = call(
            server, "/metrics?format=json",
            headers={"Accept": "text/plain"},
        )
        assert headers["Content-Type"].startswith("application/json")
        json.loads(raw)

    def test_request_counted_in_correct_latency_bucket(self, server, h):
        body = {"netlist": to_json(h), "algorithm": "eig1", "seed": 3}
        _, raw, _ = call(server, "/partition", body)
        duration = json.loads(raw)["duration_s"]
        _, prom_raw, _ = call(server, "/metrics?format=prometheus")
        samples = obs.parse_prometheus_text(prom_raw.decode("utf-8"))
        buckets = [
            (labels, value)
            for labels, value in samples[
                "repro_service_request_duration_seconds_bucket"
            ]
            if labels.get("algorithm") == "eig1"
        ]
        assert buckets
        for labels, value in buckets:
            le = (
                math.inf
                if labels["le"] == "+Inf"
                else float(labels["le"])
            )
            expected = 1.0 if le >= duration else 0.0
            assert value == expected, (labels, duration)

    def test_http_histogram_routes_normalised(self, server, h):
        call(server, "/healthz")
        call(server, "/jobs/nonexistent")
        call(server, "/nope")
        _, raw, _ = call(server, "/metrics?format=prometheus")
        samples = obs.parse_prometheus_text(raw.decode("utf-8"))
        routes = {
            labels["route"]
            for labels, _ in samples[
                "repro_http_request_duration_seconds_count"
            ]
        }
        assert "/healthz" in routes
        assert "/jobs/{id}" in routes
        assert "other" in routes
        assert "/nope" not in routes


class TestSlowLog:
    def test_exemplar_names_compute_phases(self, server, h):
        body = {"netlist": to_json(h), "algorithm": "eig1", "seed": 4}
        _, raw, _ = call(
            server, "/partition", body,
            headers={"X-Trace-Id": "aaaabbbbccccdddd"},
        )
        assert json.loads(raw)["trace_id"] == "aaaabbbbccccdddd"
        status, slow_raw, _ = call(server, "/debug/slow")
        assert status == 200
        slow = json.loads(slow_raw)
        assert slow["threshold_s"] == 0.0
        entry = next(
            e
            for e in slow["entries"]
            if e["trace_id"] == "aaaabbbbccccdddd"
        )
        assert entry["algorithm"] == "eig1"
        assert entry["source"] == "computed"

        def names(nodes):
            for node in nodes:
                yield node["name"]
                yield from names(node["children"])

        span_names = set(names(entry["spans"]))
        assert "service.request" in span_names
        assert any(
            name.startswith(("spectral.", "splits.", "igmatch."))
            for name in span_names
        ), span_names

    def test_html_rendering(self, server, h):
        body = {"netlist": to_json(h), "algorithm": "fm", "seed": 5}
        call(server, "/partition", body)
        status, raw, headers = call(server, "/debug/slow?format=html")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert "service.request" in raw.decode("utf-8")

    def test_ring_buffer_evicts_oldest(self):
        slow = SlowLog(threshold_s=0.0, capacity=2)
        for i in range(4):
            slow.record({"trace_id": f"t{i}"})
        entries = slow.entries()
        assert len(entries) == 2
        assert [e["trace_id"] for e in entries] == ["t3", "t2"]
        snap = slow.snapshot()
        assert snap["held"] == 2
        assert snap["recorded"] == 4

    def test_fast_requests_not_recorded(self, tmp_path, h):
        engine = PartitionEngine(
            cache=ResultCache(use_disk=False), slow_threshold_s=60.0
        )
        engine.partition(h, PartitionRequest("fm", seed=0))
        assert len(engine.slow) == 0

    def test_failed_request_leaves_error_exemplar(self, h):
        engine = PartitionEngine(
            cache=ResultCache(use_disk=False), slow_threshold_s=0.0
        )

        def boom(*args, **kwargs):
            raise RuntimeError("compute exploded")

        engine._compute = boom
        with pytest.raises(RuntimeError):
            engine.partition(h, PartitionRequest("fm", seed=0))
        entry = engine.slow.entries()[0]
        assert entry["source"] == "error"
        merged = engine.hists.merged("service.request.duration_seconds")
        assert merged.count == 1

    def test_exemplar_carries_memory_snapshot(self, h):
        engine = PartitionEngine(
            cache=ResultCache(use_disk=False), slow_threshold_s=0.0
        )
        engine.partition(h, PartitionRequest("fm", seed=0))
        mem = engine.slow.entries()[0]["mem"]
        assert mem["rss_bytes"] > 0 and mem["max_rss_bytes"] > 0
        assert "traced_peak_bytes" not in mem  # engine not memory-profiled

    def test_memprof_engine_attributes_spans_and_peak(self, h):
        import tracemalloc

        engine = PartitionEngine(
            cache=ResultCache(use_disk=False),
            slow_threshold_s=0.0,
            memprof=True,
        )
        engine.partition(h, PartitionRequest("fm", seed=0))
        entry = engine.slow.entries()[0]
        # The exit-time snapshot ran while tracemalloc was still live.
        assert entry["mem"]["traced_peak_bytes"] > 0

        def walk(nodes):
            for node in nodes:
                yield node
                yield from walk(node["children"])

        assert all(
            "mem_alloc_bytes" in node["attrs"]
            for node in walk(entry["spans"])
        )
        # Tracemalloc tore down with the request's capture.
        assert not tracemalloc.is_tracing()


class TestReadyz:
    def test_ready_when_cache_writable_and_queue_short(self, server):
        status, raw, _ = call(server, "/readyz")
        assert status == 200
        doc = json.loads(raw)
        assert doc["status"] == "ready"
        assert doc["checks"]["cache"]["ok"] is True
        assert doc["checks"]["jobs"]["ok"] is True

    def test_unready_when_queue_over_bound(self, server):
        server.ready_queue_bound = -1
        status, raw, _ = call(server, "/readyz")
        assert status == 503
        doc = json.loads(raw)
        assert doc["status"] == "unready"
        assert doc["checks"]["jobs"]["ok"] is False

    def test_unready_when_cache_dir_unwritable(self, server, tmp_path):
        probe = tmp_path / "missing"
        server.engine.cache.check_disk_writable = lambda: (
            False,
            f"cache dir not writable: {probe}",
        )
        status, raw, _ = call(server, "/readyz")
        assert status == 503
        assert json.loads(raw)["checks"]["cache"]["ok"] is False


class TestAsyncJobTracing:
    def test_job_record_carries_trace_id(self, server, h):
        body = {
            "netlist": to_json(h),
            "algorithm": "fm",
            "seed": 6,
            "async": True,
        }
        status, raw, _ = call(
            server, "/partition", body,
            headers={"X-Trace-Id": "0123456789abcdef"},
        )
        assert status == 202
        doc = json.loads(raw)
        assert doc["trace_id"] == "0123456789abcdef"
        job = server.engine.scheduler.wait(doc["job"], timeout=30)
        assert job.status == "succeeded"
        assert job.trace_id == "0123456789abcdef"
        record = job.record()
        assert record["trace_id"] == "0123456789abcdef"
        # The worker served the request under the same trace id.
        assert job.result["trace_id"] == "0123456789abcdef"

    def test_queue_wait_histogram_recorded(self, server, h):
        body = {
            "netlist": to_json(h),
            "algorithm": "fm",
            "seed": 7,
            "async": True,
        }
        _, raw, _ = call(server, "/partition", body)
        job_id = json.loads(raw)["job"]
        server.engine.scheduler.wait(job_id, timeout=30)
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            merged = server.engine.hists.merged(
                "service.job.queue_wait_seconds"
            )
            if merged is not None and merged.count:
                break
            time.sleep(0.01)
        assert merged is not None and merged.count >= 1
