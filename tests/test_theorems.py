"""Property-based verification of the paper's theorems.

* Theorem 1 (Hagen–Kahng): lambda_2 / n lower-bounds the optimal graph
  ratio cut — verified against exhaustive enumeration on small graphs
  and random partitions on larger ones.
* Theorems 2–3 (König) are covered in tests/test_koenig.py.
* Theorem 4: IG-Match's losers form a vertex cover of the crossing
  bipartite graph.
* Theorem 5: the completed partition cuts at most |maximum matching|
  nets.
* Theorem 6's amortised complexity is exercised (not timed) by running
  full sweeps.
"""

import itertools

import pytest
from hypothesis import given, settings

from repro.graph import Graph, connected_components
from repro.matching import IncrementalMatching
from repro.matching.incremental import VertexClass
from repro.partitioning import IGMatchConfig, ig_match_sweep
from repro.partitioning.metrics import graph_edge_cut
from repro.spectral import fiedler_vector
from tests.conftest import (
    connected_random_graph,
    hypergraph_strategy,
    random_hypergraph,
)


class TestTheorem1:
    @pytest.mark.parametrize("seed", range(6))
    def test_bound_vs_exhaustive_optimum(self, seed):
        g = connected_random_graph(seed, num_vertices=8, extra_edges=5)
        bound = fiedler_vector(g).eigenvalue / g.num_vertices
        best = float("inf")
        for mask in range(1, 2**8 - 1):
            sides = [(mask >> v) & 1 for v in range(8)]
            u = sides.count(0)
            w = 8 - u
            cost = graph_edge_cut(g, sides) / (u * w)
            best = min(best, cost)
        assert best >= bound - 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_bound_vs_random_partitions(self, seed):
        import random

        g = connected_random_graph(seed + 30, num_vertices=25)
        bound = fiedler_vector(g).eigenvalue / 25
        rng = random.Random(seed)
        for _ in range(40):
            sides = [rng.randint(0, 1) for _ in range(25)]
            u = sides.count(0)
            if u in (0, 25):
                continue
            cost = graph_edge_cut(g, sides) / (u * (25 - u))
            assert cost >= bound - 1e-9

    def test_bound_tight_on_complete_graph(self):
        # K_n: lambda_2 = n; every partition has ratio cut exactly
        # u*w/(u*w) = 1 = lambda_2/n.
        n = 6
        g = Graph(n)
        for i, j in itertools.combinations(range(n), 2):
            g.add_edge(i, j)
        bound = fiedler_vector(g).eigenvalue / n
        sides = [0, 0, 0, 1, 1, 1]
        cost = graph_edge_cut(g, sides) / 9
        assert cost == pytest.approx(bound, abs=1e-8)


class TestTheorems4And5:
    @settings(max_examples=40, deadline=None)
    @given(hypergraph_strategy(min_modules=4, max_modules=10,
                               min_nets=3, max_nets=10))
    def test_loser_bound_all_splits(self, h):
        # check_invariants raises on any Theorem 5 violation.
        evaluations, _ = ig_match_sweep(
            h, IGMatchConfig(check_invariants=True)
        )
        for e in evaluations:
            assert e.nets_cut <= e.matching_size

    @pytest.mark.parametrize("seed", range(6))
    def test_losers_form_vertex_cover(self, seed):
        """Theorem 4, checked directly on the crossing graph."""
        from repro.intersection import intersection_graph
        from repro.spectral import spectral_ordering

        h = random_hypergraph(seed, num_modules=12, num_nets=14)
        graph = intersection_graph(h, "paper")
        order = spectral_ordering(graph, seed=0)
        matcher = IncrementalMatching(graph)
        for net in order[:-1]:
            matcher.move_to_right(net)
            codes = matcher.classify()
            # Phase II makes either core_L or core_R losers; check both.
            for core_loser in (VertexClass.CORE_L, VertexClass.CORE_R):
                losers = {
                    v
                    for v, c in enumerate(codes)
                    if c in (VertexClass.ODD_L, VertexClass.ODD_R,
                             core_loser)
                }
                for u, v, _ in graph.edges():
                    if matcher.side_of(u) != matcher.side_of(v):
                        assert u in losers or v in losers


class TestDeterminism:
    """Stability (Section 5): one deterministic execution, no restarts."""

    def test_igmatch_seed_independent_of_instance_order(self):
        h = random_hypergraph(3, num_modules=14, num_nets=16)
        runs = [
            ig_match_sweep(h, IGMatchConfig(seed=0))[1].sides
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]
