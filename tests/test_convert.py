"""Tests for graph conversions (scipy sparse, networkx)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import (
    Graph,
    adjacency_matrix,
    from_networkx,
    from_scipy_sparse,
    to_networkx,
)


class TestScipy:
    def test_roundtrip(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 0.5)
        back = from_scipy_sparse(adjacency_matrix(g))
        assert back.num_edges == 2
        assert back.weight(0, 1) == 2.0
        assert back.weight(1, 2) == 0.5

    def test_diagonal_ignored(self):
        m = sp.csr_matrix(np.array([[5.0, 1.0], [1.0, 5.0]]))
        g = from_scipy_sparse(m)
        assert g.num_edges == 1
        assert g.weight(0, 1) == 1.0

    def test_asymmetric_rejected(self):
        m = sp.csr_matrix(np.array([[0.0, 1.0], [2.0, 0.0]]))
        with pytest.raises(GraphError):
            from_scipy_sparse(m)

    def test_non_square_rejected(self):
        m = sp.csr_matrix(np.ones((2, 3)))
        with pytest.raises(GraphError):
            from_scipy_sparse(m)


class TestNetworkx:
    def test_roundtrip(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.5)
        g.add_edge(2, 3, 1.0)
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 4
        assert nxg[0][1]["weight"] == 1.5
        back = from_networkx(nxg)
        assert back.weight(0, 1) == 1.5
        assert back.weight(2, 3) == 1.0

    def test_missing_weight_defaults(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from([0, 1])
        nxg.add_edge(0, 1)
        assert from_networkx(nxg).weight(0, 1) == 1.0

    def test_bad_labels_rejected(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        with pytest.raises(GraphError):
            from_networkx(nxg)
