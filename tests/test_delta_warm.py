"""Warm-start differential contracts: warm must equal cold where it
overlaps, on both hypergraph cores.

* the patched intersection edge state is bitwise the cold rebuild;
* every warm sweep evaluation equals the cold sweep's at the same rank,
  and the warm partition equals cold's when the best rank stays inside
  the window;
* the patched FM engine state equals a cold rebuild on the same sides;
* ``warm_partition`` reproduces what the serving delta path returns;
* a served no-op delta is *byte-identical* (canonical result bytes) to
  the base serve.
"""

import json
import random

import numpy as np
import pytest

from repro.core import use_core
from repro.delta import (
    NetlistDelta,
    dumps_delta,
    random_delta,
    seed_artifacts,
    updated_edge_state,
    warm_partition,
)
from repro.intersection import intersection_edge_state
from repro.partitioning import FMEngine, IGMatchConfig, ig_match_sweep
from repro.partitioning.igmatch import SweepWarmStart
from repro.service import (
    PartitionEngine,
    PartitionRequest,
    canonical_result_bytes,
    run_partitioner,
)
from repro.service.engine import result_to_payload
from tests.conftest import random_hypergraph

CORES = ("dict", "csr")


def _base(seed=5):
    return random_hypergraph(seed, num_modules=40, num_nets=60)


def _request(algorithm):
    return PartitionRequest(algorithm=algorithm, seed=0)


def _direct_artifacts(h, request):
    """Seed artifacts exactly as a cold engine serve would."""
    capture = {}
    result = run_partitioner(h, request, capture=capture)
    return result, seed_artifacts(
        h, result_to_payload(result), request.algorithm, capture
    )


class TestEdgeStatePatch:
    @pytest.mark.parametrize("core", CORES)
    def test_patched_state_bitwise_equals_cold(self, core):
        h = _base()
        rng = random.Random(11)
        with use_core(core):
            state = intersection_edge_state(h)
            for _ in range(5):
                delta = random_delta(h, rng)
                application = delta.apply_detailed(h)
                h2 = application.hypergraph
                patched = updated_edge_state(h, state, application)
                cold = intersection_edge_state(h2)
                np.testing.assert_array_equal(
                    patched.edge_a, cold.edge_a
                )
                np.testing.assert_array_equal(
                    patched.edge_b, cold.edge_b
                )
                np.testing.assert_array_equal(
                    patched.weights, cold.weights
                )
                np.testing.assert_array_equal(
                    patched.first_mod, cold.first_mod
                )
                h, state = h2, patched


class TestWarmSweep:
    @pytest.mark.parametrize("core", CORES)
    def test_warm_evaluations_equal_cold_at_same_ranks(self, core):
        h = _base(seed=9)
        config = IGMatchConfig(seed=0)
        with use_core(core):
            cold_capture = {}
            cold_evals, cold_part = ig_match_sweep(
                h, config, capture=cold_capture
            )
            best_rank = cold_capture["best_rank"]
            lo = max(1, best_rank - 8)
            hi = min(h.num_nets - 1, best_rank + 8)
            warm = SweepWarmStart(
                lo=lo, hi=hi, matching_seed=cold_capture["matching"]
            )
            warm_evals, warm_part = ig_match_sweep(h, config, warm=warm)
        cold_by_rank = {e.rank: e for e in cold_evals}
        assert warm_evals, "warm sweep evaluated nothing"
        for evaluation in warm_evals:
            cold_eval = cold_by_rank[evaluation.rank]
            assert evaluation.ratio_cut == cold_eval.ratio_cut
            assert evaluation.matching_size == cold_eval.matching_size
            assert evaluation.nets_cut == cold_eval.nets_cut
            assert (
                evaluation.assign_core_to_l
                == cold_eval.assign_core_to_l
            )
        assert warm_part is not None and cold_part is not None
        assert warm_part.sides == cold_part.sides

    def test_warm_window_outside_valid_ranks_rejected(self):
        h = _base(seed=9)
        from repro.errors import PartitionError

        with pytest.raises(PartitionError, match="warm window"):
            ig_match_sweep(
                h,
                IGMatchConfig(seed=0),
                warm=SweepWarmStart(lo=0, hi=5),
            )

    def test_seedless_warm_start_equals_seeded(self):
        h = _base(seed=9)
        config = IGMatchConfig(seed=0)
        capture = {}
        ig_match_sweep(h, config, capture=capture)
        rank = capture["best_rank"]
        lo, hi = max(1, rank - 4), min(h.num_nets - 1, rank + 4)
        seeded, _ = ig_match_sweep(
            h,
            config,
            warm=SweepWarmStart(
                lo=lo, hi=hi, matching_seed=capture["matching"]
            ),
        )
        unseeded, _ = ig_match_sweep(
            h, config, warm=SweepWarmStart(lo=lo, hi=hi)
        )
        assert [
            (e.rank, e.ratio_cut, e.matching_size) for e in seeded
        ] == [
            (e.rank, e.ratio_cut, e.matching_size) for e in unseeded
        ]


class TestWarmFM:
    @pytest.mark.parametrize("core", CORES)
    def test_patched_engine_state_equals_cold_rebuild(self, core):
        h = _base(seed=3)
        request = _request("fm")
        rng = random.Random(21)
        with use_core(core):
            _result, artifacts = _direct_artifacts(h, request)
            for _ in range(3):
                delta = random_delta(h, rng)
                application = delta.apply_detailed(h)
                result, fresh, warm = warm_partition(
                    h, artifacts, application, request
                )
                assert warm
                h2 = application.hypergraph
                cold_engine = FMEngine(h2, result.partition.sides)
                assert fresh.fm_pin_count == cold_engine.pin_count
                assert fresh.fm_cut == cold_engine.cut
                assert fresh.fm_gains == cold_engine.gains
                fresh.payload = result_to_payload(result)
                h, artifacts = h2, fresh


class TestWarmPartition:
    @pytest.mark.parametrize("core", CORES)
    @pytest.mark.parametrize("algorithm", ["ig-match", "fm"])
    def test_served_delta_equals_direct_warm_partition(
        self, core, algorithm
    ):
        h = _base(seed=7)
        request = _request(algorithm)
        delta = random_delta(h, random.Random(13))
        doc = json.loads(dumps_delta(delta))
        with use_core(core):
            engine = PartitionEngine()
            base_served = engine.partition(h, request)
            served = engine.partition_delta(
                base_served.fingerprint, doc, request
            )
            _result, artifacts = _direct_artifacts(h, request)
            application = NetlistDelta.from_doc(doc).apply_detailed(h)
            direct, _fresh, warm = warm_partition(
                h, artifacts, application, request
            )
        assert warm
        assert served.source == "delta-warm"
        assert canonical_result_bytes(
            served.result
        ) == canonical_result_bytes(direct)

    @pytest.mark.parametrize("core", CORES)
    @pytest.mark.parametrize("algorithm", ["ig-match", "fm"])
    def test_noop_delta_byte_identical_to_cold(self, core, algorithm):
        h = _base(seed=2)
        request = _request(algorithm)
        noop = json.loads(dumps_delta(NetlistDelta()))
        with use_core(core):
            engine = PartitionEngine()
            base_served = engine.partition(h, request)
            served = engine.partition_delta(
                base_served.fingerprint, noop, request
            )
        assert served.fingerprint == base_served.fingerprint
        assert served.source == "session"
        assert canonical_result_bytes(
            served.result
        ) == canonical_result_bytes(base_served.result)
        assert engine.stats["service.delta.noop"] == 1

    def test_non_warm_algorithm_falls_back_cold(self):
        h = _base(seed=4)
        request = _request("eig1")
        _result, artifacts = _direct_artifacts(h, request)
        delta = random_delta(h, random.Random(2))
        application = delta.apply_detailed(h)
        result, _fresh, warm = warm_partition(
            h, artifacts, application, request
        )
        assert not warm
        assert result.partition is not None

    @pytest.mark.parametrize("algorithm", ["ig-match", "fm"])
    def test_quality_no_worse_over_a_chain(self, algorithm):
        h = _base(seed=17)
        request = _request(algorithm)
        rng = random.Random(5)
        _result, artifacts = _direct_artifacts(h, request)
        for _ in range(4):
            delta = random_delta(h, rng, module_churn=False)
            application = delta.apply_detailed(h)
            result, fresh, warm = warm_partition(
                h, artifacts, application, request
            )
            assert warm
            cold = run_partitioner(application.hypergraph, request)
            assert result.ratio_cut <= cold.ratio_cut
            fresh.payload = result_to_payload(result)
            h, artifacts = application.hypergraph, fresh
