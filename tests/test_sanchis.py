"""Tests for Sanchis-style multiway FM refinement."""

import random

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partitioning import (
    KWayFMConfig,
    kway_fm_refine,
    net_gain_refine,
)
from repro.partitioning.sanchis import _KWayState, kway_fm_pass
from tests.conftest import random_hypergraph


def spanning_nets(h, block_of):
    return sum(
        1
        for _, pins in h.iter_nets()
        if len(pins) >= 2 and len({block_of[p] for p in pins}) > 1
    )


def three_cluster_circuit():
    nets = []
    for base in (0, 4, 8):
        for i in range(4):
            for j in range(i + 1, 4):
                nets.append([base + i, base + j])
    nets.append([3, 4])
    nets.append([7, 8])
    return Hypergraph(nets)


class TestState:
    def test_initial_spanning_count(self):
        h = three_cluster_circuit()
        natural = [0] * 4 + [1] * 4 + [2] * 4
        state = _KWayState(h, natural, 3)
        assert state.spanning == 2

    def test_gain_matches_direct_recount(self):
        for seed in range(6):
            h = random_hypergraph(seed, num_modules=14, num_nets=18)
            rng = random.Random(seed)
            labels = [rng.randrange(3) for _ in range(14)]
            state = _KWayState(h, labels, 3)
            for cell in range(14):
                for target in range(3):
                    if target == state.block_of[cell]:
                        continue
                    before = spanning_nets(h, state.block_of)
                    trial = list(state.block_of)
                    trial[cell] = target
                    after = spanning_nets(h, trial)
                    assert state.gain(cell, target) == before - after

    def test_move_bookkeeping(self):
        h = three_cluster_circuit()
        state = _KWayState(h, [0] * 4 + [1] * 4 + [2] * 4, 3)
        state.move(3, 1)
        assert state.block_of[3] == 1
        assert state.sizes == [3, 5, 4]
        assert state.spanning == spanning_nets(h, state.block_of)

    def test_neighbour_blocks(self):
        h = three_cluster_circuit()
        state = _KWayState(h, [0] * 4 + [1] * 4 + [2] * 4, 3)
        assert state.neighbour_blocks(3) == {1}  # via bridge net {3,4}
        assert state.neighbour_blocks(0) == set()


class TestRefine:
    def test_natural_partition_is_fixed_point(self):
        h = three_cluster_circuit()
        labels = [0] * 4 + [1] * 4 + [2] * 4
        moves = kway_fm_refine(h, labels, 3)
        assert moves == 0
        assert labels == [0] * 4 + [1] * 4 + [2] * 4

    def test_repairs_corrupted_partition(self):
        h = three_cluster_circuit()
        labels = [0] * 4 + [1] * 4 + [2] * 4
        # Corrupt: swap two modules across clusters.
        labels[0], labels[8] = labels[8], labels[0]
        before = spanning_nets(h, labels)
        kway_fm_refine(h, labels, 3)
        after = spanning_nets(h, labels)
        assert after < before
        assert after == 2  # back to the natural cut

    def test_never_worsens(self):
        for seed in range(6):
            h = random_hypergraph(seed + 5, num_modules=16, num_nets=20)
            rng = random.Random(seed)
            labels = [rng.randrange(4) for _ in range(16)]
            for b in range(4):
                labels[b] = b
            before = spanning_nets(h, labels)
            kway_fm_refine(h, labels, 4)
            assert spanning_nets(h, labels) <= before

    def test_respects_min_block(self):
        h = three_cluster_circuit()
        labels = [0] * 4 + [1] * 4 + [2] * 4
        labels[0], labels[8] = labels[8], labels[0]
        kway_fm_refine(h, labels, 3, KWayFMConfig(min_block=4))
        sizes = [labels.count(b) for b in range(3)]
        assert all(s >= 4 for s in sizes)

    def test_beats_or_matches_greedy_on_hard_instances(self):
        """FM with prefix revert escapes minima the greedy pass cannot."""
        wins = 0
        for seed in range(8):
            h = random_hypergraph(seed + 30, num_modules=18, num_nets=24)
            rng = random.Random(seed)
            start = [rng.randrange(3) for _ in range(18)]
            for b in range(3):
                start[b] = b
            greedy = list(start)
            net_gain_refine(h, greedy, 3, max_passes=8)
            fm = list(start)
            kway_fm_refine(h, fm, 3, KWayFMConfig(max_passes=8))
            g, f = spanning_nets(h, greedy), spanning_nets(h, fm)
            assert f <= g + 1  # never meaningfully worse
            if f < g:
                wins += 1
        assert wins >= 1  # strictly better somewhere

    def test_validation(self):
        h = three_cluster_circuit()
        with pytest.raises(PartitionError):
            kway_fm_refine(h, [0] * 5, 3)
        with pytest.raises(PartitionError):
            kway_fm_refine(h, [7] * 12, 3)

    def test_pass_returns_counts(self):
        h = three_cluster_circuit()
        labels = [0] * 4 + [1] * 4 + [2] * 4
        labels[0], labels[8] = labels[8], labels[0]
        state = _KWayState(h, labels, 3)
        kept, spanning = kway_fm_pass(state, min_block=1)
        assert kept >= 1
        assert spanning == spanning_nets(h, state.block_of)
