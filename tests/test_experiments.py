"""Tests for the experiment harness (run at tiny scale)."""

import pytest

from repro.experiments import (
    ExperimentResult,
    format_ratio,
    percent_improvement,
    render_table,
    run_all,
    run_completion_ablation,
    run_eig1_comparison,
    run_multilevel_ablation,
    run_multiway_comparison,
    run_netmodel_ablation,
    run_refinement_ablation,
    run_runtime,
    run_sparsity,
    run_stability,
    run_table1,
    run_table2,
    run_table3,
    run_threshold_ablation,
    run_tolerance_ablation,
    run_weighting_ablation,
)

SCALE = 0.08
NAMES = ("bm1", "Prim1")


class TestTableHelpers:
    def test_percent_improvement(self):
        assert percent_improvement(10.0, 5.0) == pytest.approx(50.0)
        assert percent_improvement(5.0, 10.0) == pytest.approx(-100.0)
        assert percent_improvement(0.0, 1.0) == 0.0

    def test_format_ratio(self):
        assert format_ratio(5.53e-5) == "5.53e-05"
        assert format_ratio(float("inf")) == "inf"

    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["abc", 12], ["de", 3456]]
        )
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_experiment_result_render_and_markdown(self):
        result = ExperimentResult(
            "T", "Title", ["a", "b"], [[1, 2]], notes=["note"]
        )
        assert "Title" in result.render()
        assert "note" in result.render()
        md = result.to_markdown()
        assert md.startswith("### T: Title")
        assert "| a | b |" in md


class TestPaperTables:
    def test_table1(self):
        result = run_table1(scale=SCALE)
        assert result.headers[0] == "Net Size"
        assert len(result.rows) >= 3
        total_nets = sum(row[1] for row in result.rows)
        assert total_nets > 0
        assert any("monotone" in note for note in result.notes)

    def test_table2(self):
        result = run_table2(names=NAMES, scale=SCALE, restarts=2)
        assert len(result.rows) == len(NAMES)
        assert "average improvement" in result.notes[0]
        for row in result.rows:
            assert row[0] in NAMES

    def test_table3(self):
        result = run_table3(names=NAMES, scale=SCALE)
        assert len(result.rows) == len(NAMES)
        assert any("never worse" in note for note in result.notes)

    def test_eig1(self):
        result = run_eig1_comparison(names=NAMES, scale=SCALE)
        assert len(result.rows) == len(NAMES)

    def test_sparsity(self):
        result = run_sparsity(names=NAMES, scale=SCALE)
        assert len(result.rows) == len(NAMES)
        for row in result.rows:
            assert row[3] > 0 and row[4] > 0

    def test_runtime(self):
        result = run_runtime(names=["bm1"], scale=SCALE, restarts=2)
        assert len(result.rows) == 1


class TestAblations:
    def test_weighting(self):
        result = run_weighting_ablation(names=("bm1",), scale=SCALE)
        weightings = {row[1] for row in result.rows}
        assert weightings >= {"paper", "unit", "overlap", "jaccard"}

    def test_completion(self):
        result = run_completion_ablation(names=("bm1",), scale=SCALE)
        strategies = [row[1] for row in result.rows]
        assert "IG-Match" in strategies
        assert "IG-Vote" in strategies
        assert "naive-majority" in strategies
        assert "IG-Match-recursive" in strategies

    def test_netmodels(self):
        result = run_netmodel_ablation(names=("bm1",), scale=SCALE)
        models = {row[1] for row in result.rows}
        assert "clique" in models and "star" in models

    def test_refinement(self):
        result = run_refinement_ablation(names=("bm1",), scale=SCALE)
        assert result.rows[0][3] in ("yes", "no")

    def test_multilevel(self):
        result = run_multilevel_ablation(names=("bm1",), scale=SCALE)
        assert len(result.rows) == 1

    def test_stability(self):
        result = run_stability(
            names=("bm1",), scale=SCALE, seeds=range(2)
        )
        # 3 algorithms per circuit.
        assert len(result.rows) == 3
        igm_row = next(r for r in result.rows if r[1] == "IG-Match")
        assert igm_row[5] == "0%"

    def test_threshold(self):
        result = run_threshold_ablation(
            names=("bm1",), thresholds=(None, 5), scale=SCALE
        )
        assert len(result.rows) == 2
        assert result.rows[0][1] == "none"
        # Thresholding shrinks the IG nonzero count.
        assert result.rows[1][2] <= result.rows[0][2]

    def test_tolerance(self):
        result = run_tolerance_ablation(
            names=("bm1",), tolerances=(1e-9, 1e-2), scale=SCALE
        )
        assert len(result.rows) == 2

    def test_multiway(self):
        result = run_multiway_comparison(
            names=("bm1",), num_blocks=3, scale=SCALE
        )
        strategies = {row[1] for row in result.rows}
        assert len(strategies) == 3

    def test_replication(self):
        from repro.experiments import run_replication_ablation

        result = run_replication_ablation(
            names=("bm1",), budgets=(0.0, 0.1), scale=SCALE
        )
        assert len(result.rows) == 2
        # Cut never increases with budget.
        assert int(result.rows[1][4]) <= int(result.rows[0][4])


class TestRunner:
    def test_run_all_subset(self):
        results = run_all(scale=SCALE, only=["sparsity"])
        assert len(results) == 1
        assert results[0].experiment_id.startswith("E5")

    def test_main_cli(self, capsys):
        from repro.experiments import main

        code = main(["--scale", str(SCALE), "--only", "sparsity"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sparsity" in out

    def test_main_markdown(self, capsys):
        from repro.experiments import main

        main(["--scale", str(SCALE), "--only", "sparsity", "--markdown"])
        out = capsys.readouterr().out
        assert out.startswith("###")
