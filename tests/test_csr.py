"""Unit tests for the flat CSR hypergraph core.

Covers the substrate itself — exact lossless ``Hypergraph`` ⇄
``CsrHypergraph`` round-trips over adversarial shapes, construction
validation (including the cross-direction incidence check with a
human-readable error), pickling behaviour of the lazy cache — plus the
building blocks the csr core's hot paths rest on: the Graph CSR
adjacency cache and the bulk-build entry point of the linked bucket
list.  The cross-representation *result* equivalence lives in
``tests/test_core_equivalence.py``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import HypergraphError, ReproError
from repro.core import (
    CORES,
    csr_active,
    get_core,
    resolve_core,
    set_core,
    use_core,
)
from repro.graph import Graph
from repro.hypergraph import (
    CsrHypergraph,
    Hypergraph,
    find_incidence_mismatch,
)
from repro.partitioning.bucket_list import LinkedGainBuckets
from tests.strategies import adversarial_csr_hypergraphs, hypergraphs


def small_h(**kwargs):
    return Hypergraph(
        [[0, 1, 2], [1, 3], [0, 3], [2]], num_modules=5, **kwargs
    )


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=150)
    @given(adversarial_csr_hypergraphs())
    def test_lossless_round_trip(self, h):
        c = CsrHypergraph.from_hypergraph(h)
        back = c.to_hypergraph()
        assert back == h
        assert back.name == h.name
        assert back.module_areas == h.module_areas
        assert back.has_net_weights == h.has_net_weights
        assert back.net_weights == h.net_weights
        assert back.has_module_names == h.has_module_names
        assert back.has_net_names == h.has_net_names
        if h.has_module_names:
            assert [back.module_name(v) for v in range(h.num_modules)] == [
                h.module_name(v) for v in range(h.num_modules)
            ]
        if h.has_net_names:
            assert [back.net_name(e) for e in range(h.num_nets)] == [
                h.net_name(e) for e in range(h.num_nets)
            ]

    @settings(max_examples=100)
    @given(adversarial_csr_hypergraphs())
    def test_csr_twin_matches_object_view(self, h):
        c = h.csr
        assert c.num_modules == h.num_modules
        assert c.num_nets == h.num_nets
        assert c.num_pins == h.num_pins
        assert c.net_sizes().tolist() == h.net_sizes()
        assert c.module_degrees().tolist() == h.module_degrees()
        for e in range(h.num_nets):
            row = c.net_indices[c.net_indptr[e]:c.net_indptr[e + 1]]
            assert tuple(row.tolist()) == h.pins(e)
        for v in range(h.num_modules):
            row = c.module_indices[
                c.module_indptr[v]:c.module_indptr[v + 1]
            ]
            assert tuple(row.tolist()) == h.nets_of(v)

    def test_arrays_are_frozen_and_cached(self):
        h = small_h()
        c = h.csr
        assert c is h.csr  # cached
        for arr in (
            c.net_indptr,
            c.net_indices,
            c.module_indptr,
            c.module_indices,
            c.module_areas,
        ):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_weightless_hypergraph_round_trips_weightless(self):
        h = small_h()
        c = h.csr
        assert c.net_weights is None
        assert not c.to_hypergraph().has_net_weights
        hw = small_h(net_weights=[1.0, 2.0, 0.5, 3.0])
        cw = hw.csr
        assert cw.net_weights is not None
        assert cw.to_hypergraph().net_weights == hw.net_weights
        assert cw.net_weights_or_unit().tolist() == list(hw.net_weights)
        assert c.net_weights_or_unit().tolist() == [1.0] * 4

    def test_pickle_drops_csr_cache(self):
        h = small_h(name="pickled")
        _ = h.csr
        clone = pickle.loads(pickle.dumps(h))
        assert clone == h
        assert clone.name == "pickled"
        assert clone._csr is None
        assert clone.csr == h.csr  # rebuilt on demand, equal content

    def test_equality_and_repr(self):
        a = small_h().csr
        b = CsrHypergraph.from_hypergraph(small_h())
        assert a == b
        assert a != CsrHypergraph.from_hypergraph(
            Hypergraph([[0, 1]], num_modules=2)
        )
        assert "modules=5" in repr(a)
        assert a.summary() == (5, 4, 8)


# ----------------------------------------------------------------------
# Construction validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_inconsistent_incidence_names_module_and_net(self):
        c = small_h().csr
        # Drop net 2 from module 0's transpose row: module 0 still
        # appears in net 2's pin list.
        rows = [
            c.module_indices[
                c.module_indptr[v]:c.module_indptr[v + 1]
            ].tolist()
            for v in range(c.num_modules)
        ]
        rows[0] = [0]
        indptr = np.cumsum([0] + [len(r) for r in rows])
        indices = np.asarray(
            [x for r in rows for x in r], dtype=np.int64
        )
        with pytest.raises(HypergraphError) as exc:
            CsrHypergraph(c.net_indptr, c.net_indices, indptr, indices)
        message = str(exc.value)
        assert "module 0" in message
        assert "net 2" in message
        assert "inconsistent incidence" in message

    def test_phantom_transpose_pin_rejected(self):
        # Pin present in module→nets only.
        with pytest.raises(HypergraphError) as exc:
            CsrHypergraph(
                net_indptr=[0, 1],
                net_indices=[0],
                module_indptr=[0, 1, 2],
                module_indices=[0, 0],
            )
        assert "module 1" in str(exc.value)
        assert "net 0" in str(exc.value)

    def test_out_of_range_and_unsorted_rejected(self):
        with pytest.raises(HypergraphError):
            CsrHypergraph([0, 1], [5], [0, 0], [])  # module 5 of 1
        with pytest.raises(HypergraphError):
            CsrHypergraph([0, 2], [1, 0], [0, 1, 1], [0])  # unsorted
        with pytest.raises(HypergraphError):
            CsrHypergraph([0, 2], [0, 0], [0, 2], [0, 0])  # duplicate
        with pytest.raises(HypergraphError):
            CsrHypergraph([0, 3], [0, 1], [0, 1, 1], [0])  # indptr/pins

    def test_metadata_length_validation(self):
        c = small_h().csr
        with pytest.raises(HypergraphError):
            CsrHypergraph(
                c.net_indptr,
                c.net_indices,
                c.module_indptr,
                c.module_indices,
                module_areas=[1.0],
            )
        with pytest.raises(HypergraphError):
            CsrHypergraph(
                c.net_indptr,
                c.net_indices,
                c.module_indptr,
                c.module_indices,
                net_weights=[1.0],
            )

    @settings(max_examples=60)
    @given(adversarial_csr_hypergraphs())
    def test_consistent_arrays_have_no_mismatch(self, h):
        c = h.csr
        assert (
            find_incidence_mismatch(
                c.net_indptr,
                c.net_indices,
                c.module_indptr,
                c.module_indices,
            )
            is None
        )
        # Re-validating a trusted conversion succeeds.
        CsrHypergraph(
            c.net_indptr,
            c.net_indices,
            c.module_indptr,
            c.module_indices,
            module_areas=c.module_areas,
            net_weights=c.net_weights,
        )

    def test_find_incidence_mismatch_reports_direction(self):
        # (module 0, net 0) known only to the net→modules direction.
        assert find_incidence_mismatch([0, 1], [0], [0, 0], []) == (
            0,
            0,
            "module→nets",
        )
        assert find_incidence_mismatch([0, 0], [], [0, 1], [0]) == (
            0,
            0,
            "net→modules",
        )


# ----------------------------------------------------------------------
# The core switch
# ----------------------------------------------------------------------
class TestCoreSwitch:
    def test_default_is_dict(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORE", raising=False)
        set_core(None)
        assert get_core() == "dict"
        assert not csr_active()

    def test_env_and_override_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORE", "csr")
        set_core(None)
        try:
            assert get_core() == "csr"
            with use_core("dict"):
                assert get_core() == "dict"
            assert get_core() == "csr"
            assert resolve_core("dict") == "dict"
        finally:
            set_core(None)

    def test_unknown_core_rejected(self, monkeypatch):
        with pytest.raises(ReproError):
            resolve_core("sparse")
        with pytest.raises(ReproError):
            set_core("bogus")
        monkeypatch.setenv("REPRO_CORE", "nonsense")
        set_core(None)
        with pytest.raises(ReproError):
            get_core()

    def test_use_core_restores_on_exception(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORE", raising=False)
        set_core(None)
        with pytest.raises(RuntimeError):
            with use_core("csr"):
                assert csr_active()
                raise RuntimeError("boom")
        assert get_core() == "dict"
        assert not csr_active()


# ----------------------------------------------------------------------
# Graph CSR adjacency cache
# ----------------------------------------------------------------------
class TestGraphCsrCache:
    def test_lazy_build_matches_adjacency(self):
        g = Graph(4)
        g.add_edge(2, 0, 0.5)
        g.add_edge(0, 1, 1.25)
        g.add_edge(3, 1, 2.0)
        indptr, indices, data = g.csr_arrays()
        assert indptr.tolist() == [0, 2, 4, 5, 6]
        assert indices.tolist() == [1, 2, 0, 3, 0, 1]
        assert data.tolist() == [1.25, 0.5, 1.25, 2.0, 0.5, 2.0]

    def test_mutation_invalidates_cache(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        first = g.csr_arrays()
        g.add_edge(1, 2, 1.0)
        assert g._csr_cache is None
        indptr, indices, _ = g.csr_arrays()
        assert indices.size == 4
        assert first[1].size == 2  # old triple untouched

    def test_adjacency_matrix_identical_with_and_without_cache(self):
        from repro.graph.laplacian import adjacency_matrix

        g = Graph(5)
        g.add_edge(0, 3, 0.75)
        g.add_edge(3, 1, 1.5)
        g.add_edge(2, 4, 0.25)
        fresh = adjacency_matrix(g)
        with use_core("csr"):
            cached = adjacency_matrix(g)
        assert (fresh != cached).nnz == 0
        assert fresh.dtype == cached.dtype == np.float64
        assert cached.indptr.tolist() == fresh.indptr.tolist()
        assert cached.indices.tolist() == fresh.indices.tolist()
        assert cached.data.tolist() == fresh.data.tolist()


# ----------------------------------------------------------------------
# Bulk bucket build
# ----------------------------------------------------------------------
class TestBucketBulkBuild:
    def test_from_gains_equals_sequential_inserts(self):
        gains = [3, -2, 0, 3, 7, -7, 1, 0]
        sequential = LinkedGainBuckets(max_gain=7)
        for cell, gain in enumerate(gains):
            sequential.insert(cell, gain)
        bulk = LinkedGainBuckets.from_gains(gains)
        assert list(bulk.iter_best_first()) == list(
            sequential.iter_best_first()
        )
        assert len(bulk) == len(gains)

    def test_from_gains_presizes_no_grow(self):
        from repro import obs

        with obs.isolated() as state:
            obs.enable()
            LinkedGainBuckets.from_gains([64, -64, 0])
            obs.disable()
        assert "fm.bucket_grows" not in state.counters

    def test_from_gains_empty(self):
        assert list(LinkedGainBuckets.from_gains([]).iter_best_first()) \
            == []
