"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.hypergraph import load_net, save_net
from tests.conftest import random_hypergraph


@pytest.fixture
def netlist_file(tmp_path):
    h = random_hypergraph(1, num_modules=20, num_nets=24)
    path = tmp_path / "circuit.net"
    save_net(h, path)
    return path


class TestPartitioning:
    def test_default_algorithm(self, netlist_file, capsys):
        assert main([str(netlist_file)]) == 0
        out = capsys.readouterr().out
        assert "IG-Match" in out
        assert "ratio cut" in out

    @pytest.mark.parametrize(
        "algorithm",
        ["ig-vote", "eig1", "fm", "kl", "multilevel"],
    )
    def test_each_algorithm(self, netlist_file, capsys, algorithm):
        assert main([str(netlist_file), "-a", algorithm]) == 0
        assert capsys.readouterr().out.strip()

    def test_rcut_with_restarts(self, netlist_file, capsys):
        assert main(
            [str(netlist_file), "-a", "rcut", "--restarts", "2"]
        ) == 0

    def test_json_output(self, netlist_file, capsys):
        assert main([str(netlist_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "IG-Match"
        assert "ratio_cut" in payload

    def test_stats_flag(self, netlist_file, capsys):
        assert main([str(netlist_file), "--stats"]) == 0
        assert "modules" in capsys.readouterr().out

    def test_sides_out(self, netlist_file, tmp_path, capsys):
        sides = tmp_path / "sides.txt"
        assert main([str(netlist_file), "--sides-out", str(sides)]) == 0
        lines = sides.read_text().strip().splitlines()
        assert len(lines) == 20
        assert all(line.split()[1] in ("0", "1") for line in lines)


class TestGenerate:
    def test_generate_and_partition(self, capsys):
        assert main(
            ["--generate", "bm1", "--scale", "0.05", "-a", "ig-vote"]
        ) == 0

    def test_generate_save(self, tmp_path, capsys):
        out = tmp_path / "gen.net"
        assert main(
            ["--generate", "Prim1", "--scale", "0.05", "--save", str(out)]
        ) == 0
        h = load_net(out)
        assert h.num_modules > 0


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "repro-partition" in out
        # Some version number must be reported.
        assert any(ch.isdigit() for ch in out)


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["/no/such/file.net"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_suffix_is_rejected(self, tmp_path, capsys):
        bogus = tmp_path / "circuit.xyz"
        bogus.write_text("not a netlist\n")
        assert main([str(bogus)]) == 1
        err = capsys.readouterr().err
        assert "unsupported netlist extension" in err
        for ext in (".net", ".json", ".hgr", ".v"):
            assert ext in err

    def test_no_input(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_json_netlist_input(self, tmp_path, capsys):
        from repro.hypergraph import save_json

        h = random_hypergraph(2, num_modules=12, num_nets=14)
        path = tmp_path / "c.json"
        save_json(h, path)
        assert main([str(path)]) == 0
