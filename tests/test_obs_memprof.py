"""Tests for per-span memory attribution (:mod:`repro.obs.memprof`).

The contract under test: memory profiling is opt-in on top of the
observability layer, adds *nothing* when off (the no-op fast path of
``obs.span`` survives untouched, tracemalloc is never started), and
when on folds ``mem_alloc_bytes`` / ``mem_peak_bytes`` attributes into
the span tree — including spans captured in parallel workers and merged
back as fragments.
"""

import gc
import sys
import tracemalloc

import pytest

from repro import obs
from repro.cli import main
from repro.parallel import ParallelConfig, capture_fragment, pmap


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends fully off — including tracemalloc."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    assert not tracemalloc.is_tracing(), "test leaked tracemalloc tracing"


def _alloc_spans():
    """A two-level span tree where the inner span allocates ~1.6 MB."""
    with obs.span("outer"):
        with obs.span("inner"):
            block = list(range(200_000))
        del block


class TestNoopFastPath:
    def test_disabled_spans_allocate_nothing(self):
        """With obs off, a span round trip must not allocate: the
        shared ``_NullSpan`` is the entire code path."""
        sp = obs.span("warmup")  # materialise the shared null span
        with sp:
            pass
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(1000):
            with obs.span("hot"):
                pass
        gc.collect()
        after = sys.getallocatedblocks()
        # Zero in practice; tolerate a couple of interpreter-internal
        # blocks so the test is not flaky across CPython versions.
        assert after - before <= 2

    def test_disabled_records_no_spans_and_no_tracemalloc(self):
        assert not tracemalloc.is_tracing()
        _alloc_spans()
        assert obs.STATE.roots == []
        assert not tracemalloc.is_tracing()
        assert not obs.memprof_active()

    def test_enabled_without_memprof_adds_no_mem_attrs(self):
        """Plain profiling must not pay for (or record) memory
        attribution it never asked for."""
        obs.enable()
        _alloc_spans()
        assert not tracemalloc.is_tracing()
        root = obs.STATE.roots[0]
        assert "mem_alloc_bytes" not in root.attrs
        assert "mem_alloc_bytes" not in root.children[0].attrs


class TestLifecycle:
    def test_enable_starts_and_disable_stops_tracemalloc(self):
        obs.enable()
        obs.enable_memprof()
        assert tracemalloc.is_tracing()
        assert obs.memprof_active()
        obs.disable()  # tears memprof down with the obs session
        assert not tracemalloc.is_tracing()
        assert not obs.memprof_active()

    def test_does_not_stop_foreign_tracemalloc(self):
        """If something else (pytest -X tracemalloc, a debugger) is
        already tracing, memprof must leave it running on teardown."""
        tracemalloc.start()
        try:
            obs.enable()
            obs.enable_memprof()
            obs.disable()
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_enable_is_idempotent_per_state(self):
        obs.enable()
        obs.enable_memprof()
        obs.enable_memprof()
        obs.disable_memprof()
        assert not tracemalloc.is_tracing()
        obs.disable()

    def test_context_manager_is_exception_safe(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.memprof_enabled():
                assert tracemalloc.is_tracing()
                raise RuntimeError("boom")
        assert not tracemalloc.is_tracing()

    def test_span_opened_before_enable_closes_cleanly(self):
        """A span already open when memprof turns on has no start
        snapshot — it must close without memory attrs, and its
        children (opened after) must still get theirs."""
        obs.enable()
        with obs.span("early") :
            obs.enable_memprof()
            with obs.span("late"):
                pass
        root = obs.STATE.roots[0]
        assert "mem_alloc_bytes" not in root.attrs
        assert "mem_alloc_bytes" in root.children[0].attrs
        obs.disable()


class TestAttribution:
    def test_allocation_attributed_to_the_allocating_span(self):
        obs.enable()
        with obs.memprof_enabled():
            _alloc_spans()
        root = obs.STATE.roots[0]
        inner = root.children[0]
        # 200k pointers is ~1.6MB on 64-bit CPython.
        assert inner.attrs["mem_alloc_bytes"] > 1_000_000
        assert inner.attrs["mem_peak_bytes"] >= inner.attrs["mem_alloc_bytes"]
        # The list was deleted before `outer` closed: net outer alloc is
        # small, but the peak watermark propagated up.
        assert root.attrs["mem_alloc_bytes"] < 100_000
        assert root.attrs["mem_peak_bytes"] >= inner.attrs["mem_peak_bytes"]

    def test_peak_is_watermark_not_net(self):
        obs.enable()
        with obs.memprof_enabled():
            with obs.span("transient"):
                block = list(range(200_000))
                del block
        node = obs.STATE.roots[0]
        assert node.attrs["mem_peak_bytes"] > 1_000_000
        assert node.attrs["mem_alloc_bytes"] < node.attrs["mem_peak_bytes"]

    def test_trace_capture_inherits_enclosing_memprof(self):
        obs.enable()
        with obs.memprof_enabled():
            with obs.TraceCapture("t1") as cap:
                with obs.span("work"):
                    block = list(range(100_000))
                del block
        spans = [e for e in cap.events if e.get("type") == "span"]
        assert spans and spans[0]["mem_alloc_bytes"] > 0

    def test_trace_capture_memprof_false_forces_off(self):
        obs.enable()
        with obs.memprof_enabled():
            with obs.TraceCapture("t2", memprof=False) as cap:
                with obs.span("work"):
                    pass
        spans = [e for e in cap.events if e.get("type") == "span"]
        assert spans and "mem_alloc_bytes" not in spans[0]


def _worker(n):
    """Module-level (picklable) worker: allocates inside a span."""
    with obs.span("fanout"):
        block = list(range(n))
    return len(block)


class TestFragments:
    def test_capture_fragment_records_mem_attrs(self):
        _, fragment = capture_fragment(_worker, 100_000, memprof=True)
        span = fragment["spans"][0]
        assert span["attrs"]["mem_alloc_bytes"] > 0
        assert span["attrs"]["mem_peak_bytes"] > 0
        assert not tracemalloc.is_tracing()

    def test_capture_fragment_without_memprof_has_none(self):
        _, fragment = capture_fragment(_worker, 100_000)
        assert "mem_alloc_bytes" not in fragment["spans"][0]["attrs"]

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_mem_attrs_survive_every_backend(self, backend):
        """pmap under memprof: every backend's merged tree carries the
        worker-side memory attribution."""
        obs.enable()
        with obs.memprof_enabled():
            results = pmap(
                _worker,
                [50_000, 60_000],
                ParallelConfig(workers=2, backend=backend),
            )
        assert results == [50_000, 60_000]
        fanouts = [
            c for r in obs.STATE.roots for c in _iter_tree(r)
            if c.name == "fanout"
        ]
        assert len(fanouts) == 2
        for node in fanouts:
            assert node.attrs["mem_alloc_bytes"] > 0

    def test_merge_is_grouping_independent(self):
        """Folding fragments one-by-one or pre-merged must attribute
        the same memory: alloc sums, peak maxes (associativity of the
        sibling merge in reports)."""
        frags = [
            capture_fragment(_worker, n, memprof=True)[1]
            for n in (50_000, 80_000)
        ]

        def merged_memory(fragments):
            obs.reset()
            obs.enable()
            with obs.span("parent"):
                from repro.obs.trace import merge_into_current

                for f in fragments:
                    merge_into_current(f)
            totals = obs.flatten_memory()
            obs.disable()
            obs.reset()
            return totals["fanout"]

        one_by_one = merged_memory(frags)
        re_ordered = merged_memory(list(reversed(frags)))
        assert one_by_one == re_ordered
        alloc, peak = one_by_one
        expected_allocs = [f["spans"][0]["attrs"]["mem_alloc_bytes"] for f in frags]
        expected_peaks = [f["spans"][0]["attrs"]["mem_peak_bytes"] for f in frags]
        assert alloc == sum(expected_allocs)
        assert peak == max(expected_peaks)


def _iter_tree(node):
    yield node
    for child in node.children:
        yield from _iter_tree(child)


class TestReporting:
    def test_phase_report_shows_memory_columns(self):
        obs.enable()
        with obs.memprof_enabled():
            with obs.span("phase"):
                block = list(range(200_000))
            del block
        report = obs.phase_report()
        assert "Δ" in report and "^" in report
        assert "MiB" in report or "KiB" in report

    def test_human_bytes(self):
        assert obs.human_bytes(0) == "0B"
        assert obs.human_bytes(1536) == "1.5KiB"
        assert obs.human_bytes(-1536) == "-1.5KiB"
        assert obs.human_bytes(3 << 20) == "3.0MiB"

    def test_memory_snapshot_keys(self):
        snap = obs.memory_snapshot()
        assert snap["rss_bytes"] > 0
        assert snap["max_rss_bytes"] > 0
        assert "traced_bytes" not in snap  # not tracing
        tracemalloc.start()
        try:
            snap = obs.memory_snapshot()
            assert "traced_bytes" in snap and "traced_peak_bytes" in snap
        finally:
            tracemalloc.stop()

    def test_rss_sampler_high_water(self):
        with obs.rss_sampling(interval_s=0.01) as sampler:
            block = bytearray(4 << 20)
            sampler._sample_once()  # deterministic: no sleep-timing reliance
            del block
        assert sampler.high_water_bytes > 0
        assert sampler.samples >= 1


class TestCli:
    def test_profile_mem_prints_memory_columns(self, capsys):
        rc = main([
            "--generate", "Test02", "--scale", "0.1",
            "--seed", "1", "--profile-mem",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "Δ" in err
        assert "rss high water:" in err
        assert not tracemalloc.is_tracing()

    def test_profile_without_mem_has_no_memory_columns(self, capsys):
        rc = main([
            "--generate", "Test02", "--scale", "0.1",
            "--seed", "1", "--profile",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "rss high water:" not in err
        assert "Δ" not in err
