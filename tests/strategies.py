"""Shared hypothesis strategies for the test suite.

One home for every generator the property tests draw from, so each
suite fuzzes the same instance space:

- :func:`hypergraphs` — the workhorse: random hypergraphs with a
  controllable pin-size distribution and optional degenerate features
  (empty nets, isolated/singleton modules, duplicate pins).
- :func:`partitionable_hypergraphs` — hypergraphs every bipartitioner
  accepts (>= 4 modules, every net with >= 2 pins).
- :func:`bipartite_graphs` — ``(num_left, num_right, edges)`` triples
  for the matching tests.
- :func:`netlist_texts` — adversarial parser input skewed toward
  format-relevant tokens.

``hypergraph_strategy`` and ``bipartite_strategy`` are kept as aliases
for the historical names exported from ``tests.conftest``.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.hypergraph import Hypergraph

__all__ = [
    "adversarial_csr_hypergraphs",
    "bipartite_graphs",
    "bipartite_strategy",
    "hypergraph_strategy",
    "hypergraphs",
    "netlist_texts",
    "partitionable_hypergraphs",
    "pin_counts",
]


# ----------------------------------------------------------------------
# Hypergraphs
# ----------------------------------------------------------------------
def pin_counts(max_size: int, skew: str = "uniform"):
    """A strategy for one net's pin count in ``2 .. max_size``.

    ``skew`` shapes the distribution: ``"uniform"`` draws all sizes
    equally, ``"two-pin"`` mimics real netlists (mostly 2-pin nets with
    an occasional wide bus), ``"wide"`` favours the largest sizes.
    """
    if max_size <= 2 or skew == "uniform":
        return st.integers(2, max_size)
    if skew == "two-pin":
        return st.one_of(
            st.just(2),
            st.just(2),
            st.just(3),
            st.integers(2, max_size),
        )
    if skew == "wide":
        return st.integers(max(2, max_size - 2), max_size)
    raise ValueError(f"unknown pin skew {skew!r}")


@st.composite
def hypergraphs(
    draw,
    min_modules=3,
    max_modules=12,
    min_nets=2,
    max_nets=14,
    max_net_size=5,
    pin_skew="uniform",
    allow_empty_nets=False,
    allow_singleton_modules=False,
    allow_duplicate_pins=False,
):
    """Random small hypergraphs.

    By default every net has >= 2 distinct pins and every module index
    below the maximum drawn appears in some net — the shape all the
    algorithms accept.  The ``allow_*`` flags mix in the degenerate
    cases the data structures must tolerate:

    - ``allow_empty_nets``: some nets have no pins at all.
    - ``allow_singleton_modules``: ``num_modules`` may exceed the
      largest pin, leaving isolated modules connected to nothing.
    - ``allow_duplicate_pins``: raw pin lists may repeat a module
      (the constructor collapses duplicates).
    """
    n = draw(st.integers(min_modules, max_modules))
    m = draw(st.integers(min_nets, max_nets))
    size_strategy = pin_counts(min(max_net_size, n), skew=pin_skew)
    nets = []
    for _ in range(m):
        if allow_empty_nets and draw(st.booleans()):
            nets.append([])
            continue
        size = draw(size_strategy)
        pins = draw(
            st.lists(
                st.integers(0, n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        if allow_duplicate_pins and draw(st.booleans()):
            pins = pins + [pins[0]]
        nets.append(pins)
    num_modules = n
    if allow_singleton_modules:
        num_modules = n + draw(st.integers(0, 3))
    return Hypergraph(nets, num_modules=num_modules)


@st.composite
def adversarial_csr_hypergraphs(draw):
    """Hypergraphs shaped to stress flat CSR incidence round-trips.

    Every degenerate row shape the CSR conversion must preserve
    exactly, mixed freely: empty nets (zero-length rows), singleton
    modules (trailing empty transpose rows), duplicate raw pins
    (collapsed by the constructor before conversion), isolated modules
    mid-range, and optionally one hub module on *every* net (a dense
    transpose row, the worst case for per-degree batching).  Named,
    weighted, and area-carrying variants are mixed in so the metadata
    side of the round trip is exercised too.
    """
    h = draw(
        hypergraphs(
            min_modules=2,
            max_modules=10,
            min_nets=0,
            max_nets=12,
            allow_empty_nets=True,
            allow_singleton_modules=True,
            allow_duplicate_pins=True,
        )
    )
    nets = [list(h.pins(e)) for e in range(h.num_nets)]
    num_modules = h.num_modules
    if draw(st.booleans()):
        # One module on every net: the densest possible transpose row.
        hub = num_modules
        num_modules += 1
        nets = [pins + [hub] for pins in nets]
    module_areas = None
    if draw(st.booleans()):
        module_areas = [
            draw(st.floats(0.0, 8.0, allow_nan=False))
            for _ in range(num_modules)
        ]
    net_weights = None
    if draw(st.booleans()):
        net_weights = [
            draw(st.floats(0.0, 4.0, allow_nan=False))
            for _ in range(len(nets))
        ]
    module_names = None
    if draw(st.booleans()):
        module_names = [f"mod{i}" for i in range(num_modules)]
    net_names = None
    if draw(st.booleans()):
        net_names = [f"sig{i}" for i in range(len(nets))]
    return Hypergraph(
        nets,
        num_modules=num_modules,
        module_names=module_names,
        net_names=net_names,
        module_areas=module_areas,
        net_weights=net_weights,
        name=draw(st.sampled_from(["", "adv", "csr-case"])),
    )


def partitionable_hypergraphs(**kwargs):
    """Hypergraphs every bipartitioner accepts.

    At least 4 modules (so both sides of any balanced start are
    non-empty) and only well-formed nets.
    """
    kwargs.setdefault("min_modules", 4)
    kwargs.setdefault("min_nets", 3)
    return hypergraphs(**kwargs)


# ----------------------------------------------------------------------
# Bipartite graphs (for the matching tests)
# ----------------------------------------------------------------------
@st.composite
def bipartite_graphs(draw, max_side=7):
    """Random small bipartite graphs as (left, right, edges) triples."""
    nl = draw(st.integers(1, max_side))
    nr = draw(st.integers(1, max_side))
    possible = [(l, r) for l in range(nl) for r in range(nr)]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=len(possible), unique=True)
    )
    return nl, nr, edges


# ----------------------------------------------------------------------
# Netlist text (for the parser fuzz tests)
# ----------------------------------------------------------------------
#: Text skewed toward format-relevant tokens so the fuzzer reaches deep
#: parser states, plus raw unicode for the shallow ones.
_TOKENS = st.sampled_from(
    [
        "module", "endmodule", "input", "output", "wire", "net",
        "NumNets", "NumPins", "NetDegree", "UCLA", "nets", "nodes",
        "1.0", ":", ";", "(", ")", ",", "%", "#", "//", "0", "1",
        "7", "-3", "a", "b", "g1", "\n", " ", "terminal",
    ]
)
_STRUCTURED_TEXT = st.lists(_TOKENS, max_size=60).map(" ".join)
_RAW_TEXT = st.text(max_size=200)


def netlist_texts():
    """Adversarial parser input: token soup or raw unicode."""
    return st.one_of(_STRUCTURED_TEXT, _RAW_TEXT)


# Historical names (originally defined in tests/conftest.py).
hypergraph_strategy = hypergraphs
bipartite_strategy = bipartite_graphs
