"""Tests for the Graph substrate."""

import pytest

from repro.errors import GraphError
from repro.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_add_edge(self):
        g = Graph(3)
        g.add_edge(0, 2, 1.5)
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)
        assert g.weight(0, 2) == 1.5
        assert g.num_edges == 1
        assert g.num_nonzeros == 2

    def test_weight_accumulates(self):
        g = Graph(2)
        g.add_edge(0, 1, 0.5)
        g.add_edge(1, 0, 0.25)
        assert g.weight(0, 1) == 0.75
        assert g.num_edges == 1
        assert g.total_weight == 0.75

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_nonpositive_weight_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 0.0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -2.0)

    def test_out_of_range_vertex(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 5)


class TestAccessors:
    @pytest.fixture
    def triangle(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        g.add_edge(0, 2, 3.0)
        return g

    def test_degree(self, triangle):
        assert triangle.degree(0) == 4.0
        assert triangle.degree(1) == 3.0

    def test_degrees_list(self, triangle):
        assert triangle.degrees() == [4.0, 3.0, 5.0]

    def test_unweighted_degree(self, triangle):
        assert triangle.unweighted_degree(0) == 2

    def test_neighbors(self, triangle):
        assert sorted(triangle.neighbors(1)) == [0, 2]

    def test_neighbor_weights(self, triangle):
        assert dict(triangle.neighbor_weights(0)) == {1: 1.0, 2: 3.0}

    def test_edges_iteration(self, triangle):
        edges = sorted(triangle.edges())
        assert edges == [(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0)]

    def test_weight_absent_edge_is_zero(self):
        g = Graph(3)
        assert g.weight(0, 1) == 0.0


class TestSubgraph:
    def test_induced_subgraph(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        sub, vertex_map = g.induced_subgraph([1, 2, 3])
        assert vertex_map == [1, 2, 3]
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert sub.has_edge(0, 1)  # old (1,2)
        assert sub.has_edge(1, 2)  # old (2,3)

    def test_induced_subgraph_weights(self):
        g = Graph(3)
        g.add_edge(0, 2, 2.5)
        sub, _ = g.induced_subgraph([0, 2])
        assert sub.weight(0, 1) == 2.5

    def test_induced_subgraph_bad_vertex(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.induced_subgraph([0, 5])
