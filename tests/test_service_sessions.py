"""SessionStore semantics: LRU capacity, TTL expiry, memory accounting.

Every test injects a fake clock so expiry is deterministic.
"""

import pytest

from repro.delta import SessionArtifacts
from repro.hypergraph import Hypergraph
from repro.service.sessions import SessionMissError, SessionStore


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


def _h(tag=0):
    return Hypergraph(
        [[0, 1], [1, 2], [0, 2 + (tag % 1)]], num_modules=3
    )


def _art(payload=None):
    return SessionArtifacts(payload=payload or {"sides": [0, 1, 0]})


def _store(clock, capacity=3, ttl_s=100.0):
    return SessionStore(capacity=capacity, ttl_s=ttl_s, clock=clock)


class TestBasics:
    def test_put_get_round_trip(self, clock):
        store = _store(clock)
        store.put("fp1", _h(), "req", _art())
        entry = store.get("fp1")
        assert entry is not None
        assert entry.artifacts["req"].payload["sides"] == [0, 1, 0]

    def test_miss_returns_none(self, clock):
        assert _store(clock).get("ghost") is None

    def test_put_same_fingerprint_merges_request_artifacts(self, clock):
        store = _store(clock)
        store.put("fp1", _h(), "ig", _art())
        store.put("fp1", _h(), "fm", _art({"sides": [1, 0, 1]}))
        entry = store.get("fp1")
        assert set(entry.artifacts) == {"ig", "fm"}
        assert len(store) == 1

    def test_contains_has_no_stats_side_effects(self, clock):
        store = _store(clock)
        store.put("fp1", _h(), "req", _art())
        assert "fp1" in store
        assert "ghost" not in store
        stats = store.stats_dict()
        assert stats["service.session.hits"] == 0
        assert stats["service.session.misses"] == 0

    def test_bad_capacity_and_ttl_rejected(self, clock):
        with pytest.raises(ValueError):
            SessionStore(capacity=0, clock=clock)
        with pytest.raises(ValueError):
            SessionStore(ttl_s=0, clock=clock)


class TestLRU:
    def test_capacity_evicts_least_recently_used(self, clock):
        store = _store(clock, capacity=2)
        store.put("a", _h(), "r", _art())
        store.put("b", _h(), "r", _art())
        store.get("a")  # "b" is now the LRU entry
        store.put("c", _h(), "r", _art())
        assert "a" in store and "c" in store
        assert "b" not in store
        assert store.stats_dict()["service.session.evictions"] == 1

    def test_put_refresh_does_not_evict(self, clock):
        store = _store(clock, capacity=2)
        store.put("a", _h(), "r", _art())
        store.put("b", _h(), "r", _art())
        store.put("a", _h(), "r2", _art())
        assert len(store) == 2
        assert store.stats_dict()["service.session.evictions"] == 0


class TestTTL:
    def test_expiry_on_get(self, clock):
        store = _store(clock, ttl_s=10.0)
        store.put("a", _h(), "r", _art())
        clock.advance(10.1)
        assert store.get("a") is None
        stats = store.stats_dict()
        assert stats["service.session.entries"] == 0
        assert stats["service.session.evictions"] == 1

    def test_touch_extends_lifetime(self, clock):
        store = _store(clock, ttl_s=10.0)
        store.put("a", _h(), "r", _art())
        clock.advance(6.0)
        assert store.get("a") is not None
        clock.advance(6.0)  # 12s after put, 6s after touch
        assert store.get("a") is not None

    def test_sweep_expires_and_reports_live_count(self, clock):
        store = _store(clock, ttl_s=10.0)
        store.put("a", _h(), "r", _art())
        clock.advance(5.0)
        store.put("b", _h(), "r", _art())
        clock.advance(6.0)  # "a" is 11s old, "b" 6s
        assert store.sweep() == 1
        assert "b" in store and "a" not in store


class TestAccounting:
    def test_bytes_track_entries(self, clock):
        store = _store(clock)
        assert store.stats_dict()["service.session.bytes"] == 0
        store.put("a", _h(), "r", _art())
        grown = store.stats_dict()["service.session.bytes"]
        assert grown > 0
        store.put("b", _h(), "r", _art())
        assert store.stats_dict()["service.session.bytes"] > grown

    def test_bytes_return_after_eviction(self, clock):
        store = _store(clock, capacity=1)
        store.put("a", _h(), "r", _art())
        only_a = store.stats_dict()["service.session.bytes"]
        store.put("b", _h(), "r", _art())
        assert store.stats_dict()["service.session.bytes"] == only_a

    def test_hit_miss_counters(self, clock):
        store = _store(clock)
        store.put("a", _h(), "r", _art())
        store.get("a")
        store.get("a")
        store.get("ghost")
        stats = store.stats_dict()
        assert stats["service.session.hits"] == 2
        assert stats["service.session.misses"] == 1

    def test_stats_keys_are_metric_names(self, clock):
        assert set(_store(clock).stats_dict()) == {
            "service.session.entries",
            "service.session.bytes",
            "service.session.evictions",
            "service.session.hits",
            "service.session.misses",
        }


class TestMissError:
    def test_carries_fingerprint_and_reason(self):
        exc = SessionMissError("abc123", "no live session")
        assert exc.fingerprint == "abc123"
        assert exc.reason == "no live session"
        assert "no live session" in str(exc)
