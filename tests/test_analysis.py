"""Tests for the analysis utilities (cut stats, sparsity, stability,
bounds)."""

import pytest

from repro.analysis import (
    check_bound,
    compare_sparsity,
    cut_stats_by_size,
    is_cut_probability_monotone,
    random_cut_probability,
    ratio_cut_lower_bound,
    stability_analysis,
)
from repro.analysis.cutstats import CutStatsRow
from repro.hypergraph import Hypergraph
from repro.partitioning import Partition, fm_bipartition, FMConfig
from tests.conftest import connected_random_graph


class TestCutStats:
    def test_rows_sum_to_totals(self, small_circuit):
        from repro.partitioning import ig_match

        partition = ig_match(small_circuit).partition
        rows = cut_stats_by_size(partition)
        assert sum(r.num_nets for r in rows) == small_circuit.num_nets
        assert sum(r.num_cut for r in rows) == partition.num_nets_cut

    def test_hand_example(self, tiny_hypergraph):
        p = Partition(tiny_hypergraph, [0, 0, 1, 1])
        rows = cut_stats_by_size(p)
        assert rows == [
            CutStatsRow(net_size=2, num_nets=2, num_cut=1),
            CutStatsRow(net_size=3, num_nets=1, num_cut=1),
        ]

    def test_cut_fraction(self):
        row = CutStatsRow(net_size=2, num_nets=4, num_cut=1)
        assert row.cut_fraction == 0.25

    def test_monotonicity_check(self):
        monotone = [
            CutStatsRow(2, 10, 1),
            CutStatsRow(3, 10, 5),
            CutStatsRow(4, 10, 9),
        ]
        assert is_cut_probability_monotone(monotone)
        non_monotone = [
            CutStatsRow(2, 10, 5),
            CutStatsRow(3, 10, 1),
        ]
        assert not is_cut_probability_monotone(non_monotone)

    def test_random_cut_probability(self):
        # 2-pin net, fair partition: P(cut) = 1/2.
        assert random_cut_probability(2) == pytest.approx(0.5)
        # Grows toward 1 with net size (the paper's 1 - O(2^-k)).
        assert random_cut_probability(14) > 0.999
        assert random_cut_probability(1) == 0.0

    def test_random_cut_probability_biased(self):
        assert random_cut_probability(2, fraction=0.1) == pytest.approx(
            1 - 0.01 - 0.81
        )


class TestSparsity:
    def test_wide_net_circuit(self):
        h = Hypergraph([list(range(20)), [0, 1], [1, 2]], name="wide")
        cmp = compare_sparsity(h)
        assert cmp.clique_nonzeros > cmp.intersection_nonzeros
        assert cmp.sparsity_ratio > 10

    def test_counts_match_library(self, small_circuit):
        from repro.intersection import intersection_nonzeros
        from repro.netmodels import get_model

        cmp = compare_sparsity(small_circuit)
        assert cmp.intersection_nonzeros == intersection_nonzeros(
            small_circuit
        )
        assert cmp.clique_nonzeros == (
            get_model("clique").to_graph(small_circuit).num_nonzeros
        )

    def test_str(self, small_circuit):
        assert "sparser" in str(compare_sparsity(small_circuit))


class TestStability:
    def test_deterministic_algorithm_zero_spread(self, small_circuit):
        from repro.partitioning import IGMatchConfig, ig_match

        report = stability_analysis(
            small_circuit,
            lambda h, seed: ig_match(h, IGMatchConfig(seed=0)),
            "IG-Match(fixed)",
            seeds=range(3),
        )
        assert report.is_deterministic
        assert report.relative_spread == 0.0

    def test_randomised_algorithm_spread(self, small_circuit):
        report = stability_analysis(
            small_circuit,
            lambda h, seed: fm_bipartition(h, FMConfig(seed=seed)),
            "FM",
            seeds=range(5),
        )
        assert report.best <= report.mean <= report.worst
        assert report.stdev >= 0.0
        assert "FM" in str(report)


class TestBounds:
    def test_lower_bound_positive_for_connected(self):
        g = connected_random_graph(1, num_vertices=12)
        bound = ratio_cut_lower_bound(g)
        assert bound.bound > 0

    def test_check_bound_holds(self):
        import random

        g = connected_random_graph(2, num_vertices=12)
        rng = random.Random(0)
        for _ in range(10):
            sides = [rng.randint(0, 1) for _ in range(12)]
            if 0 < sum(sides) < 12:
                assert check_bound(g, sides)

    def test_check_bound_rejects_empty_side(self):
        from repro.errors import SpectralError

        g = connected_random_graph(3, num_vertices=6)
        with pytest.raises(SpectralError):
            check_bound(g, [0] * 6)
