"""HTTP API tests: a real server on an ephemeral port, stdlib client."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.hypergraph import to_json
from repro.service import (
    PartitionEngine,
    PartitionRequest,
    ResultCache,
    canonical_result_bytes,
    create_server,
    payload_to_result,
    run_partitioner,
)
from tests.conftest import random_hypergraph


@pytest.fixture
def server():
    srv = create_server(
        engine=PartitionEngine(cache=ResultCache(use_disk=False))
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(5)


def call(srv, path, body=None, method=None):
    """One HTTP exchange; returns (status, parsed JSON body)."""
    host, port = srv.server_address[:2]
    url = f"http://{host}:{port}{path}"
    data = (
        json.dumps(body).encode("utf-8") if body is not None else None
    )
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture
def h():
    return random_hypergraph(3, num_modules=12, num_nets=16)


class TestHealthAndMetrics:
    def test_healthz(self, server):
        status, doc = call(server, "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["cache"] is True
        assert doc["workers"] >= 1
        assert doc["uptime_s"] >= 0

    def test_metrics_one_miss_then_one_hit(self, server, h):
        body = {"netlist": to_json(h), "algorithm": "fm", "seed": 0}
        call(server, "/partition", body)
        call(server, "/partition", body)
        status, doc = call(server, "/metrics")
        assert status == 200
        assert doc["service"]["service.cache.miss"] == 1
        assert doc["service"]["service.cache.hit"] == 1
        assert doc["service"]["service.computed"] == 1
        assert doc["cache"]["stores"] == 1

    def test_unknown_path_404(self, server):
        status, doc = call(server, "/nope")
        assert status == 404
        assert "unknown path" in doc["error"]

    def test_post_to_unknown_path_404(self, server):
        status, doc = call(server, "/healthz", {"x": 1})
        assert status == 404

    def test_readyz_ready(self, server):
        status, doc = call(server, "/readyz")
        assert status == 200
        assert doc["status"] == "ready"
        assert set(doc["checks"]) == {"cache", "jobs"}
        assert all(check["ok"] for check in doc["checks"].values())

    def test_readyz_unready_is_503(self, server):
        server.ready_queue_bound = -1  # any queued work exceeds it
        status, doc = call(server, "/readyz")
        assert status == 503
        assert doc["status"] == "unready"


class TestPartitionEndpoint:
    def test_served_matches_direct_run(self, server, h):
        request = PartitionRequest("ig-match", seed=7)
        direct = canonical_result_bytes(run_partitioner(h, request))
        body = {"netlist": to_json(h), "algorithm": "ig-match", "seed": 7}
        status, cold = call(server, "/partition", body)
        assert status == 200
        assert cold["cached"] is False and cold["source"] == "computed"
        status, warm = call(server, "/partition", body)
        assert status == 200
        assert warm["cached"] is True and warm["source"] == "memory"
        for doc in (cold, warm):
            result = payload_to_result(h, doc["result"])
            assert canonical_result_bytes(result) == direct
        assert cold["fingerprint"] == warm["fingerprint"]

    def test_net_text_body(self, server):
        net = "NET n1 a b\nNET n2 b c\nNET n3 c d\nNET n4 d a\n"
        status, doc = call(
            server, "/partition", {"net": net, "algorithm": "fm"}
        )
        assert status == 200
        assert len(doc["result"]["sides"]) == 4

    def test_cache_false_forces_compute(self, server, h):
        body = {"netlist": to_json(h), "algorithm": "fm", "cache": False}
        _, first = call(server, "/partition", body)
        _, second = call(server, "/partition", body)
        assert first["cached"] is False
        assert second["cached"] is False

    def test_both_body_forms_rejected(self, server, h):
        status, doc = call(
            server, "/partition", {"netlist": to_json(h), "net": "NET a b"}
        )
        assert status == 400
        assert "exactly one" in doc["error"]

    def test_neither_body_form_rejected(self, server):
        status, doc = call(server, "/partition", {"algorithm": "fm"})
        assert status == 400
        assert "exactly one" in doc["error"]

    def test_invalid_json_rejected(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/partition", data=b"{not json"
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                status = response.status
                doc = json.loads(response.read())
        except urllib.error.HTTPError as exc:
            status, doc = exc.code, json.loads(exc.read())
        assert status == 400
        assert "invalid JSON" in doc["error"]

    def test_empty_body_rejected(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/partition", data=b"", method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                status = response.status
                doc = json.loads(response.read())
        except urllib.error.HTTPError as exc:
            status, doc = exc.code, json.loads(exc.read())
        assert status == 400
        assert "empty" in doc["error"]

    def test_unknown_algorithm_rejected(self, server, h):
        status, doc = call(
            server,
            "/partition",
            {"netlist": to_json(h), "algorithm": "quantum"},
        )
        assert status == 400
        assert "unknown algorithm" in doc["error"]

    def test_unknown_request_field_rejected(self, server, h):
        status, doc = call(
            server,
            "/partition",
            {"netlist": to_json(h), "algorithm": "fm", "retries": 3},
        )
        # "retries" is not a request field (it's an async-job knob
        # spelled "max_retries") — must be called out, not ignored.
        assert status == 400
        assert "retries" in doc["error"]

    def test_degenerate_netlist_is_400_not_500(self, server):
        status, doc = call(
            server,
            "/partition",
            {"net": "NET only a b c\n", "algorithm": "ig-match"},
        )
        assert status == 400
        assert "error" in doc


class TestAsyncJobs:
    def test_async_job_lifecycle(self, server, h):
        body = {
            "netlist": to_json(h),
            "algorithm": "fm",
            "async": True,
        }
        status, doc = call(server, "/partition", body)
        assert status == 202
        job_id = doc["job"]
        engine = server.engine
        engine.scheduler.wait(job_id, timeout=30)
        status, record = call(server, f"/jobs/{job_id}")
        assert status == 200
        assert record["status"] == "succeeded"
        assert record["result"]["result"]["nets_cut"] >= 0

    def test_unknown_job_404(self, server):
        status, doc = call(server, "/jobs/ghost")
        assert status == 404
        assert "unknown job" in doc["error"]

    def test_delete_unknown_job_404(self, server):
        status, doc = call(server, "/jobs/ghost", method="DELETE")
        assert status == 404

    def test_delete_finished_job_reports_not_cancelled(self, server, h):
        _, doc = call(
            server,
            "/partition",
            {"netlist": to_json(h), "algorithm": "fm", "async": True},
        )
        job_id = doc["job"]
        server.engine.scheduler.wait(job_id, timeout=30)
        status, outcome = call(server, f"/jobs/{job_id}", method="DELETE")
        assert status == 200
        assert outcome["cancelled"] is False
        assert outcome["status"] == "succeeded"

    def test_delete_running_job_reports_cancelling(self, server):
        import threading

        release = threading.Event()
        started = threading.Event()

        def work():
            started.set()
            release.wait(10)
            return "discarded"

        job = server.engine.scheduler.submit(work)
        try:
            assert started.wait(5)
            status, outcome = call(
                server, f"/jobs/{job.id}", method="DELETE"
            )
            assert status == 200
            assert outcome["cancelled"] is True
            # Honest state: the work is still draining, not yet dead.
            assert outcome["status"] == "cancelling"
        finally:
            release.set()
        done = server.engine.scheduler.wait(job.id, timeout=5)
        assert done.status == "cancelled"
        assert done.result is None


def _call_with_headers(srv, path, body=None, method=None):
    """Like :func:`call` but also returns the response headers."""
    host, port = srv.server_address[:2]
    url = f"http://{host}:{port}{path}"
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (
                response.status,
                json.loads(response.read()),
                dict(response.headers),
            )
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestBackpressure429:
    @pytest.fixture
    def shed_server(self, tmp_path):
        from repro.service.http import AccessLog

        log_path = tmp_path / "access.jsonl"
        srv = create_server(
            engine=PartitionEngine(cache=ResultCache(use_disk=False)),
            ready_queue_bound=-1,  # any queue depth exceeds it
            access_log=AccessLog(path=str(log_path)),
        )
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv, log_path
        srv.shutdown()
        srv.server_close()
        thread.join(5)

    def test_429_retry_after_counter_and_access_log(self, shed_server, h):
        srv, log_path = shed_server
        body = {"netlist": to_json(h), "algorithm": "fm", "seed": 0}
        status, doc, headers = _call_with_headers(srv, "/partition", body)
        assert status == 429
        assert headers.get("Retry-After") == "1"
        assert "queue depth" in doc["error"]
        assert doc["queue_depth"] >= 0

        status, metrics = call(srv, "/metrics")
        assert metrics["service"]["service.rejected"] == 1
        # The shed request never became accepted work.
        assert metrics["service"].get("service.requests", 0) == 0

        entries = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        shed = [e for e in entries if e.get("status") == 429]
        assert len(shed) == 1
        assert shed[0]["rejected"] is True
        assert shed[0]["path"] == "/partition"

    def test_rejected_counter_in_prometheus(self, shed_server, h):
        from repro.obs import parse_prometheus_text

        srv, _ = shed_server
        body = {"netlist": to_json(h), "algorithm": "fm", "seed": 0}
        call(srv, "/partition", body)
        host, port = srv.server_address[:2]
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics?format=prometheus", timeout=30
        ) as response:
            text = response.read().decode("utf-8")
        samples = parse_prometheus_text(text)
        values = [v for _, v in samples["repro_service_rejected_total"]]
        assert values == [1.0]
        assert "# TYPE repro_service_rejected_total counter" in text

    def test_health_paths_not_shed(self, shed_server):
        # Backpressure sheds work submissions, not health/metrics reads.
        srv, _ = shed_server
        assert call(srv, "/healthz")[0] == 200
        assert call(srv, "/metrics")[0] == 200
        assert call(srv, "/readyz")[0] == 503  # honest: queue over bound

    def test_normal_bound_accepts(self, server, h):
        body = {"netlist": to_json(h), "algorithm": "fm", "seed": 0}
        status, _ = call(server, "/partition", body)
        assert status == 200
        _, metrics = call(server, "/metrics")
        assert metrics["service"].get("service.rejected", 0) == 0


class TestGracefulDrain:
    def _server(self, tmp_path):
        from repro.service.http import AccessLog

        log_path = tmp_path / "access.jsonl"
        srv = create_server(
            engine=PartitionEngine(cache=ResultCache(use_disk=False)),
            access_log=AccessLog(path=str(log_path)),
        )
        thread = threading.Thread(
            target=srv.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        return srv, thread, log_path

    def test_drain_idle_server_is_clean_and_closes_port(self, tmp_path, h):
        srv, thread, log_path = self._server(tmp_path)
        body = {"netlist": to_json(h), "algorithm": "fm", "seed": 0}
        assert call(srv, "/partition", body)[0] == 200
        assert srv.drain(timeout_s=5.0) is True
        thread.join(5)
        host, port = srv.server_address[:2]
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=2
            )
        # The access log was flushed and contains the served request.
        entries = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert any(
            e.get("path") == "/partition" and e.get("status") == 200
            for e in entries
        )

    def test_keepalive_request_during_drain_gets_503(self, tmp_path, h):
        import http.client

        srv, thread, _ = self._server(tmp_path)
        host, port = srv.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        body = json.dumps(
            {"netlist": to_json(h), "algorithm": "fm", "seed": 0}
        )
        headers = {"Content-Type": "application/json"}
        try:
            # First request establishes a keep-alive connection.
            conn.request("POST", "/partition", body, headers)
            assert conn.getresponse().read() and True
            # A request racing in on the open connection after drain
            # starts was never accepted work: honest 503 + Retry-After.
            srv.draining = True
            conn.request("POST", "/partition", body, headers)
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 503
            assert response.headers.get("Retry-After") == "1"
            assert "draining" in doc["error"]
        finally:
            conn.close()
            srv.shutdown()
            srv.server_close()
            thread.join(5)

    def test_drain_timeout_reports_unclean(self, tmp_path):
        srv, thread, _ = self._server(tmp_path)
        # Fake a stuck in-flight request: drain must give up at the
        # deadline and say so rather than hanging.
        srv.request_started()
        try:
            assert srv.drain(timeout_s=0.2) is False
        finally:
            srv.request_finished()
            thread.join(5)


class TestProcessGauges:
    def test_process_metrics_sampled(self):
        from repro.obs import process_metrics

        sample = process_metrics()
        assert sample["max_rss_bytes"] > 0
        assert sample["cpu_seconds"] > 0
        assert sample["cpu_seconds"] == pytest.approx(
            sample["cpu_user_seconds"] + sample["cpu_system_seconds"]
        )
        # Linux: point-in-time RSS from /proc, bounded by the peak.
        if "rss_bytes" in sample:
            assert 0 < sample["rss_bytes"]

    def test_process_section_in_metrics_json(self, server):
        _, doc = call(server, "/metrics")
        process = doc["process"]
        assert process["max_rss_bytes"] > 0
        assert process["cpu_seconds"] > 0

    def test_process_gauges_in_prometheus(self, server):
        from repro.obs import parse_prometheus_text

        host, port = server.server_address[:2]
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics?format=prometheus", timeout=30
        ) as response:
            text = response.read().decode("utf-8")
        samples = parse_prometheus_text(text)
        # Point-in-time values are gauges; consumed CPU is a counter.
        assert "# TYPE repro_process_max_rss_bytes gauge" in text
        assert "# TYPE repro_process_cpu_seconds_total counter" in text
        assert samples["repro_process_max_rss_bytes"][0][1] > 0
        assert samples["repro_process_cpu_seconds_total"][0][1] > 0
