"""HTTP API tests: a real server on an ephemeral port, stdlib client."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.hypergraph import to_json
from repro.service import (
    PartitionEngine,
    PartitionRequest,
    ResultCache,
    canonical_result_bytes,
    create_server,
    payload_to_result,
    run_partitioner,
)
from tests.conftest import random_hypergraph


@pytest.fixture
def server():
    srv = create_server(
        engine=PartitionEngine(cache=ResultCache(use_disk=False))
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(5)


def call(srv, path, body=None, method=None):
    """One HTTP exchange; returns (status, parsed JSON body)."""
    host, port = srv.server_address[:2]
    url = f"http://{host}:{port}{path}"
    data = (
        json.dumps(body).encode("utf-8") if body is not None else None
    )
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture
def h():
    return random_hypergraph(3, num_modules=12, num_nets=16)


class TestHealthAndMetrics:
    def test_healthz(self, server):
        status, doc = call(server, "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["cache"] is True
        assert doc["workers"] >= 1
        assert doc["uptime_s"] >= 0

    def test_metrics_one_miss_then_one_hit(self, server, h):
        body = {"netlist": to_json(h), "algorithm": "fm", "seed": 0}
        call(server, "/partition", body)
        call(server, "/partition", body)
        status, doc = call(server, "/metrics")
        assert status == 200
        assert doc["service"]["service.cache.miss"] == 1
        assert doc["service"]["service.cache.hit"] == 1
        assert doc["service"]["service.computed"] == 1
        assert doc["cache"]["stores"] == 1

    def test_unknown_path_404(self, server):
        status, doc = call(server, "/nope")
        assert status == 404
        assert "unknown path" in doc["error"]

    def test_post_to_unknown_path_404(self, server):
        status, doc = call(server, "/healthz", {"x": 1})
        assert status == 404

    def test_readyz_ready(self, server):
        status, doc = call(server, "/readyz")
        assert status == 200
        assert doc["status"] == "ready"
        assert set(doc["checks"]) == {"cache", "jobs"}
        assert all(check["ok"] for check in doc["checks"].values())

    def test_readyz_unready_is_503(self, server):
        server.ready_queue_bound = -1  # any queued work exceeds it
        status, doc = call(server, "/readyz")
        assert status == 503
        assert doc["status"] == "unready"


class TestPartitionEndpoint:
    def test_served_matches_direct_run(self, server, h):
        request = PartitionRequest("ig-match", seed=7)
        direct = canonical_result_bytes(run_partitioner(h, request))
        body = {"netlist": to_json(h), "algorithm": "ig-match", "seed": 7}
        status, cold = call(server, "/partition", body)
        assert status == 200
        assert cold["cached"] is False and cold["source"] == "computed"
        status, warm = call(server, "/partition", body)
        assert status == 200
        assert warm["cached"] is True and warm["source"] == "memory"
        for doc in (cold, warm):
            result = payload_to_result(h, doc["result"])
            assert canonical_result_bytes(result) == direct
        assert cold["fingerprint"] == warm["fingerprint"]

    def test_net_text_body(self, server):
        net = "NET n1 a b\nNET n2 b c\nNET n3 c d\nNET n4 d a\n"
        status, doc = call(
            server, "/partition", {"net": net, "algorithm": "fm"}
        )
        assert status == 200
        assert len(doc["result"]["sides"]) == 4

    def test_cache_false_forces_compute(self, server, h):
        body = {"netlist": to_json(h), "algorithm": "fm", "cache": False}
        _, first = call(server, "/partition", body)
        _, second = call(server, "/partition", body)
        assert first["cached"] is False
        assert second["cached"] is False

    def test_both_body_forms_rejected(self, server, h):
        status, doc = call(
            server, "/partition", {"netlist": to_json(h), "net": "NET a b"}
        )
        assert status == 400
        assert "exactly one" in doc["error"]

    def test_neither_body_form_rejected(self, server):
        status, doc = call(server, "/partition", {"algorithm": "fm"})
        assert status == 400
        assert "exactly one" in doc["error"]

    def test_invalid_json_rejected(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/partition", data=b"{not json"
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                status = response.status
                doc = json.loads(response.read())
        except urllib.error.HTTPError as exc:
            status, doc = exc.code, json.loads(exc.read())
        assert status == 400
        assert "invalid JSON" in doc["error"]

    def test_empty_body_rejected(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/partition", data=b"", method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                status = response.status
                doc = json.loads(response.read())
        except urllib.error.HTTPError as exc:
            status, doc = exc.code, json.loads(exc.read())
        assert status == 400
        assert "empty" in doc["error"]

    def test_unknown_algorithm_rejected(self, server, h):
        status, doc = call(
            server,
            "/partition",
            {"netlist": to_json(h), "algorithm": "quantum"},
        )
        assert status == 400
        assert "unknown algorithm" in doc["error"]

    def test_unknown_request_field_rejected(self, server, h):
        status, doc = call(
            server,
            "/partition",
            {"netlist": to_json(h), "algorithm": "fm", "retries": 3},
        )
        # "retries" is not a request field (it's an async-job knob
        # spelled "max_retries") — must be called out, not ignored.
        assert status == 400
        assert "retries" in doc["error"]

    def test_degenerate_netlist_is_400_not_500(self, server):
        status, doc = call(
            server,
            "/partition",
            {"net": "NET only a b c\n", "algorithm": "ig-match"},
        )
        assert status == 400
        assert "error" in doc


class TestAsyncJobs:
    def test_async_job_lifecycle(self, server, h):
        body = {
            "netlist": to_json(h),
            "algorithm": "fm",
            "async": True,
        }
        status, doc = call(server, "/partition", body)
        assert status == 202
        job_id = doc["job"]
        engine = server.engine
        engine.scheduler.wait(job_id, timeout=30)
        status, record = call(server, f"/jobs/{job_id}")
        assert status == 200
        assert record["status"] == "succeeded"
        assert record["result"]["result"]["nets_cut"] >= 0

    def test_unknown_job_404(self, server):
        status, doc = call(server, "/jobs/ghost")
        assert status == 404
        assert "unknown job" in doc["error"]

    def test_delete_unknown_job_404(self, server):
        status, doc = call(server, "/jobs/ghost", method="DELETE")
        assert status == 404

    def test_delete_finished_job_reports_not_cancelled(self, server, h):
        _, doc = call(
            server,
            "/partition",
            {"netlist": to_json(h), "algorithm": "fm", "async": True},
        )
        job_id = doc["job"]
        server.engine.scheduler.wait(job_id, timeout=30)
        status, outcome = call(server, f"/jobs/{job_id}", method="DELETE")
        assert status == 200
        assert outcome["cancelled"] is False
