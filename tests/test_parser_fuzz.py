"""Fuzz tests: parsers must fail with ParseError, never crash.

Any text thrown at a netlist parser should produce either a valid
hypergraph or a :class:`ParseError` with a sensible message — no
IndexError/KeyError/ValueError escapes.
"""

import pytest
from hypothesis import given, settings

from repro.errors import ParseError, ReproError
from repro.hypergraph import (
    loads_bookshelf,
    loads_hgr,
    loads_net,
    loads_verilog,
)
from tests.strategies import netlist_texts

_any_text = netlist_texts()


@settings(max_examples=150, deadline=None)
@given(_any_text)
def test_net_parser_total(text):
    try:
        loads_net(text)
    except ParseError:
        pass


@settings(max_examples=150, deadline=None)
@given(_any_text)
def test_hgr_parser_total(text):
    try:
        loads_hgr(text)
    except ParseError:
        pass


@settings(max_examples=150, deadline=None)
@given(_any_text)
def test_verilog_parser_total(text):
    try:
        loads_verilog(text)
    except ParseError:
        pass


@settings(max_examples=100, deadline=None)
@given(_any_text, _any_text)
def test_bookshelf_parser_total(nodes_text, nets_text):
    try:
        loads_bookshelf(nodes_text, nets_text)
    except ParseError:
        pass


@settings(max_examples=100, deadline=None)
@given(_any_text)
def test_errors_are_catchable_as_repro_error(text):
    """The documented catch-all contract."""
    for parser in (loads_net, loads_hgr, loads_verilog):
        try:
            parser(text)
        except ReproError:
            pass
