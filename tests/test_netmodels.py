"""Tests for the net models (hypergraph -> graph conversions)."""

import pytest

from repro.errors import ReproError
from repro.hypergraph import Hypergraph
from repro.netmodels import (
    NetModel,
    available_models,
    get_model,
    register_model,
)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_models()
        for expected in ("clique", "unit-clique", "star", "path", "cycle"):
            assert expected in names

    def test_get_unknown_raises(self):
        with pytest.raises(ReproError):
            get_model("no-such-model")

    def test_duplicate_registration_rejected(self):
        class Dup(NetModel):
            name = "clique"

            def expand_net(self, pins):
                return []

        with pytest.raises(ReproError):
            register_model(Dup)

    def test_unnamed_model_rejected(self):
        class NoName(NetModel):
            def expand_net(self, pins):
                return []

        with pytest.raises(ReproError):
            register_model(NoName)


class TestCliqueModel:
    def test_two_pin_net(self):
        g = get_model("clique").to_graph(Hypergraph([[0, 1]]))
        assert g.weight(0, 1) == 1.0  # 1/(2-1)

    def test_three_pin_net_weights(self):
        g = get_model("clique").to_graph(Hypergraph([[0, 1, 2]]))
        for u, v in ((0, 1), (0, 2), (1, 2)):
            assert g.weight(u, v) == pytest.approx(0.5)  # 1/(3-1)

    def test_pin_total_weight_is_one(self):
        # Each pin of a k-pin net receives total weight 1 from that net.
        k = 6
        g = get_model("clique").to_graph(Hypergraph([list(range(k))]))
        for v in range(k):
            assert g.degree(v) == pytest.approx(1.0)

    def test_overlapping_nets_accumulate(self):
        g = get_model("clique").to_graph(Hypergraph([[0, 1], [0, 1, 2]]))
        assert g.weight(0, 1) == pytest.approx(1.5)

    def test_edge_count(self):
        g = get_model("clique").to_graph(Hypergraph([list(range(5))]))
        assert g.num_edges == 10  # C(5,2)

    def test_unit_clique(self):
        g = get_model("unit-clique").to_graph(Hypergraph([[0, 1, 2]]))
        assert g.weight(0, 1) == 1.0


class TestSparseModels:
    def test_star_edge_count(self):
        g = get_model("star").to_graph(Hypergraph([list(range(6))]))
        assert g.num_edges == 5
        # centre is the lowest-indexed pin
        assert g.unweighted_degree(0) == 5

    def test_path_edge_count(self):
        g = get_model("path").to_graph(Hypergraph([list(range(6))]))
        assert g.num_edges == 5
        assert g.has_edge(0, 1) and g.has_edge(4, 5)
        assert not g.has_edge(0, 5)

    def test_cycle_closes(self):
        g = get_model("cycle").to_graph(Hypergraph([[0, 1, 2, 3]]))
        assert g.num_edges == 4
        assert g.has_edge(0, 3)

    def test_cycle_two_pin_net_no_double_edge(self):
        g = get_model("cycle").to_graph(Hypergraph([[0, 1]]))
        assert g.weight(0, 1) == 1.0


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", ["clique", "star", "path", "cycle"])
    def test_degenerate_nets_ignored(self, name):
        h = Hypergraph([[0], [], [1, 2]], num_modules=3)
        g = get_model(name).to_graph(h)
        assert g.num_edges == 1

    @pytest.mark.parametrize("name", ["clique", "star", "path", "cycle"])
    def test_vertex_count_matches_modules(self, name, small_circuit):
        g = get_model(name).to_graph(small_circuit)
        assert g.num_vertices == small_circuit.num_modules

    def test_sparse_models_sparser_than_clique(self, small_circuit):
        clique_edges = get_model("clique").to_graph(small_circuit).num_edges
        for name in ("star", "path"):
            sparse_edges = get_model(name).to_graph(small_circuit).num_edges
            assert sparse_edges <= clique_edges
