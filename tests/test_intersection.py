"""Tests for intersection-graph construction and weightings.

The figures in the paper are schematic images, so the construction rules
of Section 2.2 are verified here on hand-computed instances instead
(see tests/test_paper_figures.py for the worked structural examples).
"""

import pytest

from repro.hypergraph import Hypergraph
from repro.intersection import (
    available_weightings,
    get_weighting,
    intersection_graph,
    intersection_nonzeros,
    shared_module_map,
)


class TestSharedModuleMap:
    def test_tiny(self, tiny_hypergraph):
        shared = shared_module_map(tiny_hypergraph)
        assert shared == {(0, 1): [1], (0, 2): [0], (1, 2): [3]}

    def test_multi_shared(self):
        h = Hypergraph([[0, 1, 2], [0, 1, 3]])
        shared = shared_module_map(h)
        assert shared == {(0, 1): [0, 1]}

    def test_disjoint_nets(self):
        h = Hypergraph([[0, 1], [2, 3]])
        assert shared_module_map(h) == {}


class TestStructure:
    def test_vertex_is_net(self, tiny_hypergraph):
        g = intersection_graph(tiny_hypergraph)
        assert g.num_vertices == tiny_hypergraph.num_nets

    def test_edges_iff_shared_module(self, tiny_hypergraph):
        g = intersection_graph(tiny_hypergraph)
        assert g.num_edges == 3  # triangle: every pair shares a module

    def test_unique_for_given_hypergraph(self, small_circuit):
        a = intersection_graph(small_circuit)
        b = intersection_graph(small_circuit)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_degenerate_nets_isolated(self):
        h = Hypergraph([[0, 1], [2]], num_modules=3)
        g = intersection_graph(h)
        assert g.num_vertices == 2
        assert g.num_edges == 0

    def test_matches_nets_sharing_module(self, small_circuit):
        g = intersection_graph(small_circuit)
        for net in range(0, small_circuit.num_nets, 7):
            assert sorted(g.neighbors(net)) == (
                small_circuit.nets_sharing_module(net)
            )


class TestPaperWeighting:
    def test_single_shared_module(self, tiny_hypergraph):
        # s0={0,1}, s1={1,2,3}: share module 1 with degree 2.
        # A' = 1/(2-1) * (1/2 + 1/3) = 5/6
        g = intersection_graph(tiny_hypergraph, "paper")
        assert g.weight(0, 1) == pytest.approx(5 / 6)
        assert g.weight(0, 2) == pytest.approx(1.0)
        assert g.weight(1, 2) == pytest.approx(5 / 6)

    def test_multiple_shared_modules_sum(self):
        # s0={0,1,2}, s1={0,1,3}: two shared modules of degree 2 each:
        # A' = 2 * [1/(2-1) * (1/3 + 1/3)] = 4/3
        h = Hypergraph([[0, 1, 2], [0, 1, 3]])
        g = intersection_graph(h, "paper")
        assert g.weight(0, 1) == pytest.approx(4 / 3)

    def test_high_degree_module_discounted(self):
        # Module 0 on 3 nets: d=3, each pair gets 1/(3-1) factor.
        h = Hypergraph([[0, 1], [0, 2], [0, 3]])
        g = intersection_graph(h, "paper")
        assert g.weight(0, 1) == pytest.approx(0.5 * (0.5 + 0.5))

    def test_small_net_overlaps_weigh_more(self):
        # Identical sharing structure, different net sizes.
        h = Hypergraph([[0, 1], [0, 2], [3, 4, 5, 0]], num_modules=6)
        g = intersection_graph(h, "paper")
        small_pair = g.weight(0, 1)  # sizes 2,2
        large_pair = g.weight(0, 2)  # sizes 2,4
        assert small_pair > large_pair


class TestAlternativeWeightings:
    def test_all_available(self):
        assert set(available_weightings()) >= {
            "paper", "unit", "overlap", "jaccard"
        }

    def test_unit(self, tiny_hypergraph):
        g = intersection_graph(tiny_hypergraph, "unit")
        for u, v, w in g.edges():
            assert w == 1.0

    def test_overlap(self):
        h = Hypergraph([[0, 1, 2], [0, 1, 3]])
        g = intersection_graph(h, "overlap")
        assert g.weight(0, 1) == 2.0

    def test_jaccard(self):
        h = Hypergraph([[0, 1, 2], [0, 1, 3]])
        g = intersection_graph(h, "jaccard")
        assert g.weight(0, 1) == pytest.approx(2 / 4)

    def test_custom_callable(self, tiny_hypergraph):
        g = intersection_graph(
            tiny_hypergraph, lambda h, a, b, shared: 42.0
        )
        assert g.weight(0, 1) == 42.0

    def test_unknown_name_raises(self, tiny_hypergraph):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            intersection_graph(tiny_hypergraph, "nope")

    def test_same_edge_set_across_weightings(self, small_circuit):
        edge_sets = []
        for name in available_weightings():
            g = intersection_graph(small_circuit, name)
            edge_sets.append({(u, v) for u, v, _ in g.edges()})
        assert all(s == edge_sets[0] for s in edge_sets)


class TestSparsity:
    def test_nonzeros_counts_both_triangles(self, tiny_hypergraph):
        assert intersection_nonzeros(tiny_hypergraph) == 6

    def test_nonzeros_matches_graph(self, small_circuit):
        g = intersection_graph(small_circuit)
        assert intersection_nonzeros(small_circuit) == g.num_nonzeros

    def test_wide_nets_favor_intersection_graph(self):
        # One 30-pin net: clique 870 nonzeros, IG 0 extra vertices' edges.
        h = Hypergraph([list(range(30)), [0, 1]])
        from repro.netmodels import get_model

        clique_nz = get_model("clique").to_graph(h).num_nonzeros
        assert clique_nz >= 870
        assert intersection_nonzeros(h) == 2
