"""Tests for graph traversal utilities."""

import pytest

from repro.graph import (
    Graph,
    approximate_diameter,
    bfs_distances,
    bfs_order,
    connected_components,
    eccentricity,
    is_connected,
)
from tests.conftest import connected_random_graph


@pytest.fixture
def two_triangles():
    """Vertices 0-2 and 3-5 form two disjoint triangles."""
    g = Graph(6)
    for base in (0, 3):
        g.add_edge(base, base + 1)
        g.add_edge(base + 1, base + 2)
        g.add_edge(base, base + 2)
    return g


class TestBfs:
    def test_order_starts_at_source(self, two_triangles):
        order = bfs_order(two_triangles, 0)
        assert order[0] == 0
        assert sorted(order) == [0, 1, 2]

    def test_distances(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert bfs_distances(g, 0) == [0, 1, 2, 3]

    def test_unreachable_is_none(self, two_triangles):
        dist = bfs_distances(two_triangles, 0)
        assert dist[4] is None


class TestComponents:
    def test_two_components(self, two_triangles):
        comps = connected_components(two_triangles)
        assert comps == [[0, 1, 2], [3, 4, 5]]

    def test_isolated_vertices_are_singletons(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert connected_components(g) == [[0, 1], [2]]

    def test_is_connected(self, two_triangles):
        assert not is_connected(two_triangles)
        assert is_connected(Graph(0))
        g = Graph(2)
        g.add_edge(0, 1)
        assert is_connected(g)

    def test_random_connected_graphs(self):
        for seed in range(5):
            g = connected_random_graph(seed, num_vertices=15)
            assert is_connected(g)


class TestDiameter:
    def test_path_eccentricity(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert eccentricity(g, 0) == 3
        assert eccentricity(g, 1) == 2

    def test_path_diameter_exact(self):
        g = Graph(5)
        for i in range(4):
            g.add_edge(i, i + 1)
        assert approximate_diameter(g) == 4

    def test_cycle_diameter(self):
        g = Graph(6)
        for i in range(6):
            g.add_edge(i, (i + 1) % 6)
        # true diameter 3; double sweep gives >= 2 and <= 3
        assert 2 <= approximate_diameter(g) <= 3

    def test_empty_graph(self):
        assert approximate_diameter(Graph(0)) == 0
