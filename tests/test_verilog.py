"""Tests for the structural Verilog front-end."""

import pytest

from repro.errors import ParseError
from repro.hypergraph import (
    dumps_verilog,
    load_verilog,
    loads_verilog,
    save_verilog,
)

HALF_ADDER = """
// half adder
module half_adder (a, b, sum, carry);
  input a, b;
  output sum, carry;
  xor g1 (sum, a, b);
  and g2 (carry, a, b);
endmodule
"""

WITH_WIRES = """
module chain (a, y);
  input a;
  output y;
  wire w1, w2;
  not g1 (w1, a);
  not g2 (w2, w1);
  not g3 (y, w2);
endmodule
"""


class TestParsing:
    def test_half_adder_structure(self):
        h = loads_verilog(HALF_ADDER)
        # 4 pads + 2 gates.
        assert h.num_modules == 6
        assert h.name == "half_adder"
        # nets: a{pad,g1,g2}, b{pad,g1,g2}, sum{pad,g1}, carry{pad,g2}.
        assert h.num_nets == 4
        assert h.module_name(0) == "pad:a"
        assert h.module_area(0) == 0.0  # pads are zero-area
        assert h.module_name(4) == "g1"
        assert h.module_area(4) == 1.0

    def test_net_membership(self):
        h = loads_verilog(HALF_ADDER)
        names = {h.net_name(j): h.pins(j) for j in range(h.num_nets)}
        # Net 'a' connects pad:a, g1 and g2 (3 pins).
        assert len(names["a"]) == 3
        assert len(names["sum"]) == 2

    def test_wires_and_comments(self):
        h = loads_verilog(WITH_WIRES)
        assert h.num_modules == 2 + 3  # pads a,y + 3 gates
        assert h.num_nets == 4  # a, w1, w2, y

    def test_block_comments(self):
        text = HALF_ADDER.replace(
            "// half adder", "/* a\n multiline\n comment */"
        )
        assert loads_verilog(text).num_nets == 4

    def test_single_net_wire_dropped(self):
        text = """
        module m (a, y);
          input a;
          output y;
          wire unused;
          buf g1 (y, a);
        endmodule
        """
        h = loads_verilog(text)
        net_names = {h.net_name(j) for j in range(h.num_nets)}
        assert "unused" not in net_names

    def test_undeclared_net_rejected(self):
        text = """
        module m (a);
          input a;
          buf g1 (a, mystery);
        endmodule
        """
        with pytest.raises(ParseError):
            loads_verilog(text)

    def test_vectors_rejected(self):
        text = "module m (a); input [3:0] a; endmodule"
        with pytest.raises(ParseError):
            loads_verilog(text)

    def test_behavioural_rejected(self):
        text = """
        module m (a);
          input a;
          assign b = a;
        endmodule
        """
        with pytest.raises(ParseError):
            loads_verilog(text)

    def test_named_connections_rejected(self):
        text = """
        module m (a, y);
          input a; output y;
          buf g1 (.out(y), .in(a));
        endmodule
        """
        with pytest.raises(ParseError):
            loads_verilog(text)

    def test_duplicate_instance_rejected(self):
        text = """
        module m (a, y);
          input a; output y;
          buf g1 (y, a);
          buf g1 (y, a);
        endmodule
        """
        with pytest.raises(ParseError):
            loads_verilog(text)

    def test_missing_endmodule(self):
        with pytest.raises(ParseError):
            loads_verilog("module m (a); input a; buf g (a, a);")

    def test_no_instances_rejected(self):
        with pytest.raises(ParseError):
            loads_verilog("module m (a); input a; endmodule")

    def test_empty_source(self):
        with pytest.raises(ParseError):
            loads_verilog("  // nothing\n")


class TestRoundtripAndFiles:
    def test_file_io(self, tmp_path):
        path = tmp_path / "ha.v"
        path.write_text(HALF_ADDER, encoding="utf-8")
        h = load_verilog(path)
        assert h.name == "ha"

    def test_dump_is_reparseable_structure(self, tmp_path):
        h = loads_verilog(WITH_WIRES)
        out = tmp_path / "dump.v"
        save_verilog(h, out, module_name="redump")
        text = out.read_text(encoding="utf-8")
        assert text.startswith("module redump")
        assert "endmodule" in text

    def test_partitioning_a_verilog_design(self):
        # Two half-adders sharing nothing: IG-Match separates them.
        text = """
        module two (a1, b1, s1, a2, b2, s2);
          input a1, b1, a2, b2;
          output s1, s2;
          xor x1 (s1, a1, b1);
          and n1 (s1, a1, b1);
          xor x2 (s2, a2, b2);
          and n2 (s2, a2, b2);
        endmodule
        """
        from repro.partitioning import ig_match

        h = loads_verilog(text)
        result = ig_match(h)
        assert result.nets_cut == 0  # the two adders are disjoint
