"""Tests for incremental matching maintenance under the L->R sweep.

The central property: after every move, the maintained matching must be
a *maximum* matching of the current crossing bipartite graph — verified
against Hopcroft–Karp on an explicit snapshot.
"""

import random

import pytest

from repro.errors import MatchingError
from repro.graph import Graph
from repro.matching import IncrementalMatching, hopcroft_karp, matching_size
from repro.matching.incremental import VertexClass
from tests.conftest import random_graph


class TestBasics:
    def test_initial_state(self):
        g = Graph(4)
        g.add_edge(0, 1)
        m = IncrementalMatching(g)
        assert m.left_count == 4
        assert m.right_count == 0
        assert m.matching_size == 0
        assert m.crossing_edge_count() == 0

    def test_single_move_creates_crossing(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        m = IncrementalMatching(g)
        m.move_to_right(0)
        assert m.side_of(0) == "R"
        assert m.crossing_edge_count() == 2
        assert m.matching_size == 1
        assert m.partner(0) in (1, 2)

    def test_move_twice_rejected(self):
        g = Graph(2)
        g.add_edge(0, 1)
        m = IncrementalMatching(g)
        m.move_to_right(0)
        with pytest.raises(MatchingError):
            m.move_to_right(0)

    def test_full_sweep_empties_left(self):
        g = Graph(3)
        g.add_edge(0, 1)
        m = IncrementalMatching(g)
        for v in range(3):
            m.move_to_right(v)
        assert m.left_count == 0
        assert m.matching_size == 0  # no crossing edges remain

    def test_snapshot_structure(self):
        g = Graph(4)
        g.add_edge(0, 2)
        g.add_edge(1, 3)
        g.add_edge(0, 1)
        m = IncrementalMatching(g)
        m.move_to_right(0)
        snap = m.snapshot()
        assert snap.left == {1, 2, 3}
        assert snap.right == {0}
        # edges of g: (0,2),(1,3),(0,1); after moving 0 the crossing
        # edges are (0,2) and (0,1) — (1,3) stays inside L.
        assert snap.num_edges == 2

    def test_snapshot_edge_count_exact(self):
        g = Graph(4)
        g.add_edge(0, 2)
        g.add_edge(1, 3)
        g.add_edge(0, 1)
        m = IncrementalMatching(g)
        m.move_to_right(0)
        assert m.snapshot().num_edges == 2


class TestMaximalityInvariant:
    @pytest.mark.parametrize("seed", range(12))
    def test_matching_always_maximum(self, seed):
        g = random_graph(seed, num_vertices=14, edge_probability=0.3)
        m = IncrementalMatching(g)
        order = list(range(14))
        random.Random(seed).shuffle(order)
        for v in order[:-1]:
            m.move_to_right(v)
            m.check_invariants()
            expected = matching_size(hopcroft_karp(m.snapshot()))
            assert m.matching_size == expected

    def test_dense_graph_sweep(self):
        g = Graph(10)
        for u in range(10):
            for v in range(u + 1, 10):
                g.add_edge(u, v)
        m = IncrementalMatching(g)
        for v in range(9):
            m.move_to_right(v)
            assert m.matching_size == min(v + 1, 9 - v)

    def test_matching_dict_symmetric(self):
        g = random_graph(3, num_vertices=10)
        m = IncrementalMatching(g)
        for v in range(5):
            m.move_to_right(v)
        d = m.matching_dict()
        for k, v in d.items():
            assert d[v] == k


class TestClassify:
    def test_classes_partition_vertices(self):
        g = random_graph(5, num_vertices=12)
        m = IncrementalMatching(g)
        for v in range(6):
            m.move_to_right(v)
        codes = m.classify()
        assert len(codes) == 12
        for v, code in enumerate(codes):
            if m.side_of(v) == "L":
                assert code in (
                    VertexClass.EVEN_L,
                    VertexClass.ODD_R,
                    VertexClass.CORE_L,
                )
            else:
                assert code in (
                    VertexClass.EVEN_R,
                    VertexClass.ODD_L,
                    VertexClass.CORE_R,
                )

    def test_unmatched_are_even(self):
        g = random_graph(8, num_vertices=12)
        m = IncrementalMatching(g)
        for v in range(5):
            m.move_to_right(v)
        codes = m.classify()
        for v in range(12):
            if m.partner(v) is None:
                assert codes[v] in (VertexClass.EVEN_L, VertexClass.EVEN_R)

    def test_matches_reference_decomposition(self):
        from repro.matching import decompose_bipartite

        for seed in range(8):
            g = random_graph(seed + 20, num_vertices=12)
            m = IncrementalMatching(g)
            for v in range(seed % 10 + 1):
                m.move_to_right(v)
            codes = m.classify()
            snap = m.snapshot()
            ref = decompose_bipartite(snap, m.matching_dict())
            got_even_l = {v for v, c in enumerate(codes)
                          if c == VertexClass.EVEN_L}
            got_even_r = {v for v, c in enumerate(codes)
                          if c == VertexClass.EVEN_R}
            got_core_l = {v for v, c in enumerate(codes)
                          if c == VertexClass.CORE_L}
            assert got_even_l == set(ref.even_left)
            assert got_even_r == set(ref.even_right)
            assert got_core_l == set(ref.core_left)

    def test_winners_form_independent_set(self):
        # Even(L) u Even(R) must be independent in the crossing graph.
        for seed in range(6):
            g = random_graph(seed + 40, num_vertices=14)
            m = IncrementalMatching(g)
            for v in range(7):
                m.move_to_right(v)
            codes = m.classify()
            winners = {
                v
                for v, c in enumerate(codes)
                if c in (VertexClass.EVEN_L, VertexClass.EVEN_R)
            }
            for u in winners:
                for w in m.crossing_neighbors(u):
                    assert w not in winners or m.side_of(w) == m.side_of(u)
