// Golden sample: a half adder in the supported structural subset.
module half_adder (a, b, sum, carry);
  input a, b;
  output sum, carry;
  xor g_sum (sum, a, b);
  and g_carry (carry, a, b);
endmodule
