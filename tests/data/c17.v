// Golden sample: the ISCAS-85 c17 benchmark topology (6 NAND gates),
// hand-transcribed into the supported structural subset.
module c17 (n1, n2, n3, n6, n7, n22, n23);
  input n1, n2, n3, n6, n7;
  output n22, n23;
  wire n10, n11, n16, n19;
  nand g10 (n10, n1, n3);
  nand g11 (n11, n3, n6);
  nand g16 (n16, n2, n11);
  nand g19 (n19, n11, n7);
  nand g22 (n22, n10, n16);
  nand g23 (n23, n16, n19);
endmodule
