"""Shared fixtures and hypothesis profiles for the test suite.

The hypothesis strategies themselves live in :mod:`tests.strategies`;
the historical names (``hypergraph_strategy``, ``bipartite_strategy``)
are re-exported here for the test files that import them from
``tests.conftest``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

from repro.bench import generate_hierarchical
from repro.graph import Graph
from repro.hypergraph import Hypergraph
from tests.strategies import (  # noqa: F401  (re-exported)
    bipartite_strategy,
    hypergraph_strategy,
)

# Profiles: "ci" trades example count for wall time so the matrix jobs
# (and the parallel-backend job, where every example forks workers)
# stay fast; "default" is the local run.  Select with
# ``pytest --hypothesis-profile ci``.  Note tests that hardcode
# ``@settings(max_examples=...)`` override the profile's count.
settings.register_profile("default", deadline=None)
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")


# ----------------------------------------------------------------------
# Small handcrafted instances
# ----------------------------------------------------------------------
@pytest.fixture
def tiny_hypergraph() -> Hypergraph:
    """4 modules, 3 nets: a path-like netlist.

    nets: n0={0,1}, n1={1,2,3}, n2={0,3}
    """
    return Hypergraph([[0, 1], [1, 2, 3], [0, 3]], name="tiny")


@pytest.fixture
def two_cluster_hypergraph() -> Hypergraph:
    """Two 4-module cliques of 2-pin nets joined by one bridge net.

    Modules 0-3 and 4-7; the only crossing net is n12 = {3, 4}.
    The optimal ratio-cut bipartition is {0..3} | {4..7} with 1 net cut.
    """
    nets = []
    for base in (0, 4):
        group = [base, base + 1, base + 2, base + 3]
        for i in range(4):
            for j in range(i + 1, 4):
                nets.append([group[i], group[j]])
    nets.append([3, 4])
    return Hypergraph(nets, name="two-cluster")


@pytest.fixture
def small_circuit() -> Hypergraph:
    """A 120-module hierarchical circuit with a planted 30:90 partition."""
    return generate_hierarchical(
        num_modules=120,
        num_nets=140,
        natural_fraction=0.25,
        crossing_nets=3,
        subcluster_size=20,
        seed=7,
        name="small",
    )


@pytest.fixture
def medium_circuit() -> Hypergraph:
    """A 300-module circuit for integration tests."""
    return generate_hierarchical(
        num_modules=300,
        num_nets=330,
        natural_fraction=0.2,
        crossing_nets=5,
        subcluster_size=40,
        seed=11,
        name="medium",
    )


# ----------------------------------------------------------------------
# Random-instance builders (deterministic in the seed)
# ----------------------------------------------------------------------
def random_hypergraph(
    seed: int,
    num_modules: int = 12,
    num_nets: int = 15,
    max_net_size: int = 5,
) -> Hypergraph:
    """A uniformly random hypergraph, connected-ish via coverage."""
    rng = random.Random(seed)
    nets = []
    for _ in range(num_nets):
        size = rng.randint(2, min(max_net_size, num_modules))
        nets.append(rng.sample(range(num_modules), size))
    # Guarantee every module appears somewhere.
    for v in range(num_modules):
        if not any(v in pins for pins in nets):
            other = (v + 1) % num_modules
            nets.append([v, other])
    return Hypergraph(nets, num_modules=num_modules)


def random_graph(
    seed: int, num_vertices: int = 10, edge_probability: float = 0.3
) -> Graph:
    """A random weighted graph."""
    rng = random.Random(seed)
    g = Graph(num_vertices)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < edge_probability:
                g.add_edge(u, v, rng.choice([0.5, 1.0, 2.0]))
    return g


def connected_random_graph(
    seed: int, num_vertices: int = 10, extra_edges: int = 8
) -> Graph:
    """A random connected graph: a random spanning tree plus extras."""
    rng = random.Random(seed)
    g = Graph(num_vertices)
    order = list(range(num_vertices))
    rng.shuffle(order)
    for i in range(1, num_vertices):
        g.add_edge(order[i], order[rng.randrange(i)], rng.choice([1.0, 2.0]))
    for _ in range(extra_edges):
        u, v = rng.sample(range(num_vertices), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, 1.0)
    return g
