"""Request-scoped tracing: ids, capture isolation, parallel propagation."""

import re

import pytest

from repro import obs
from repro.hypergraph import Hypergraph
from repro.obs.trace import (
    current_trace_id,
    merge_into_current,
    new_trace_id,
    span_node_from_dict,
    span_node_to_dict,
)
from repro.parallel import ParallelConfig
from repro.service.engine import PartitionRequest, run_partitioner
from tests.conftest import random_hypergraph


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    obs.disable()
    obs.reset()


class TestTraceIds:
    def test_format(self):
        tid = new_trace_id()
        assert re.match(r"[0-9a-f]{16}$", tid)

    def test_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64

    def test_no_ambient_trace_id(self):
        assert current_trace_id() is None

    def test_bound_inside_capture_only(self):
        with obs.TraceCapture("abc123") as capture:
            assert current_trace_id() == "abc123"
            assert capture.trace_id == "abc123"
        assert current_trace_id() is None

    def test_minted_when_not_given(self):
        with obs.TraceCapture() as capture:
            assert current_trace_id() == capture.trace_id


class TestCaptureIsolation:
    def test_captures_spans_while_global_obs_off(self):
        assert not obs.is_enabled()
        with obs.TraceCapture() as capture:
            with obs.span("phase.one"):
                obs.incr("work.units", 3)
        assert not obs.is_enabled()
        assert capture.span_names() == ["phase.one"]
        assert capture.counters["work.units"] == 3
        # Nothing leaked into the (disabled) global state.
        assert obs.current_state().roots == []

    def test_trace_id_stamped_on_spans_and_events(self):
        with obs.TraceCapture("feedf00dfeedf00d") as capture:
            with obs.span("phase.two"):
                obs.emit("point.obs", value=1)
        for node in capture.spans:
            assert node["attrs"]["trace_id"] == "feedf00dfeedf00d"
        assert capture.events
        assert all(
            event["trace_id"] == "feedf00dfeedf00d"
            for event in capture.events
        )

    def test_merges_into_enabled_parent(self):
        with obs.enabled():
            with obs.span("outer"):
                with obs.TraceCapture() as capture:
                    with obs.span("inner.phase"):
                        obs.incr("inner.count", 2)
            totals = obs.flatten_totals()
            assert "outer" in totals
            assert "inner.phase" in totals
            assert obs.counters()["inner.count"] == 2
        assert capture.span_names() == ["inner.phase"]

    def test_disabled_parent_sees_nothing(self):
        with obs.TraceCapture():
            with obs.span("quiet.phase"):
                pass
        assert obs.current_state().roots == []
        assert obs.current_state().counters == {}

    def test_exception_propagates_but_capture_completes(self):
        capture = obs.TraceCapture()
        with pytest.raises(RuntimeError, match="boom"):
            with capture:
                with obs.span("failing.phase"):
                    raise RuntimeError("boom")
        assert capture.span_names() == ["failing.phase"]
        assert capture.duration_s > 0
        assert not obs.is_enabled()

    def test_nested_captures(self):
        with obs.TraceCapture("outeraaaaaaaaaaa") as outer:
            with obs.span("outer.work"):
                with obs.TraceCapture("innerbbbbbbbbbbb") as inner:
                    with obs.span("inner.work"):
                        pass
        assert inner.span_names() == ["inner.work"]
        # The inner capture merged into the outer's (enabled) state.
        assert outer.span_names() == ["outer.work", "inner.work"]


class TestFragmentHelpers:
    def test_span_node_round_trip(self):
        with obs.TraceCapture() as capture:
            with obs.span("a", k=1):
                with obs.span("b"):
                    pass
        node = span_node_from_dict(capture.spans[0])
        assert span_node_to_dict(node) == capture.spans[0]

    def test_merge_into_current_none_is_noop(self):
        merge_into_current(None)

    def test_fragment_shape(self):
        with obs.TraceCapture() as capture:
            obs.incr("x", 1)
        fragment = capture.fragment()
        assert set(fragment) == {"counters", "spans", "events"}


class TestParallelPropagation:
    """Worker spans land in the request capture on both backends."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_worker_spans_captured(self, backend):
        h = random_hypergraph(11, num_modules=14, num_nets=18)
        parallel = ParallelConfig(workers=2, backend=backend)
        assert not obs.is_enabled()
        with obs.TraceCapture() as capture:
            run_partitioner(
                h,
                PartitionRequest("rcut", seed=0, restarts=4),
                parallel=parallel,
            )
        names = capture.span_names()
        # The restart spans ran in worker threads/processes, yet appear
        # in this request's capture, stamped with its trace id.
        assert "rcut.restart" in names
        assert capture.spans[0]["attrs"]["trace_id"] == capture.trace_id

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_capture_matches_serial_span_set(self, backend):
        h = random_hypergraph(12, num_modules=14, num_nets=18)
        request = PartitionRequest("rcut", seed=0, restarts=3)
        with obs.TraceCapture() as serial:
            run_partitioner(h, request, parallel=None)
        with obs.TraceCapture() as fanned:
            run_partitioner(
                h,
                request,
                parallel=ParallelConfig(workers=2, backend=backend),
            )
        assert sorted(set(serial.span_names())) == sorted(
            set(fanned.span_names())
        )
