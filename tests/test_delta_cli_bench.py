"""The ECO front ends: ``repro-partition --delta/--base`` and
``python -m repro.bench --eco-scenario``."""

import json
import random

import pytest

from repro.cli import main
from repro.delta import random_delta, save_delta
from repro.hypergraph import save_net
from tests.conftest import random_hypergraph


@pytest.fixture
def eco_files(tmp_path):
    h = random_hypergraph(8, num_modules=30, num_nets=40)
    base = tmp_path / "base.net"
    save_net(h, base)
    delta = tmp_path / "delta.json"
    save_delta(random_delta(h, random.Random(4)), delta)
    return base, delta


class TestCliDelta:
    def test_delta_with_base_flag(self, eco_files, capsys):
        base, delta = eco_files
        assert main(["--delta", str(delta), "--base", str(base)]) == 0
        out = capsys.readouterr()
        assert "warm" in out.err
        assert "IG-Match" in out.out

    def test_delta_with_positional_base(self, eco_files, capsys):
        base, delta = eco_files
        assert main([str(base), "--delta", str(delta), "-a", "fm"]) == 0
        assert "FM" in capsys.readouterr().out

    def test_delta_json_output_marks_warm(self, eco_files, capsys):
        base, delta = eco_files
        assert main(
            ["--delta", str(delta), "--base", str(base), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["details"]["warm"] is True

    def test_base_without_delta_is_usage_error(self, eco_files):
        base, _delta = eco_files
        with pytest.raises(SystemExit):
            main(["--base", str(base)])

    def test_delta_with_cache_is_usage_error(self, eco_files, capsys):
        base, delta = eco_files
        assert (
            main(
                ["--delta", str(delta), "--base", str(base), "--cache"]
            )
            == 2
        )
        assert "--cache" in capsys.readouterr().err

    def test_delta_with_multiway_is_usage_error(self, eco_files, capsys):
        base, delta = eco_files
        assert (
            main(["--delta", str(delta), "--base", str(base), "-k", "4"])
            == 2
        )

    def test_missing_delta_file_is_reported(self, eco_files, capsys):
        base, _delta = eco_files
        assert (
            main(["--delta", "/nonexistent.json", "--base", str(base)])
            == 1
        )
        assert "error" in capsys.readouterr().err


class TestEcoScenario:
    def test_scenario_payload_shape_and_gates(self, tmp_path):
        from repro.bench.eco_scenario import run_eco_scenario

        record = run_eco_scenario(
            "Test02", scale=0.3, deltas=2, min_speedup=0.0
        )
        assert record["schema"] == 1
        assert record["scenario"] == "eco-warm-vs-cold"
        assert len(record["edits"]) == 2
        assert record["verified"]["all_edits_served_warm"]
        assert record["verified"]["quality_no_worse_than_cold"]
        assert record["verified"]["no_base_misses"]
        assert record["verified"]["sessions_chained"]
        assert record["counters"]["service.delta.warm"] == 2
        json.dumps(record)  # must be serialisable as-is

    def test_cli_writes_record_and_gates(self, tmp_path, capsys):
        from repro.bench.__main__ import main as bench_main

        out = tmp_path / "BENCH_eco.json"
        code = bench_main(
            [
                "Test02",
                "--eco-scenario",
                "--scale",
                "0.3",
                "--eco-deltas",
                "2",
                "--eco-min-speedup",
                "0",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        record = json.loads(out.read_text())
        assert record["ok"] is True
        assert "PASS" in capsys.readouterr().out
