"""Tests for netlist file I/O."""

import pytest

from repro.errors import ParseError
from repro.hypergraph import (
    Hypergraph,
    dumps_net,
    from_json,
    load_json,
    load_net,
    loads_net,
    save_json,
    save_net,
    to_json,
)


class TestJson:
    def test_roundtrip(self, tiny_hypergraph):
        assert from_json(to_json(tiny_hypergraph)) == tiny_hypergraph

    def test_roundtrip_with_metadata(self):
        h = Hypergraph(
            [[0, 1]],
            module_names=["a", "b"],
            net_names=["clk"],
            module_areas=[2.0, 1.0],
            name="x",
        )
        back = from_json(to_json(h))
        assert back == h
        assert back.module_name(0) == "a"
        assert back.net_name(0) == "clk"
        assert back.name == "x"

    def test_file_roundtrip(self, tmp_path, small_circuit):
        path = tmp_path / "c.json"
        save_json(small_circuit, path)
        assert load_json(path) == small_circuit

    def test_bad_format_tag(self):
        with pytest.raises(ParseError):
            from_json({"format": "something-else"})


class TestNetFormat:
    def test_roundtrip(self, tiny_hypergraph):
        back = loads_net(dumps_net(tiny_hypergraph))
        assert back == tiny_hypergraph

    def test_file_roundtrip(self, tmp_path, small_circuit):
        path = tmp_path / "c.net"
        save_net(small_circuit, path)
        back = load_net(path)
        assert back == small_circuit
        assert back.name == "c"  # stem becomes the name

    def test_parse_simple(self):
        text = """
        # a comment
        module a
        module b 2.5
        net w1 a b
        """
        h = loads_net(text)
        assert h.num_modules == 2
        assert h.module_area(1) == 2.5
        assert h.net_name(0) == "w1"

    def test_nets_create_modules(self):
        h = loads_net("net n1 x y z")
        assert h.num_modules == 3
        assert h.net_size(0) == 3

    def test_unknown_keyword(self):
        with pytest.raises(ParseError) as err:
            loads_net("wibble a b")
        assert err.value.line == 1

    def test_bad_area(self):
        with pytest.raises(ParseError):
            loads_net("module a xyz")

    def test_duplicate_module(self):
        with pytest.raises(ParseError):
            loads_net("module a\nmodule a")

    def test_duplicate_net_name(self):
        with pytest.raises(ParseError):
            loads_net("net n a b\nnet n c d")

    def test_net_missing_name(self):
        with pytest.raises(ParseError):
            loads_net("net")

    def test_inline_comment(self):
        h = loads_net("net n1 a b # trailing words")
        assert h.net_size(0) == 2

    def test_areas_preserved_in_dump(self):
        h = Hypergraph([[0, 1]], module_areas=[3.0, 1.0])
        text = dumps_net(h)
        assert "3" in text
        assert loads_net(text).module_area(0) == 3.0
