"""Workload model tests: mixes, zipf weights, deterministic schedules."""

import threading

import pytest

from repro.errors import ReproError
from repro.loadgen import Workload, parse_mix, zipf_weights
from repro.service.engine import ALGORITHMS


class TestParseMix:
    def test_normalises_weights(self):
        mix = parse_mix("igmatch=0.5,fm=0.3,eig1=0.2")
        assert mix == {"ig-match": 0.5, "fm": 0.3, "eig1": 0.2}

    def test_unnormalised_weights_are_scaled(self):
        mix = parse_mix("fm=2,kl=2")
        assert mix == {"fm": 0.5, "kl": 0.5}

    def test_aliases_map_to_canonical_names(self):
        mix = parse_mix("igmatch=1,ig_vote=1")
        assert set(mix) == {"ig-match", "ig-vote"}

    def test_canonical_names_accepted_directly(self):
        for name in ALGORITHMS:
            assert parse_mix(name) == {name: 1.0}

    def test_bare_name_means_weight_one(self):
        assert parse_mix("fm,kl,anneal") == pytest.approx(
            {"fm": 1 / 3, "kl": 1 / 3, "anneal": 1 / 3}
        )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ReproError, match="unknown algorithm"):
            parse_mix("quantum=1.0")

    def test_repeated_algorithm_rejected(self):
        # Two different aliases for one algorithm must also collide.
        with pytest.raises(ReproError, match="repeated"):
            parse_mix("igmatch=0.5,ig-match=0.5")

    def test_bad_weight_rejected(self):
        with pytest.raises(ReproError, match="bad weight"):
            parse_mix("fm=lots")

    def test_negative_weight_rejected(self):
        with pytest.raises(ReproError, match=">= 0"):
            parse_mix("fm=-1")

    def test_zero_sum_rejected(self):
        with pytest.raises(ReproError, match="sum to zero"):
            parse_mix("fm=0,kl=0")

    def test_empty_rejected(self):
        with pytest.raises(ReproError, match="empty"):
            parse_mix("  ")


class TestZipfWeights:
    def test_normalised(self):
        weights = zipf_weights(10, 1.1)
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)

    def test_monotone_decreasing(self):
        weights = zipf_weights(8, 1.1)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_s_zero_is_uniform(self):
        assert zipf_weights(4, 0.0) == pytest.approx([0.25] * 4)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ReproError):
            zipf_weights(0, 1.0)
        with pytest.raises(ReproError):
            zipf_weights(4, -1.0)


def _workload(**kwargs):
    defaults = dict(
        mix=parse_mix("igmatch=0.5,fm=0.3,eig1=0.2"),
        corpus_size=5,
        zipf_s=1.1,
        seed=7,
    )
    defaults.update(kwargs)
    return Workload(**defaults)


class TestWorkloadSchedule:
    def test_spec_is_deterministic(self):
        a, b = _workload(), _workload()
        for i in range(200):
            assert a.spec(i) == b.spec(i)

    def test_spec_is_order_independent(self):
        # spec(i) is a pure function of (seed, i): asking out of order
        # or repeatedly never changes the answer.
        w = _workload()
        forward = [w.spec(i) for i in range(50)]
        backward = [_workload().spec(i) for i in reversed(range(50))]
        assert forward == list(reversed(backward))

    def test_mix_frequencies_converge(self):
        w = _workload()
        n = 3000
        tally = {}
        for i in range(n):
            spec = w.spec(i)
            tally[spec.algorithm] = tally.get(spec.algorithm, 0) + 1
        assert tally["ig-match"] / n == pytest.approx(0.5, abs=0.05)
        assert tally["fm"] / n == pytest.approx(0.3, abs=0.05)
        assert tally["eig1"] / n == pytest.approx(0.2, abs=0.05)

    def test_zipf_concentrates_on_low_ranks(self):
        w = _workload(zipf_s=1.5)
        tally = [0] * 5
        for i in range(2000):
            tally[w.spec(i).entry_index] += 1
        assert tally[0] > tally[1] > tally[4]

    def test_request_seed_is_constant_across_schedule(self):
        # Per-request partition seeds would defeat the cache: repeats
        # of one corpus entry must share a fingerprint.
        w = _workload(request_seed=3)
        assert {w.spec(i).seed for i in range(100)} == {3}

    def test_thread_safety_of_seed_cache(self):
        w = _workload()
        results = [None] * 8

        def grab(slot):
            results[slot] = [w.spec(i) for i in range(300)]

        threads = [
            threading.Thread(target=grab, args=(k,)) for k in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r == results[0] for r in results)

    def test_entry_index_in_corpus_range(self):
        w = _workload(corpus_size=3)
        assert all(0 <= w.spec(i).entry_index < 3 for i in range(500))

    def test_negative_index_rejected(self):
        with pytest.raises(ReproError):
            _workload().spec(-1)

    def test_unknown_mix_algorithm_rejected(self):
        with pytest.raises(ReproError, match="unknown algorithm"):
            Workload({"quantum": 1.0}, corpus_size=3)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ReproError, match="corpus"):
            Workload({"fm": 1.0}, corpus_size=0)


class TestOpenLoopSchedule:
    def test_deterministic(self):
        a = _workload().open_loop_schedule(5.0, 20.0)
        b = _workload().open_loop_schedule(5.0, 20.0)
        assert a == b
        assert len(a) > 0

    def test_arrivals_sorted_and_bounded(self):
        schedule = _workload().open_loop_schedule(3.0, 30.0)
        arrivals = [s.arrival_s for s in schedule]
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 3.0 for t in arrivals)

    def test_prefix_stable_under_longer_duration(self):
        short = _workload().open_loop_schedule(2.0, 25.0)
        long = _workload().open_loop_schedule(4.0, 25.0)
        assert long[: len(short)] == short

    def test_rate_scales_count(self):
        slow = _workload().open_loop_schedule(5.0, 5.0)
        fast = _workload().open_loop_schedule(5.0, 50.0)
        # ~25 vs ~250 expected arrivals; a 3x gap is loose enough to
        # never flake yet still proves rate drives the schedule.
        assert len(fast) > 3 * max(len(slow), 1)

    def test_same_specs_as_closed_loop(self):
        # Open loop draws arrival gaps from the same per-request seeds
        # *after* the algorithm/entry draws, so request i asks for the
        # same work under either delivery model.
        w = _workload()
        schedule = w.open_loop_schedule(3.0, 20.0)
        for spec in schedule:
            closed = w.spec(spec.index)
            assert (spec.algorithm, spec.entry_index) == (
                closed.algorithm,
                closed.entry_index,
            )

    def test_bad_inputs_rejected(self):
        with pytest.raises(ReproError):
            _workload().open_loop_schedule(0.0, 10.0)
        with pytest.raises(ReproError):
            _workload().open_loop_schedule(5.0, 0.0)


def test_describe_is_json_safe():
    import json

    doc = _workload().describe()
    assert json.loads(json.dumps(doc)) == doc
    assert doc["corpus_size"] == 5
    assert doc["zipf_s"] == 1.1
