"""Tests for net weights across the hypergraph substrate and metrics."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import (
    Hypergraph,
    drop_degenerate_nets,
    from_json,
    induced_subhypergraph,
    merge_modules,
    relabel_modules,
    threshold_nets,
    to_json,
)
from repro.partitioning import Partition, weighted_net_cut


@pytest.fixture
def weighted():
    """Three nets, weights 2 / 1 / 5."""
    return Hypergraph(
        [[0, 1], [1, 2, 3], [0, 3]], net_weights=[2.0, 1.0, 5.0]
    )


class TestCore:
    def test_defaults_unit(self, tiny_hypergraph):
        assert not tiny_hypergraph.has_net_weights
        assert tiny_hypergraph.net_weight(0) == 1.0
        assert tiny_hypergraph.net_weights == (1.0, 1.0, 1.0)

    def test_explicit(self, weighted):
        assert weighted.has_net_weights
        assert weighted.net_weight(2) == 5.0

    def test_length_checked(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1]], net_weights=[1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1]], net_weights=[-1.0])

    def test_out_of_range(self, weighted):
        with pytest.raises(HypergraphError):
            weighted.net_weight(10)

    def test_equality_considers_weights(self, weighted):
        unweighted = Hypergraph([[0, 1], [1, 2, 3], [0, 3]])
        assert weighted != unweighted
        same = Hypergraph(
            [[0, 1], [1, 2, 3], [0, 3]], net_weights=[2.0, 1.0, 5.0]
        )
        assert weighted == same


class TestMetrics:
    def test_weighted_cut(self, weighted):
        # sides 0,0,1,1: nets 1 and 2 cut -> weight 1 + 5.
        assert weighted_net_cut(weighted, [0, 0, 1, 1]) == 6.0

    def test_matches_count_when_unit(self, tiny_hypergraph):
        from repro.partitioning import net_cut_count

        sides = [0, 1, 0, 1]
        assert weighted_net_cut(tiny_hypergraph, sides) == (
            net_cut_count(tiny_hypergraph, sides)
        )

    def test_partition_property(self, weighted):
        p = Partition(weighted, [0, 0, 1, 1])
        assert p.weighted_nets_cut == 6.0
        assert p.num_nets_cut == 2


class TestPropagation:
    def test_json_roundtrip(self, weighted):
        assert from_json(to_json(weighted)) == weighted

    def test_drop_degenerate(self):
        h = Hypergraph([[0, 1], [2], [1, 2]],
                       net_weights=[2.0, 9.0, 3.0])
        out, net_map = drop_degenerate_nets(h)
        assert out.net_weights == (2.0, 3.0)

    def test_threshold(self, weighted):
        out, _ = threshold_nets(weighted, max_size=2)
        assert out.net_weights == (2.0, 5.0)

    def test_induced(self, weighted):
        sub, _, net_map = induced_subhypergraph(weighted, [1, 2, 3])
        assert sub.net_weights == tuple(
            weighted.net_weight(j) for j in net_map
        )

    def test_merge(self, weighted):
        coarse, _ = merge_modules(weighted, [[0, 1], [2, 3]])
        # net 0 {0,1} collapses; nets 1 and 2 survive.
        assert coarse.net_weights == (1.0, 5.0)

    def test_relabel(self, weighted):
        out, _ = relabel_modules(weighted, [3, 2, 1, 0])
        assert out.net_weights == weighted.net_weights

    def test_unweighted_stays_unweighted(self, tiny_hypergraph):
        out, _ = threshold_nets(tiny_hypergraph, max_size=3)
        assert not out.has_net_weights
