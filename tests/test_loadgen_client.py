"""Load client integration tests: real server, real sockets.

Covers the tentpole contract end to end: deterministic workloads driven
over HTTP, client-side histograms, the before/after ``/metrics``
cross-check (every client request accounted in server deltas), 429
backpressure recorded as ``rejected`` (not an error), graceful drain
losing zero accepted requests, the schema'd payload, renderers, and the
CLI exit codes.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.loadgen import (
    LoadClient,
    Workload,
    build_corpus,
    build_payload,
    crosscheck,
    parse_mix,
    parse_slo,
    run_serving_scenario,
    scrape_metrics,
    validate_payload,
)
from repro.loadgen.__main__ import EXIT_FAILED, EXIT_OK, main
from repro.loadgen.scenario import settle_metrics
from repro.obs import render_serving_html, render_serving_markdown
from repro.service import PartitionEngine, ResultCache, create_server
from repro.service.http import AccessLog


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(distinct=2, isomorphs=1, seed=0, scale=0.1)


def _workload(corpus, **kwargs):
    defaults = dict(
        mix=parse_mix("igmatch=0.5,fm=0.5"),
        corpus_size=len(corpus),
        zipf_s=1.1,
        seed=0,
    )
    defaults.update(kwargs)
    return Workload(**defaults)


class _Server:
    """A served engine on an ephemeral port, with optional access log."""

    def __init__(self, ready_queue_bound=64, access_log=None):
        self.server = create_server(
            engine=PartitionEngine(cache=ResultCache(use_disk=False)),
            ready_queue_bound=ready_queue_bound,
            access_log=access_log,
        )
        host, port = self.server.server_address[:2]
        self.url = f"http://{host}:{port}"
        self.thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc):
        if not self.server.draining:
            self.server.shutdown()
            self.server.server_close()
        self.thread.join(5)


class TestClosedLoopRun:
    def test_run_crosscheck_and_payload(self, corpus, tmp_path):
        with _Server() as srv:
            workload = _workload(corpus)
            client = LoadClient(srv.url, corpus, workload, timeout_s=60)
            before, _ = scrape_metrics(srv.url)
            result = client.run_closed(duration_s=1.5, concurrency=3)
            after, _ = settle_metrics(srv.url, result.responses)
        assert result.count("ok") > 0
        assert result.count("error") == 0
        assert result.count("transport") == 0

        # Every response carried the client-minted trace id scheme and
        # cache provenance.
        for record in result.records:
            assert record.trace_id.startswith("loadgen-")
            assert record.source in ("computed", "memory", "disk", "inflight")

        # Client-side histograms saw every request.
        merged = result.hists.merged("loadgen.request.duration_seconds")
        assert merged.count == len(result.records)

        checks = crosscheck(before, after, result)
        assert all(c["status"] == "ok" for c in checks), checks

        result.metrics_before, result.metrics_after = before, after
        slo = parse_slo("p99=2.0,error_rate=0.01")
        payload = build_payload(
            result, workload, corpus, slo, checks
        )
        validate_payload(payload)
        assert payload["slo"]["ok"] is True
        assert payload["crosscheck"]["ok"] is True

        # Renderers accept the payload.
        markdown = render_serving_markdown(payload)
        assert "cross-check" in markdown
        html = render_serving_html(payload)
        assert html.startswith("<!doctype html>")
        assert "SLO verdicts" in html

        # The payload is JSON-serialisable as written.
        (tmp_path / "BENCH_serving.json").write_text(json.dumps(payload))

    def test_schedule_consumed_in_order(self, corpus):
        with _Server() as srv:
            client = LoadClient(srv.url, corpus, _workload(corpus))
            result = client.run_closed(duration_s=0.8, concurrency=2)
        indices = [r.index for r in result.records]
        assert indices == list(range(len(indices)))

    def test_corpus_size_mismatch_rejected(self, corpus):
        from repro.errors import ReproError

        workload = _workload(corpus, corpus_size=len(corpus) + 1)
        with pytest.raises(ReproError, match="corpus"):
            LoadClient("http://127.0.0.1:1", corpus, workload)


class TestOpenLoopRun:
    def test_poisson_run_crosschecks(self, corpus):
        with _Server() as srv:
            client = LoadClient(srv.url, corpus, _workload(corpus))
            before, _ = scrape_metrics(srv.url)
            result = client.run_open(duration_s=1.5, rate=20.0)
            after, _ = settle_metrics(srv.url, result.responses)
        assert result.model == "open"
        assert result.count("ok") > 0
        checks = crosscheck(before, after, result)
        assert all(c["status"] == "ok" for c in checks), checks


class TestBackpressure:
    def test_429s_recorded_as_rejected_not_errors(self, corpus):
        # bound = -1: any queue depth (even 0) exceeds it, so every
        # POST /partition is shed at ingress with a 429.
        with _Server(ready_queue_bound=-1) as srv:
            client = LoadClient(srv.url, corpus, _workload(corpus))
            before, _ = scrape_metrics(srv.url)
            result = client.run_closed(duration_s=0.5, concurrency=2)
            after, _ = settle_metrics(srv.url, result.responses)
        assert result.count("ok") == 0
        assert result.count("error") == 0
        rejected = result.count("rejected")
        assert rejected > 0
        assert all(r.status == 429 for r in result.records)
        assert all(r.error for r in result.records)

        checks = crosscheck(before, after, result)
        assert all(c["status"] == "ok" for c in checks), checks
        by_name = {c["check"]: c for c in checks}
        assert (
            by_name["service.rejected delta == client 429s"]["observed"]
            == rejected
        )
        # None of the shed requests reached the engine.
        assert (
            by_name["service.requests delta == client 200s"]["observed"]
            == 0
        )

        payload = build_payload(
            result,
            _workload(corpus),
            corpus,
            parse_slo("error_rate=0.01"),
            checks,
        )
        validate_payload(payload)
        # With zero non-rejected requests the error rate is unobservable
        # — skipped, not failed: shedding is flow control, not an error.
        assert payload["client"]["error_rate"] is None
        verdicts = payload["slo"]["verdicts"]
        assert verdicts[0]["verdict"] == "skipped"
        assert payload["slo"]["ok"] is True


class TestGracefulDrain:
    def test_drain_loses_no_accepted_requests(self, corpus, tmp_path):
        log_path = tmp_path / "access.jsonl"
        srv = _Server(access_log=AccessLog(path=str(log_path)))
        with srv:
            client = LoadClient(srv.url, corpus, _workload(corpus))
            box = {}

            def load():
                box["result"] = client.run_closed(
                    duration_s=4.0, concurrency=3
                )

            loader = threading.Thread(target=load)
            loader.start()
            time.sleep(0.6)  # let traffic flow, then drain mid-run
            clean = srv.server.drain(timeout_s=10.0)
            loader.join(30)
        assert clean is True
        result = box["result"]
        ok = result.count("ok")
        assert ok > 0
        # The zero-loss guarantee: every request the server accepted
        # completed.  "refused" is the listener being closed (never
        # accepted); "transport" or "error" would be a lost request.
        assert result.count("transport") == 0
        assert result.count("error") == 0

        # The access log was flushed on drain: one access line per
        # response the client received, none lost in buffers.
        entries = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        partition_lines = [
            e
            for e in entries
            if e.get("type") == "access" and e.get("path") == "/partition"
        ]
        assert len(partition_lines) == result.responses

        # And the port really is closed.
        with pytest.raises(OSError):
            urllib.request.urlopen(srv.url + "/healthz", timeout=2)


class TestScenarioAndCli:
    def test_scenario_self_serve(self):
        payload, result = run_serving_scenario(
            duration_s=1.0,
            concurrency=2,
            mix="igmatch=0.5,fm=0.3,eig1=0.2",
            slo=parse_slo("p99=2.0,error_rate=0.01"),
            distinct=2,
            isomorphs=1,
            scale=0.1,
        )
        validate_payload(payload)
        assert payload["crosscheck"]["ok"] is True
        assert payload["slo"]["ok"] is True
        assert payload["client"]["outcomes"]["ok"] == result.count("ok")

    def test_cli_writes_reports_and_exits_zero(self, tmp_path):
        out = tmp_path / "BENCH_serving.json"
        html = tmp_path / "report.html"
        code = main(
            [
                "--self-serve",
                "--duration", "1",
                "--concurrency", "2",
                "--mix", "igmatch=0.5,fm=0.3,eig1=0.2",
                "--zipf", "1.1",
                "--slo", "p99=2.0,error_rate=0.01",
                "--distinct", "2",
                "--isomorphs", "1",
                "--scale", "0.1",
                "--output", str(out),
                "--html", str(html),
                "--quiet",
            ]
        )
        assert code == EXIT_OK
        payload = json.loads(out.read_text())
        validate_payload(payload)
        assert html.read_text().startswith("<!doctype html>")

    def test_cli_failing_slo_exits_nonzero(self, tmp_path):
        # An impossible throughput floor: the verdict machinery must
        # hard-fail it and the CLI must gate on that.
        code = main(
            [
                "--self-serve",
                "--duration", "1",
                "--concurrency", "2",
                "--mix", "fm=1",
                "--slo", "rps=1000000",
                "--distinct", "2",
                "--isomorphs", "0",
                "--scale", "0.1",
                "--output", str(tmp_path / "out.json"),
                "--quiet",
            ]
        )
        assert code == EXIT_FAILED

    def test_cli_bad_mix_is_usage_error(self, tmp_path):
        from repro.loadgen.__main__ import EXIT_USAGE

        code = main(
            [
                "--self-serve",
                "--duration", "1",
                "--mix", "quantum=1",
                "--output", str(tmp_path / "out.json"),
                "--quiet",
            ]
        )
        assert code == EXIT_USAGE

    def test_cli_unreachable_server_is_usage_error(self, tmp_path):
        from repro.loadgen.__main__ import EXIT_USAGE

        code = main(
            [
                "--url", "http://127.0.0.1:1",
                "--duration", "1",
                "--output", str(tmp_path / "out.json"),
                "--quiet",
            ]
        )
        assert code == EXIT_USAGE


class TestValidatePayload:
    def test_rejects_malformed(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="JSON object"):
            validate_payload([])
        with pytest.raises(ReproError, match="schema"):
            validate_payload({"schema": 99})
        with pytest.raises(ReproError, match="kind"):
            validate_payload({"schema": 1, "kind": "nope"})
        with pytest.raises(ReproError, match="missing key"):
            validate_payload({"schema": 1, "kind": "serving"})
