"""Tests for HypergraphBuilder."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import HypergraphBuilder


class TestModules:
    def test_add_module_returns_index(self):
        b = HypergraphBuilder()
        assert b.add_module("a") == 0
        assert b.add_module("b") == 1
        assert b.num_modules == 2

    def test_auto_names(self):
        b = HypergraphBuilder()
        b.add_module()
        assert b.build().module_name(0) == "m0"

    def test_duplicate_name_rejected(self):
        b = HypergraphBuilder()
        b.add_module("a")
        with pytest.raises(HypergraphError):
            b.add_module("a")

    def test_module_get_or_create(self):
        b = HypergraphBuilder()
        first = b.module("x")
        again = b.module("x")
        assert first == again
        assert b.num_modules == 1

    def test_module_index_lookup(self):
        b = HypergraphBuilder()
        b.add_module("a")
        assert b.module_index("a") == 0
        with pytest.raises(HypergraphError):
            b.module_index("nope")

    def test_negative_area_rejected(self):
        b = HypergraphBuilder()
        with pytest.raises(HypergraphError):
            b.add_module("a", area=-2)

    def test_set_area(self):
        b = HypergraphBuilder()
        i = b.add_module("a")
        b.set_area(i, 3.0)
        assert b.build().module_area(i) == 3.0


class TestNets:
    def test_add_net_by_indices(self):
        b = HypergraphBuilder()
        a = b.add_module()
        c = b.add_module()
        net = b.add_net([a, c], name="w")
        h = b.build()
        assert h.pins(net) == (0, 1)
        assert h.net_name(net) == "w"

    def test_net_with_undeclared_module_rejected(self):
        b = HypergraphBuilder()
        b.add_module()
        with pytest.raises(HypergraphError):
            b.add_net([0, 7])

    def test_add_net_by_names_creates_modules(self):
        b = HypergraphBuilder()
        b.add_net_by_names(["x", "y", "z"])
        assert b.num_modules == 3
        assert b.build().num_pins == 3

    def test_duplicate_net_name_rejected(self):
        b = HypergraphBuilder()
        b.add_net_by_names(["x", "y"], name="n")
        with pytest.raises(HypergraphError):
            b.add_net_by_names(["x", "y"], name="n")

    def test_connect_appends_pin(self):
        b = HypergraphBuilder()
        net = b.add_net_by_names(["x", "y"])
        z = b.module("z")
        b.connect(net, z)
        assert b.build().net_size(net) == 3

    def test_connect_bad_indices(self):
        b = HypergraphBuilder()
        b.add_net_by_names(["x", "y"])
        with pytest.raises(HypergraphError):
            b.connect(5, 0)
        with pytest.raises(HypergraphError):
            b.connect(0, 99)

    def test_build_roundtrip(self):
        b = HypergraphBuilder()
        b.add_net_by_names(["a", "b"], name="n1")
        b.add_net_by_names(["b", "c", "d"], name="n2")
        h = b.build(name="circuit")
        assert h.name == "circuit"
        assert h.num_modules == 4
        # module "b" was created second, so it has index 1
        assert h.module_name(1) == "b"
        assert h.nets_of(1) == (0, 1)
