"""Tests for Krishnamurthy lookahead gain tie-breaking in FM."""

import pytest

from repro.hypergraph import Hypergraph
from repro.partitioning import FMConfig, FMEngine, fm_bipartition
from tests.conftest import random_hypergraph


class TestLookaheadGain:
    def test_hand_computed_positive(self):
        # Net {0,1} both on side 0 with 1 free: moving 0 leaves the net
        # with exactly one side-0 pin (1, free) -> +1 second-level gain.
        h = Hypergraph([[0, 1], [2, 3]])
        engine = FMEngine(h, [0, 0, 1, 1])
        assert engine.lookahead_gain(0) == 1

    def test_hand_computed_negative(self):
        # Net {0, 2}: 0 on side 0, 2 on side 1 (single to-side pin,
        # free) -> moving 0 removes that criticality: -1.
        h = Hypergraph([[0, 2], [1, 3]])
        engine = FMEngine(h, [0, 0, 1, 1])
        assert engine.lookahead_gain(0) == -1

    def test_locked_mate_suppresses(self):
        h = Hypergraph([[0, 1], [2, 3]])
        engine = FMEngine(h, [0, 0, 1, 1])
        locked = [False, True, False, False]
        assert engine.lookahead_gain(0, locked) == 0

    def test_locked_target_suppresses(self):
        h = Hypergraph([[0, 2], [1, 3]])
        engine = FMEngine(h, [0, 0, 1, 1])
        locked = [False, False, True, False]
        assert engine.lookahead_gain(0, locked) == 0

    def test_degenerate_nets_ignored(self):
        h = Hypergraph([[0], [0, 1]], num_modules=2)
        engine = FMEngine(h, [0, 1])
        # Only net {0,1} counts; it is cut with one pin per side:
        # counts[side]==1 (not 2) and counts[other]==1 (target free).
        assert engine.lookahead_gain(0) == -1


class TestLookaheadSelection:
    def test_tie_broken_toward_future_gain(self):
        """Cells 0 and 4 tie at first-level gain; only 0 sets up a
        follow-up uncut.  Lookahead must prefer 0."""
        # Side 0: {0,1,4,6,7}; side 1: {2,3,5}.
        # cell 0: net A={0,1} internal (-1), net B={0,2} cut (+1) -> 0.
        # cell 4: net {4,5} cut (+1), net {4,6,7} internal (-1) -> 0.
        h = Hypergraph([[0, 1], [0, 2], [4, 5], [4, 6, 7]])
        engine = FMEngine(h, [0, 0, 1, 1, 0, 1, 0, 0])
        g0 = engine.gains[0]
        g4 = engine.gains[4]
        assert g0 == g4 == 0
        # second-level gains differ: moving 0 leaves net A={0,1} with a
        # single free side-0 pin (+1) and loses net B's single target
        # (-1) -> 0; moving 4 loses net {4,5}'s target (-1).
        assert engine.lookahead_gain(0) > engine.lookahead_gain(4)

    @pytest.mark.parametrize("seed", range(4))
    def test_lookahead_runs_and_is_valid(self, seed):
        h = random_hypergraph(seed, num_modules=20, num_nets=26)
        plain = fm_bipartition(h, FMConfig(seed=seed, lookahead=1))
        smart = fm_bipartition(h, FMConfig(seed=seed, lookahead=2))
        from repro.partitioning.metrics import net_cut_count

        assert smart.nets_cut == net_cut_count(
            h, list(smart.partition.sides)
        )
        assert smart.details["lookahead"] == 2
        # No universal guarantee, but both must produce legal cuts.
        assert plain.nets_cut >= 0

    def test_lookahead_quality_on_circuit(self, medium_circuit):
        plain = fm_bipartition(medium_circuit, FMConfig(seed=3))
        smart = fm_bipartition(
            medium_circuit, FMConfig(seed=3, lookahead=2)
        )
        # Loose sanity: the lookahead variant lands in the same league.
        assert smart.nets_cut <= 2 * plain.nets_cut + 5
