"""Tests for partition metrics."""

import pytest

from repro.errors import PartitionError
from repro.graph import Graph
from repro.hypergraph import Hypergraph
from repro.partitioning import (
    balance_ratio,
    cut_net_indices,
    graph_edge_cut,
    is_bisection,
    net_cut_count,
    ratio_cut_cost,
    ratio_cut_of_sides,
)


class TestNetCut:
    def test_cut_indices(self, tiny_hypergraph):
        assert cut_net_indices(tiny_hypergraph, [0, 0, 1, 1]) == [1, 2]
        assert cut_net_indices(tiny_hypergraph, [0, 0, 0, 0]) == []

    def test_empty_net_never_cut(self):
        h = Hypergraph([[], [0, 1]], num_modules=2)
        assert cut_net_indices(h, [0, 1]) == [1]

    def test_single_pin_never_cut(self):
        h = Hypergraph([[0], [0, 1]])
        assert cut_net_indices(h, [0, 1]) == [1]

    def test_count(self, tiny_hypergraph):
        assert net_cut_count(tiny_hypergraph, [0, 1, 0, 1]) == 3

    def test_length_mismatch(self, tiny_hypergraph):
        with pytest.raises(PartitionError):
            net_cut_count(tiny_hypergraph, [0, 1])


class TestRatioCut:
    def test_basic(self):
        assert ratio_cut_cost(6, 2, 3) == pytest.approx(1.0)

    def test_empty_side_infinite(self):
        assert ratio_cut_cost(0, 0, 5) == float("inf")
        assert ratio_cut_cost(3, 5, 0) == float("inf")

    def test_of_sides(self, tiny_hypergraph):
        assert ratio_cut_of_sides(tiny_hypergraph, [0, 0, 1, 1]) == (
            pytest.approx(0.5)
        )

    def test_paper_bm1_arithmetic(self):
        # Table 2: bm1, 1 net cut, areas 9:873 => 12.73e-5.
        assert ratio_cut_cost(1, 9, 873) == pytest.approx(12.73e-5, rel=1e-3)
        # IG-Match row: 21:861 => 5.53e-5.
        assert ratio_cut_cost(1, 21, 861) == pytest.approx(5.53e-5, rel=1e-3)


class TestGraphCut:
    def test_weighted_cut(self):
        g = Graph(4)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 3.0)
        g.add_edge(2, 3, 5.0)
        assert graph_edge_cut(g, [0, 0, 1, 1]) == 3.0
        assert graph_edge_cut(g, [0, 1, 0, 1]) == 10.0

    def test_length_mismatch(self):
        g = Graph(2)
        with pytest.raises(PartitionError):
            graph_edge_cut(g, [0])


class TestBalance:
    def test_balance_ratio(self):
        assert balance_ratio([0, 0, 1, 1]) == 0.5
        assert balance_ratio([0, 1, 1, 1]) == 0.25
        assert balance_ratio([]) == 0.0

    def test_is_bisection(self):
        assert is_bisection([0, 1, 0, 1])
        assert is_bisection([0, 1, 1])
        assert not is_bisection([0, 1, 1, 1])
