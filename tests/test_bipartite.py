"""Tests for the BipartiteGraph structure."""

import pytest

from repro.errors import MatchingError
from repro.matching import BipartiteGraph


class TestConstruction:
    def test_empty(self):
        b = BipartiteGraph()
        assert b.num_edges == 0
        assert b.left == set() and b.right == set()

    def test_sides(self):
        b = BipartiteGraph([1, 2], ["a"])
        assert b.side_of(1) == "L"
        assert b.side_of("a") == "R"

    def test_overlapping_sides_rejected(self):
        with pytest.raises(MatchingError):
            BipartiteGraph([1], [1])

    def test_add_vertices(self):
        b = BipartiteGraph()
        b.add_left("x")
        b.add_right("y")
        assert b.side_of("x") == "L"
        b.add_left("x")  # idempotent
        with pytest.raises(MatchingError):
            b.add_right("x")


class TestEdges:
    def test_add_edge(self):
        b = BipartiteGraph([0], [1])
        b.add_edge(0, 1)
        assert b.has_edge(0, 1)
        assert b.has_edge(1, 0)
        assert b.num_edges == 1

    def test_add_edge_idempotent(self):
        b = BipartiteGraph([0], [1])
        b.add_edge(0, 1)
        b.add_edge(0, 1)
        assert b.num_edges == 1

    def test_wrong_sides_rejected(self):
        b = BipartiteGraph([0], [1])
        with pytest.raises(MatchingError):
            b.add_edge(1, 0)  # right vertex given as left

    def test_neighbors_and_degree(self):
        b = BipartiteGraph([0, 1], [2, 3])
        b.add_edge(0, 2)
        b.add_edge(0, 3)
        assert sorted(b.neighbors(0)) == [2, 3]
        assert b.degree(0) == 2
        assert b.degree(1) == 0

    def test_unknown_vertex(self):
        b = BipartiteGraph([0], [1])
        with pytest.raises(MatchingError):
            b.degree(42)

    def test_edges_iteration(self):
        b = BipartiteGraph([0, 1], [2])
        b.add_edge(0, 2)
        b.add_edge(1, 2)
        assert sorted(b.edges()) == [(0, 2), (1, 2)]


class TestValidateMatching:
    def test_valid(self):
        b = BipartiteGraph([0], [1])
        b.add_edge(0, 1)
        b.validate_matching({0: 1, 1: 0})

    def test_asymmetric_rejected(self):
        b = BipartiteGraph([0], [1])
        b.add_edge(0, 1)
        with pytest.raises(MatchingError):
            b.validate_matching({0: 1})

    def test_non_edge_rejected(self):
        b = BipartiteGraph([0], [1])
        with pytest.raises(MatchingError):
            b.validate_matching({0: 1, 1: 0})
