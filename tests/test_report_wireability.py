"""Tests for the partition report and Rent's rule analysis."""

import pytest

from repro.analysis import RentFit, rent_analysis, rent_samples
from repro.errors import ReproError
from repro.hypergraph import Hypergraph
from repro.partitioning import ig_match, partition_report


class TestPartitionReport:
    def test_contains_headline_metrics(self, small_circuit):
        result = ig_match(small_circuit)
        text = partition_report(result)
        assert "IG-Match" in text
        assert f"nets cut:       {result.nets_cut}" in text
        assert "ratio cut:" in text
        assert "boundary modules" in text
        assert "cut histogram" in text

    def test_cut_net_listing_truncated(self, medium_circuit):
        result = ig_match(medium_circuit)
        text = partition_report(result, max_cut_nets=2)
        if result.nets_cut > 2:
            assert "more" in text

    def test_histogram_rows_cover_all_sizes(self, small_circuit):
        result = ig_match(small_circuit)
        text = partition_report(result)
        for size in sorted(set(small_circuit.net_sizes())):
            assert f"\n    {size:>4}  " in text

    def test_details_included(self, small_circuit):
        result = ig_match(small_circuit)
        text = partition_report(result)
        assert "best_rank:" in text

    def test_zero_cut_partition(self):
        # Two disjoint 2-module nets; no cut nets section.
        h = Hypergraph([[0, 1], [2, 3]])
        result = ig_match(h)
        text = partition_report(result)
        assert "nets cut:       0" in text
        assert "cut nets:" not in text


class TestRent:
    def test_samples_shape(self, medium_circuit):
        samples = rent_samples(medium_circuit, min_block=20)
        assert len(samples) >= 4
        for size, terminals in samples:
            assert 2 <= size < medium_circuit.num_modules
            assert terminals >= 0

    def test_fit_reasonable_exponent(self, medium_circuit):
        fit = rent_analysis(medium_circuit, min_block=20)
        # Physical circuits land in (0, 1); demand a sane band.
        assert 0.0 < fit.exponent < 1.2
        assert fit.prefactor > 0
        assert -1.0 <= fit.r_squared <= 1.0

    def test_prediction_monotone(self, medium_circuit):
        fit = rent_analysis(medium_circuit, min_block=20)
        assert fit.predicted_terminals(100) > fit.predicted_terminals(10)

    def test_str(self, medium_circuit):
        fit = rent_analysis(medium_circuit, min_block=20)
        assert "Rent fit" in str(fit)

    def test_too_small_circuit_raises(self):
        h = Hypergraph([[0, 1], [1, 2]])
        with pytest.raises(ReproError):
            rent_analysis(h)

    def test_custom_bipartitioner(self, medium_circuit):
        from repro.partitioning import FMConfig, fm_bipartition

        fit = rent_analysis(
            medium_circuit,
            min_block=30,
            bipartitioner=lambda h: fm_bipartition(h, FMConfig(seed=0)),
        )
        assert isinstance(fit, RentFit)
