"""Tests for the hMETIS and Bookshelf netlist formats."""

import pytest
from hypothesis import given, settings

from repro.errors import ParseError
from repro.hypergraph import (
    Hypergraph,
    dumps_bookshelf,
    dumps_hgr,
    load_bookshelf,
    load_hgr,
    loads_bookshelf,
    loads_hgr,
    save_bookshelf,
    save_hgr,
)
from tests.conftest import hypergraph_strategy


class TestHgrParsing:
    def test_plain(self):
        text = "3 4\n1 2\n2 3 4\n1 4\n"
        h = loads_hgr(text)
        assert h.num_modules == 4
        assert h.num_nets == 3
        assert h.pins(1) == (1, 2, 3)  # 1-indexed input

    def test_comments_ignored(self):
        text = "% header comment\n2 3\n% body comment\n1 2\n2 3\n"
        assert loads_hgr(text).num_nets == 2

    def test_net_weights_preserved(self):
        text = "2 3 1\n5 1 2\n7 2 3\n"
        h = loads_hgr(text)
        assert h.pins(0) == (0, 1)
        assert h.has_net_weights
        assert h.net_weights == (5.0, 7.0)

    def test_vertex_weights_become_areas(self):
        text = "1 3 10\n1 2 3\n4\n5\n6\n"
        h = loads_hgr(text)
        assert h.module_areas == (4.0, 5.0, 6.0)

    def test_fmt_11(self):
        text = "1 2 11\n9 1 2\n3\n4\n"
        h = loads_hgr(text)
        assert h.pins(0) == (0, 1)
        assert h.module_areas == (3.0, 4.0)
        assert h.net_weight(0) == 9.0

    def test_net_weight_roundtrip(self):
        from repro.hypergraph import Hypergraph, dumps_hgr

        h = Hypergraph([[0, 1], [1, 2]], net_weights=[3.0, 1.0])
        back = loads_hgr(dumps_hgr(h))
        assert back.net_weights == (3.0, 1.0)
        assert back == h

    def test_pin_out_of_range(self):
        with pytest.raises(ParseError):
            loads_hgr("1 2\n1 5\n")

    def test_pin_zero_rejected(self):
        with pytest.raises(ParseError):
            loads_hgr("1 2\n0 1\n")

    def test_wrong_line_count(self):
        with pytest.raises(ParseError):
            loads_hgr("3 4\n1 2\n")

    def test_empty_file(self):
        with pytest.raises(ParseError):
            loads_hgr("% nothing\n")

    def test_bad_fmt(self):
        with pytest.raises(ParseError):
            loads_hgr("1 2 7\n1 2\n")

    def test_non_integer_pin(self):
        with pytest.raises(ParseError):
            loads_hgr("1 2\n1 x\n")


class TestHgrRoundtrip:
    def test_file_roundtrip(self, tmp_path, small_circuit):
        path = tmp_path / "c.hgr"
        save_hgr(small_circuit, path)
        back = load_hgr(path)
        assert back == small_circuit

    def test_weighted_roundtrip(self):
        h = Hypergraph([[0, 1], [1, 2]], module_areas=[2.0, 1.0, 3.0])
        back = loads_hgr(dumps_hgr(h))
        assert back.module_areas == h.module_areas

    def test_fractional_areas_rejected_on_dump(self):
        h = Hypergraph([[0, 1]], module_areas=[1.5, 1.0])
        with pytest.raises(ParseError):
            dumps_hgr(h)

    @settings(max_examples=30, deadline=None)
    @given(hypergraph_strategy())
    def test_property_roundtrip(self, h):
        assert loads_hgr(dumps_hgr(h)) == h


NODES = """UCLA nodes 1.0
# generated
NumNodes : 3
NumTerminals : 1
    a 2 3
    b 1 1
    p0 0 0 terminal
"""

NETS = """UCLA nets 1.0
NumNets : 2
NumPins : 5
NetDegree : 3 n_clk
    a B
    b I
    p0 O
NetDegree : 2
    a B
    b B
"""


class TestBookshelfParsing:
    def test_basic(self):
        h = loads_bookshelf(NODES, NETS, name="bs")
        assert h.num_modules == 3
        assert h.num_nets == 2
        assert h.module_name(0) == "a"
        assert h.module_area(0) == 6.0  # 2 * 3
        assert h.module_area(2) == 0.0  # terminal
        assert h.net_name(0) == "n_clk"
        assert h.pins(0) == (0, 1, 2)

    def test_unnamed_net_gets_default(self):
        h = loads_bookshelf(NODES, NETS)
        assert h.net_name(1) == "net1"

    def test_missing_header(self):
        with pytest.raises(ParseError):
            loads_bookshelf("NumNodes : 1\n a 1 1\n", NETS)

    def test_unknown_node_in_net(self):
        bad = NETS.replace("    b I", "    zz I")
        with pytest.raises(ParseError):
            loads_bookshelf(NODES, bad)

    def test_wrong_pin_count(self):
        bad = NETS.replace("NumPins : 5", "NumPins : 9")
        with pytest.raises(ParseError):
            loads_bookshelf(NODES, bad)

    def test_wrong_net_count(self):
        bad = NETS.replace("NumNets : 2", "NumNets : 3")
        with pytest.raises(ParseError):
            loads_bookshelf(NODES, bad)

    def test_truncated_net_block(self):
        bad = NETS.rsplit("\n    a B", 1)[0]
        with pytest.raises(ParseError):
            loads_bookshelf(NODES, bad)

    def test_node_count_mismatch(self):
        bad = NODES.replace("NumNodes : 3", "NumNodes : 5")
        with pytest.raises(ParseError):
            loads_bookshelf(bad, NETS)


class TestBookshelfRoundtrip:
    def test_file_roundtrip(self, tmp_path, small_circuit):
        nodes = tmp_path / "c.nodes"
        nets = tmp_path / "c.nets"
        save_bookshelf(small_circuit, nodes, nets)
        back = load_bookshelf(nodes, nets)
        assert back == small_circuit
        assert back.module_name(0) == small_circuit.module_name(0)

    @settings(max_examples=30, deadline=None)
    @given(hypergraph_strategy())
    def test_property_roundtrip(self, h):
        nodes_text, nets_text = dumps_bookshelf(h)
        assert loads_bookshelf(nodes_text, nets_text) == h
