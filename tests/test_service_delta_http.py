"""``POST /partition/delta`` over a real server: warm serving, no-op
replay, 404-with-reason on unknown bases, and body validation."""

import json
import random
import threading

import pytest

from repro.delta import NetlistDelta, dumps_delta, random_delta
from repro.hypergraph import to_json
from repro.service import (
    PartitionEngine,
    canonical_result_bytes,
    create_server,
    payload_to_result,
)
from tests.conftest import random_hypergraph
from tests.test_service_http import call


@pytest.fixture
def server():
    # No result cache: every base serve computes, so sessions always
    # carry full warm-start artifacts.
    srv = create_server(engine=PartitionEngine())
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(5)


@pytest.fixture
def h():
    return random_hypergraph(5, num_modules=30, num_nets=40)


def _serve_base(server, h, algorithm="ig-match"):
    status, doc = call(
        server,
        "/partition",
        {"netlist": to_json(h), "algorithm": algorithm},
    )
    assert status == 200
    return doc


def _delta_doc(h, seed=13):
    return json.loads(dumps_delta(random_delta(h, random.Random(seed))))


NOOP = {"format": "repro-netlist-delta-v1"}


class TestDeltaServing:
    @pytest.mark.parametrize("algorithm", ["ig-match", "fm"])
    def test_warm_serve_returns_new_fingerprint(
        self, server, h, algorithm
    ):
        base = _serve_base(server, h, algorithm)
        status, doc = call(
            server,
            "/partition/delta",
            {
                "base": base["fingerprint"],
                "delta": _delta_doc(h),
                "algorithm": algorithm,
            },
        )
        assert status == 200
        assert doc["source"] == "delta-warm"
        assert doc["fingerprint"] != base["fingerprint"]
        assert doc["result"]["details"]["warm"] is True

    def test_chained_deltas_keep_serving_warm(self, server, h):
        base = _serve_base(server, h)
        fingerprint = base["fingerprint"]
        current = h
        rng = random.Random(3)
        for _ in range(3):
            delta = random_delta(current, rng)
            status, doc = call(
                server,
                "/partition/delta",
                {
                    "base": fingerprint,
                    "delta": json.loads(dumps_delta(delta)),
                    "algorithm": "ig-match",
                },
            )
            assert status == 200
            assert doc["source"] == "delta-warm"
            fingerprint = doc["fingerprint"]
            current = delta.apply(current)
        _status, metrics = call(server, "/metrics")
        assert metrics["service"]["service.delta.warm"] == 3
        assert metrics["service"]["service.delta.requests"] == 3
        assert metrics["service"]["service.session.entries"] == 4

    def test_noop_delta_replays_base_bytes(self, server, h):
        base = _serve_base(server, h)
        status, doc = call(
            server,
            "/partition/delta",
            {
                "base": base["fingerprint"],
                "delta": dict(NOOP),
                "algorithm": "ig-match",
            },
        )
        assert status == 200
        assert doc["source"] == "session"
        assert doc["cached"] is True
        assert doc["fingerprint"] == base["fingerprint"]
        assert canonical_result_bytes(
            payload_to_result(h, doc["result"])
        ) == canonical_result_bytes(
            payload_to_result(h, base["result"])
        )

    def test_delta_result_matches_cold_serve_of_edited(self, server, h):
        base = _serve_base(server, h)
        delta = random_delta(h, random.Random(29), module_churn=False)
        status, warm_doc = call(
            server,
            "/partition/delta",
            {
                "base": base["fingerprint"],
                "delta": json.loads(dumps_delta(delta)),
                "algorithm": "ig-match",
            },
        )
        assert status == 200
        edited = delta.apply(h)
        _status, cold_doc = call(
            server,
            "/partition",
            {"netlist": to_json(edited), "algorithm": "ig-match"},
        )
        assert (
            warm_doc["result"]["ratio_cut"]
            <= cold_doc["result"]["ratio_cut"]
        )
        assert warm_doc["fingerprint"] == cold_doc["fingerprint"]


class TestDeltaErrors:
    def test_unknown_base_404_with_reason(self, server):
        status, doc = call(
            server,
            "/partition/delta",
            {"base": "0" * 64, "delta": dict(NOOP)},
        )
        assert status == 404
        assert "serve the base netlist first" in doc["reason"]
        assert doc["base"] == "0" * 64
        _status, metrics = call(server, "/metrics")
        assert metrics["service"]["service.delta.base_miss"] == 1

    def test_missing_delta_field_400(self, server, h):
        base = _serve_base(server, h)
        status, doc = call(
            server, "/partition/delta", {"base": base["fingerprint"]}
        )
        assert status == 400
        assert "delta" in doc["error"]

    def test_missing_base_field_400(self, server):
        status, doc = call(
            server, "/partition/delta", {"delta": dict(NOOP)}
        )
        assert status == 400
        assert "base" in doc["error"]

    def test_unknown_field_400(self, server, h):
        base = _serve_base(server, h)
        status, doc = call(
            server,
            "/partition/delta",
            {
                "base": base["fingerprint"],
                "delta": dict(NOOP),
                "netlist": to_json(h),
            },
        )
        assert status == 400
        assert "unknown request field" in doc["error"]

    def test_malformed_delta_document_400(self, server, h):
        base = _serve_base(server, h)
        status, doc = call(
            server,
            "/partition/delta",
            {
                "base": base["fingerprint"],
                "delta": {"format": "wrong-tag"},
            },
        )
        assert status == 400

    def test_invalid_delta_indices_400(self, server, h):
        base = _serve_base(server, h)
        bad = json.loads(
            dumps_delta(NetlistDelta(remove_nets=(10_000,)))
        )
        status, doc = call(
            server,
            "/partition/delta",
            {"base": base["fingerprint"], "delta": bad},
        )
        assert status == 400
