"""Tests for the Fiduccia–Mattheyses engine and partitioner."""

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partitioning import FMConfig, FMEngine, GainBuckets, fm_bipartition
from repro.partitioning.fm import SideBuckets
from repro.partitioning.metrics import net_cut_count
from tests.conftest import random_hypergraph


class TestGainBuckets:
    def test_insert_and_len(self):
        b = GainBuckets()
        b.insert(0, 2)
        b.insert(1, 2)
        b.insert(2, -1)
        assert len(b) == 3

    def test_best_first_iteration(self):
        b = GainBuckets()
        b.insert(0, 1)
        b.insert(1, 5)
        b.insert(2, -3)
        gains = [g for g, _ in b.iter_best_first()]
        assert gains == sorted(gains, reverse=True)
        assert gains[0] == 5

    def test_remove(self):
        b = GainBuckets()
        b.insert(0, 3)
        b.remove(0, 3)
        assert len(b) == 0
        with pytest.raises(PartitionError):
            b.remove(0, 3)

    def test_update_moves_cell(self):
        b = GainBuckets()
        b.insert(0, 1)
        new = b.update(0, 1, 3)
        assert new == 4
        assert [c for _, c in b.iter_best_first()] == [0]

    def test_update_zero_delta_noop(self):
        b = GainBuckets()
        b.insert(0, 1)
        assert b.update(0, 1, 0) == 1


class TestSideBuckets:
    def test_best_feasible_per_side(self):
        sb = SideBuckets()
        sb.insert(0, 5, 0)
        sb.insert(1, 3, 1)
        sb.insert(2, 7, 1)
        assert sb.best_feasible(0, lambda c: True) == (5, 0)
        assert sb.best_feasible(1, lambda c: True) == (7, 2)
        assert sb.best_feasible(1, lambda c: c != 2) == (3, 1)
        assert sb.best_feasible(0, lambda c: False) is None


class TestEngineGains:
    def test_initial_gains_match_definition(self):
        for seed in range(6):
            h = random_hypergraph(seed, num_modules=10, num_nets=12)
            sides = [v % 2 for v in range(h.num_modules)]
            engine = FMEngine(h, sides)
            for v in range(h.num_modules):
                flipped = list(sides)
                flipped[v] = 1 - flipped[v]
                true_gain = net_cut_count(h, sides) - net_cut_count(
                    h, flipped
                )
                assert engine.gains[v] == true_gain

    def test_gains_stay_exact_under_moves(self):
        import random

        for seed in range(6):
            h = random_hypergraph(seed + 10, num_modules=12, num_nets=14)
            rng = random.Random(seed)
            sides = [rng.randint(0, 1) for _ in range(h.num_modules)]
            engine = FMEngine(h, sides)
            for _ in range(10):
                v = rng.randrange(h.num_modules)
                engine.move(v)
                # Cross-check the cut and every gain from scratch.
                assert engine.cut == net_cut_count(h, engine.sides)
                for u in range(h.num_modules):
                    flipped = list(engine.sides)
                    flipped[u] = 1 - flipped[u]
                    expected = engine.cut - net_cut_count(h, flipped)
                    assert engine.gains[u] == expected

    def test_side_counters(self):
        h = Hypergraph([[0, 1], [1, 2]], module_areas=[1.0, 2.0, 3.0])
        engine = FMEngine(h, [0, 0, 1])
        assert engine.side_count == [2, 1]
        assert engine.side_area == [3.0, 3.0]
        engine.move(1)
        assert engine.side_count == [1, 2]
        assert engine.side_area == [1.0, 5.0]


class TestRunPass:
    def test_pass_never_worsens(self):
        for seed in range(5):
            h = random_hypergraph(seed, num_modules=16, num_nets=20)
            import random

            sides = [random.Random(seed).randint(0, 1)
                     for _ in range(h.num_modules)]
            engine = FMEngine(h, sides)
            before = engine.cut
            engine.run_pass(lambda c: True, objective="cut")
            assert engine.cut <= before

    def test_bad_objective(self, tiny_hypergraph):
        engine = FMEngine(tiny_hypergraph, [0, 0, 1, 1])
        with pytest.raises(PartitionError):
            engine.run_pass(lambda c: True, objective="nope")

    def test_pass_respects_feasibility(self, two_cluster_hypergraph):
        engine = FMEngine(two_cluster_hypergraph, [0, 1, 0, 1, 0, 1, 0, 1])
        frozen = {0, 1}
        engine.run_pass(lambda c: c not in frozen, objective="cut")
        assert engine.sides[0] == 0 and engine.sides[1] == 1


class TestFmBipartition:
    def test_finds_two_cluster_cut(self, two_cluster_hypergraph):
        result = fm_bipartition(
            two_cluster_hypergraph, FMConfig(balance_tolerance=0.0, seed=1)
        )
        assert result.nets_cut == 1
        assert sorted(result.partition.u_modules) in (
            [0, 1, 2, 3], [4, 5, 6, 7]
        )

    def test_respects_balance(self, small_circuit):
        result = fm_bipartition(
            small_circuit, FMConfig(balance_tolerance=0.05, seed=2)
        )
        total = small_circuit.num_modules
        assert abs(result.partition.u_size - total / 2) <= (
            0.05 * total + 1
        )

    def test_initial_sides_respected(self, two_cluster_hypergraph):
        result = fm_bipartition(
            two_cluster_hypergraph,
            FMConfig(balance_tolerance=0.0),
            initial_sides=[0, 0, 0, 0, 1, 1, 1, 1],
        )
        assert result.nets_cut == 1

    def test_too_few_modules(self):
        with pytest.raises(PartitionError):
            fm_bipartition(Hypergraph([], num_modules=1))

    def test_deterministic_given_seed(self, small_circuit):
        a = fm_bipartition(small_circuit, FMConfig(seed=9))
        b = fm_bipartition(small_circuit, FMConfig(seed=9))
        assert a.partition.sides == b.partition.sides

    def test_zero_area_pads_cannot_empty_a_side(self):
        # Regression: area-based balance alone lets zero-area pads
        # drain one side completely.
        h = Hypergraph(
            [[0, 3], [1, 3], [2, 4], [3, 4]],
            module_areas=[0.0, 0.0, 0.0, 1.0, 1.0],
        )
        for seed in range(5):
            result = fm_bipartition(h, FMConfig(seed=seed))
            assert result.partition.u_size >= 1
            assert result.partition.w_size >= 1
