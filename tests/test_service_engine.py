"""Serving equivalence: engine results are byte-identical to direct calls.

The contract under test is the service's reason to exist: for every
partitioner, the result served through :class:`PartitionEngine` — cold,
cached (memory or disk), or joined onto an in-flight duplicate — has
deterministic fields byte-identical to the direct library call with the
same seed (:func:`canonical_result_bytes`).
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import ReproError
from repro.service import (
    ALGORITHMS,
    PartitionEngine,
    PartitionRequest,
    ResultCache,
    canonical_result_bytes,
    payload_to_result,
    result_to_payload,
    run_partitioner,
)
from tests.conftest import random_hypergraph
from tests.strategies import partitionable_hypergraphs


@pytest.fixture
def h():
    return random_hypergraph(2, num_modules=16, num_nets=20)


def memory_engine():
    return PartitionEngine(cache=ResultCache(use_disk=False))


class TestServedEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_cold_and_cached_match_direct_call(self, h, algorithm):
        request = PartitionRequest(algorithm, seed=3)
        direct = canonical_result_bytes(run_partitioner(h, request))
        engine = memory_engine()
        cold = engine.partition(h, request)
        warm = engine.partition(h, request)
        assert not cold.cached and warm.cached
        assert canonical_result_bytes(cold.result) == direct
        assert canonical_result_bytes(warm.result) == direct

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_disk_tier_round_trip_matches(self, h, tmp_path, algorithm):
        request = PartitionRequest(algorithm, seed=1)
        direct = canonical_result_bytes(run_partitioner(h, request))
        writer = PartitionEngine(cache=ResultCache(disk_dir=tmp_path))
        writer.partition(h, request)
        # A fresh engine with an empty memory tier must hit the disk
        # entry and reproduce the exact same bytes.
        reader = PartitionEngine(cache=ResultCache(disk_dir=tmp_path))
        served = reader.partition(h, request)
        assert served.cached and served.source == "disk"
        assert canonical_result_bytes(served.result) == direct

    @settings(max_examples=15, deadline=None)
    @given(
        partitionable_hypergraphs(),
        st.sampled_from(["ig-match", "fm", "kl", "eig1"]),
        st.integers(0, 1000),
    )
    def test_property_served_equals_direct(self, h, algorithm, seed):
        request = PartitionRequest(algorithm, seed=seed)
        try:
            direct = run_partitioner(h, request)
        except ReproError:
            # Degenerate instances some algorithms reject: the engine
            # must surface the same error, not cache a bad answer.
            engine = memory_engine()
            with pytest.raises(ReproError):
                engine.partition(h, request)
            return
        engine = memory_engine()
        cold = engine.partition(h, request)
        warm = engine.partition(h, request)
        expected = canonical_result_bytes(direct)
        assert canonical_result_bytes(cold.result) == expected
        assert canonical_result_bytes(warm.result) == expected

    def test_payload_round_trip(self, h):
        request = PartitionRequest("ig-match", seed=0)
        result = run_partitioner(h, request)
        rebuilt = payload_to_result(h, result_to_payload(result))
        assert rebuilt.partition.sides == result.partition.sides
        assert rebuilt.nets_cut == result.nets_cut
        assert rebuilt.algorithm == result.algorithm

    def test_payload_schema_guard(self, h):
        request = PartitionRequest("ig-match", seed=0)
        payload = result_to_payload(run_partitioner(h, request))
        payload["schema"] = 999
        with pytest.raises(ReproError, match="schema"):
            payload_to_result(h, payload)


class TestCacheBehaviour:
    def test_use_cache_false_always_computes(self, h):
        engine = memory_engine()
        request = PartitionRequest("fm", seed=0)
        for _ in range(3):
            served = engine.partition(h, request, use_cache=False)
            assert not served.cached
        assert engine.stats["service.computed"] == 3
        assert engine.stats["service.cache.hit"] == 0

    def test_no_cache_engine_computes(self, h):
        engine = PartitionEngine(cache=None)
        request = PartitionRequest("fm", seed=0)
        engine.partition(h, request)
        served = engine.partition(h, request)
        assert not served.cached
        assert engine.stats["service.computed"] == 2

    def test_different_seeds_are_different_entries(self, h):
        engine = memory_engine()
        engine.partition(h, PartitionRequest("fm", seed=0))
        served = engine.partition(h, PartitionRequest("fm", seed=1))
        assert not served.cached

    def test_counters_one_miss_then_one_hit(self, h):
        engine = memory_engine()
        request = PartitionRequest("ig-match", seed=0)
        engine.partition(h, request)
        engine.partition(h, request)
        assert engine.stats["service.cache.miss"] == 1
        assert engine.stats["service.cache.hit"] == 1
        assert engine.stats["service.computed"] == 1
        assert engine.stats["service.requests"] == 2

    def test_cached_serve_skips_compute_phases(self, h):
        """The heart of the amortisation claim: a warm serve runs no
        intersection build, no eigensolve, no sweep — their obs spans
        are absent; only the ``service.request`` span appears."""
        from repro.bench.cache_scenario import COMPUTE_SPAN_PREFIXES

        engine = memory_engine()
        request = PartitionRequest("ig-match", seed=0)
        with obs.enabled():
            engine.partition(h, request)
            cold_phases = set(obs.flatten_totals())
        assert any(
            name.split(".")[0] in COMPUTE_SPAN_PREFIXES
            for name in cold_phases
        )
        with obs.enabled():
            served = engine.partition(h, request)
            warm_phases = set(obs.flatten_totals())
            warm_counters = obs.counters("service.")
        assert served.cached
        assert all(
            name.split(".")[0] not in COMPUTE_SPAN_PREFIXES
            for name in warm_phases
        )
        assert "service.request" in warm_phases
        assert warm_counters.get("service.cache.hit") == 1

    def test_compute_error_not_cached(self):
        # 3-module hypergraph: IG-Match needs >= 2 nets; a 1-net input
        # raises.  The error must propagate and leave no cache entry.
        from repro.hypergraph import Hypergraph

        h = Hypergraph([[0, 1, 2]])
        engine = memory_engine()
        request = PartitionRequest("ig-match", seed=0)
        with pytest.raises(ReproError):
            engine.partition(h, request)
        assert len(engine.cache.memory) == 0
        # The engine stays usable and fails the same way again.
        with pytest.raises(ReproError):
            engine.partition(h, request)


class TestThreadedSoak:
    """N workers hammering one request: exactly one compute, N-1 hits."""

    def test_duplicate_requests_compute_once(self):
        h = random_hypergraph(4, num_modules=40, num_nets=50)
        engine = memory_engine()
        request = PartitionRequest("ig-match", seed=0)
        workers = 8
        barrier = threading.Barrier(workers)
        outcomes = []
        errors = []

        def hammer():
            try:
                barrier.wait(10)
                served = engine.partition(h, request)
                outcomes.append(served)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer) for _ in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert errors == []
        assert len(outcomes) == workers
        # Exactly one computation; everyone else was served a copy.
        assert engine.stats["service.computed"] == 1
        assert engine.stats["service.cache.miss"] == 1
        assert engine.stats["service.cache.hit"] == workers - 1
        reference = canonical_result_bytes(outcomes[0].result)
        assert all(
            canonical_result_bytes(s.result) == reference
            for s in outcomes
        )
        assert sum(1 for s in outcomes if not s.cached) == 1

    def test_soak_mixed_requests(self):
        h = random_hypergraph(5, num_modules=20, num_nets=24)
        engine = memory_engine()
        requests = [
            PartitionRequest("fm", seed=s % 2) for s in range(12)
        ]
        threads = []
        errors = []

        def run(req):
            try:
                engine.partition(h, req)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        for req in requests:
            threads.append(threading.Thread(target=run, args=(req,)))
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert errors == []
        # Two distinct fingerprints -> exactly two computes, ten hits.
        assert engine.stats["service.computed"] == 2
        assert (
            engine.stats["service.cache.hit"]
            + engine.stats["service.cache.miss"]
            == 12
        )
        assert engine.stats["service.cache.hit"] == 10


class TestJobsIntegration:
    def test_submit_returns_response_document(self, h):
        engine = memory_engine()
        job = engine.submit(h, PartitionRequest("fm", seed=0))
        done = engine.scheduler.wait(job.id, timeout=30)
        assert done.status == "succeeded"
        assert done.result["result"]["nets_cut"] >= 0
        assert done.result["cached"] is False

    def test_submit_batch_dedupes(self, h):
        engine = memory_engine()
        items = [(h, PartitionRequest("fm", seed=0))] * 5 + [
            (h, PartitionRequest("fm", seed=1))
        ]
        jobs = engine.submit_batch(items)
        assert len(jobs) == 6
        # Five duplicates share one job object.
        assert len({id(j) for j in jobs[:5]}) == 1
        assert jobs[5] is not jobs[0]
        for job in jobs:
            assert engine.scheduler.wait(job.id, timeout=30).status == (
                "succeeded"
            )
        assert engine.stats["service.batch.dedup"] == 4
        assert engine.stats["service.computed"] == 2

    def test_metrics_shape(self, h):
        engine = memory_engine()
        engine.partition(h, PartitionRequest("fm", seed=0))
        doc = engine.metrics()
        assert doc["service"]["service.requests"] == 1
        assert doc["cache"]["stores"] == 1
        assert "jobs" not in doc  # scheduler never started
