"""Tests for IG-Match, the paper's primary algorithm."""

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.intersection import intersection_graph
from repro.partitioning import (
    IGMatchConfig,
    ig_match,
    ig_match_sweep,
)
from repro.spectral import spectral_ordering
from tests.conftest import random_hypergraph


class TestBasics:
    def test_two_clusters(self, two_cluster_hypergraph):
        result = ig_match(two_cluster_hypergraph)
        assert result.nets_cut == 1
        assert sorted(result.partition.u_modules) in (
            [0, 1, 2, 3], [4, 5, 6, 7]
        )

    def test_result_metadata(self, small_circuit):
        result = ig_match(small_circuit)
        assert result.algorithm == "IG-Match"
        assert result.details["splits_evaluated"] > 0
        assert 1 <= result.details["best_rank"] < small_circuit.num_nets

    def test_deterministic(self, small_circuit):
        a = ig_match(small_circuit, IGMatchConfig(seed=0))
        b = ig_match(small_circuit, IGMatchConfig(seed=0))
        assert a.partition.sides == b.partition.sides

    def test_finds_planted_partition(self, small_circuit):
        result = ig_match(small_circuit)
        # Planted: 30 modules on side U with 3 crossing nets.
        assert result.ratio_cut <= 3 / (30 * 90) * 2.0

    def test_too_few_modules(self):
        with pytest.raises(PartitionError):
            ig_match(Hypergraph([[0]], num_modules=1))

    def test_too_few_nets(self):
        with pytest.raises(PartitionError):
            ig_match(Hypergraph([[0, 1]]))

    def test_bad_stride(self, small_circuit):
        with pytest.raises(PartitionError):
            ig_match(small_circuit, IGMatchConfig(split_stride=0))


class TestTheorem5Invariant:
    """No completed partition may cut more nets than the matching size."""

    @pytest.mark.parametrize("seed", range(8))
    def test_invariant_random_hypergraphs(self, seed):
        h = random_hypergraph(seed, num_modules=14, num_nets=16)
        # check_invariants raises if any split violates Theorem 5.
        result = ig_match(h, IGMatchConfig(check_invariants=True))
        assert result.nets_cut >= 0

    def test_invariant_on_circuit(self, small_circuit):
        evaluations, partition = ig_match_sweep(
            small_circuit, IGMatchConfig(check_invariants=True)
        )
        assert partition is not None
        for e in evaluations:
            assert e.nets_cut <= e.matching_size

    def test_strict_improvement_possible(self):
        """Figure 4's phenomenon: the completed cut can be strictly
        smaller than the matching bound on some split of some netlist."""
        found_strict = False
        for seed in range(30):
            h = random_hypergraph(seed, num_modules=10, num_nets=12)
            evaluations, _ = ig_match_sweep(h, IGMatchConfig())
            if any(e.nets_cut < e.matching_size for e in evaluations):
                found_strict = True
                break
        assert found_strict


class TestOrderingControl:
    def test_explicit_order_used(self, two_cluster_hypergraph):
        h = two_cluster_hypergraph
        # Order that sweeps cluster-A nets (0..5) before cluster-B nets.
        order = list(range(h.num_nets))
        result = ig_match(h, order=order)
        assert result.nets_cut == 1

    def test_bad_order_rejected(self, small_circuit):
        with pytest.raises(PartitionError):
            ig_match(small_circuit, order=[0, 0, 1])

    def test_same_order_same_result(self, small_circuit):
        order = spectral_ordering(
            intersection_graph(small_circuit, "paper"), seed=0
        )
        a = ig_match(small_circuit, order=order)
        b = ig_match(small_circuit, order=order)
        assert a.partition.sides == b.partition.sides


class TestStride:
    def test_stride_trades_quality(self, small_circuit):
        full = ig_match(small_circuit, IGMatchConfig(split_stride=1))
        strided = ig_match(small_circuit, IGMatchConfig(split_stride=5))
        assert strided.details["splits_evaluated"] < (
            full.details["splits_evaluated"]
        )
        # Strided can only be equal or worse (it sees a subset of splits
        # of the same ordering).
        assert strided.ratio_cut >= full.ratio_cut - 1e-15


class TestRecursive:
    def test_recursive_never_worse(self, medium_circuit):
        flat = ig_match(medium_circuit, IGMatchConfig(seed=0))
        rec = ig_match(
            medium_circuit, IGMatchConfig(seed=0, recursive_depth=1)
        )
        assert rec.ratio_cut <= flat.ratio_cut + 1e-15

    def test_recursive_random_instances(self):
        for seed in range(5):
            h = random_hypergraph(seed + 3, num_modules=16, num_nets=18)
            flat = ig_match(h, IGMatchConfig())
            rec = ig_match(h, IGMatchConfig(recursive_depth=2))
            assert rec.ratio_cut <= flat.ratio_cut + 1e-15


class TestWeightings:
    @pytest.mark.parametrize(
        "weighting", ["paper", "unit", "overlap", "jaccard"]
    )
    def test_all_weightings_work(self, small_circuit, weighting):
        result = ig_match(small_circuit, IGMatchConfig(weighting=weighting))
        assert result.nets_cut >= 1

    def test_weightings_similar_quality(self, small_circuit):
        # The paper's robustness claim: results across weightings are
        # similar.  Allow a factor of 3 spread on the small circuit.
        ratios = [
            ig_match(small_circuit, IGMatchConfig(weighting=w)).ratio_cut
            for w in ("paper", "unit", "overlap", "jaccard")
        ]
        assert max(ratios) <= 3 * min(ratios)
