"""Tests for module replication."""

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partitioning import (
    Partition,
    PartitionResult,
    ig_match,
    replicate_for_cut,
    replication_cut,
)


def as_result(h, sides):
    return PartitionResult("test", Partition(h, sides))


class TestReplicationCut:
    def test_no_replication_matches_plain_cut(self, tiny_hypergraph):
        sides = [0, 0, 1, 1]
        from repro.partitioning import net_cut_count

        assert replication_cut(tiny_hypergraph, sides, set()) == (
            net_cut_count(tiny_hypergraph, sides)
        )

    def test_replicating_sole_holdout_uncuts(self):
        # net {0,1}: 0 on U, 1 on W -> cut; replicating 0 uncuts it.
        h = Hypergraph([[0, 1], [2, 3]])
        sides = [0, 1, 0, 1]
        assert replication_cut(h, sides, set()) == 2
        assert replication_cut(h, sides, {0}) == 1
        assert replication_cut(h, sides, {0, 2}) == 0

    def test_replication_does_not_help_spread_nets(self):
        # net {0,1,2} with 0,1 on U and 2 on W: replicating 0 alone
        # leaves exclusive pin 1 on U and 2 on W -> still cut.
        h = Hypergraph([[0, 1, 2]])
        sides = [0, 0, 1]
        assert replication_cut(h, sides, {0}) == 1
        assert replication_cut(h, sides, {2}) == 0

    def test_length_mismatch(self, tiny_hypergraph):
        with pytest.raises(PartitionError):
            replication_cut(tiny_hypergraph, [0, 1], set())


class TestReplicateForCut:
    def test_greedy_finds_obvious_replicas(self):
        # sides [0,1,0,1]: nets {0,1} and {2,3} are cut, {0,2} is not.
        h = Hypergraph([[0, 1], [2, 3], [0, 2]])
        result = replicate_for_cut(
            as_result(h, [0, 1, 0, 1]), max_fraction=1.0
        )
        assert result.nets_cut_before == 2
        assert result.nets_cut_after == 0
        assert result.cut_reduction == 2

    def test_budget_respected(self):
        h = Hypergraph([[i, i + 4] for i in range(4)])
        result = replicate_for_cut(
            as_result(h, [0, 0, 0, 0, 1, 1, 1, 1]),
            max_fraction=0.25,  # budget = 2 of 8 modules
        )
        assert result.modules_replicated <= 2
        assert result.nets_cut_after == result.nets_cut_before - (
            result.modules_replicated
        )

    def test_stops_when_no_gain(self, two_cluster_hypergraph):
        result = replicate_for_cut(
            ig_match(two_cluster_hypergraph), max_fraction=1.0
        )
        # The single bridge net has 1 pin per side: one replica fixes it.
        assert result.nets_cut_after == 0
        assert result.modules_replicated == 1

    def test_never_increases_cut(self, small_circuit):
        base = ig_match(small_circuit)
        result = replicate_for_cut(base, max_fraction=0.1)
        assert result.nets_cut_after <= result.nets_cut_before
        assert result.nets_cut_before == base.nets_cut

    def test_zero_budget_noop(self, small_circuit):
        base = ig_match(small_circuit)
        result = replicate_for_cut(base, max_fraction=0.0)
        assert result.modules_replicated == 0
        assert result.nets_cut_after == base.nets_cut

    def test_bad_fraction(self, small_circuit):
        with pytest.raises(PartitionError):
            replicate_for_cut(ig_match(small_circuit), max_fraction=2.0)

    def test_str(self, small_circuit):
        result = replicate_for_cut(
            ig_match(small_circuit), max_fraction=0.05
        )
        assert "replication" in str(result)
