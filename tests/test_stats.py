"""Tests for hypergraph statistics."""

from repro.hypergraph import (
    Hypergraph,
    describe,
    module_degree_histogram,
    net_size_histogram,
)


class TestHistograms:
    def test_net_size_histogram(self, tiny_hypergraph):
        assert net_size_histogram(tiny_hypergraph) == {2: 2, 3: 1}

    def test_module_degree_histogram(self, tiny_hypergraph):
        assert module_degree_histogram(tiny_hypergraph) == {1: 1, 2: 3}

    def test_histogram_sums(self, small_circuit):
        hist = net_size_histogram(small_circuit)
        assert sum(hist.values()) == small_circuit.num_nets
        assert sum(k * v for k, v in hist.items()) == small_circuit.num_pins

    def test_histogram_keys_sorted(self, small_circuit):
        keys = list(net_size_histogram(small_circuit))
        assert keys == sorted(keys)


class TestDescribe:
    def test_describe_counts(self, tiny_hypergraph):
        stats = describe(tiny_hypergraph)
        assert stats.num_modules == 4
        assert stats.num_nets == 3
        assert stats.num_pins == 7
        assert stats.max_net_size == 3
        assert stats.num_two_pin_nets == 2
        assert stats.num_large_nets == 0

    def test_describe_means(self, tiny_hypergraph):
        stats = describe(tiny_hypergraph)
        assert abs(stats.mean_net_size - 7 / 3) < 1e-12
        assert abs(stats.mean_module_degree - 7 / 4) < 1e-12

    def test_describe_empty(self):
        stats = describe(Hypergraph([]))
        assert stats.max_net_size == 0
        assert stats.mean_net_size == 0.0

    def test_describe_renders(self, small_circuit):
        text = str(describe(small_circuit))
        assert "modules" in text
        assert str(small_circuit.num_modules) in text

    def test_clique_bound_matches(self, small_circuit):
        stats = describe(small_circuit)
        assert stats.clique_nonzeros_bound == (
            small_circuit.clique_model_nonzeros()
        )
