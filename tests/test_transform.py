"""Tests for hypergraph transformations."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import (
    Hypergraph,
    drop_degenerate_nets,
    induced_subhypergraph,
    merge_modules,
    relabel_modules,
    threshold_nets,
)


class TestDropDegenerate:
    def test_removes_small_nets(self):
        h = Hypergraph([[0, 1], [2], [], [1, 2, 3]])
        out, net_map = drop_degenerate_nets(h)
        assert out.num_nets == 2
        assert net_map == [0, 3]
        assert out.num_modules == h.num_modules

    def test_noop_on_clean(self, tiny_hypergraph):
        out, net_map = drop_degenerate_nets(tiny_hypergraph)
        assert out.num_nets == 3
        assert net_map == [0, 1, 2]


class TestThreshold:
    def test_drops_large_nets(self):
        h = Hypergraph([[0, 1], [0, 1, 2, 3, 4]])
        out, net_map = threshold_nets(h, max_size=3)
        assert out.num_nets == 1
        assert net_map == [0]

    def test_bad_threshold(self, tiny_hypergraph):
        with pytest.raises(HypergraphError):
            threshold_nets(tiny_hypergraph, max_size=1)

    def test_preserves_names(self):
        h = Hypergraph(
            [[0, 1], [0, 1, 2]],
            net_names=["small", "big"],
            module_names=["a", "b", "c"],
        )
        out, _ = threshold_nets(h, max_size=2)
        assert out.net_name(0) == "small"
        assert out.module_name(2) == "c"


class TestInducedSub:
    def test_partial_nets_kept(self, tiny_hypergraph):
        # modules {1,2,3}: n0={0,1}->{1} dropped, n1={1,2,3} kept,
        # n2={0,3}->{3} dropped
        sub, module_map, net_map = induced_subhypergraph(
            tiny_hypergraph, [1, 2, 3]
        )
        assert module_map == [1, 2, 3]
        assert net_map == [1]
        assert sub.pins(0) == (0, 1, 2)

    def test_full_nets_only(self, tiny_hypergraph):
        sub, _, net_map = induced_subhypergraph(
            tiny_hypergraph, [0, 1], keep_partial_nets=False
        )
        assert net_map == [0]

    def test_bad_module(self, tiny_hypergraph):
        with pytest.raises(HypergraphError):
            induced_subhypergraph(tiny_hypergraph, [0, 99])

    def test_areas_carried(self):
        h = Hypergraph([[0, 1], [1, 2]], module_areas=[1.0, 2.0, 3.0])
        sub, _, _ = induced_subhypergraph(h, [1, 2])
        assert sub.module_areas == (2.0, 3.0)


class TestMerge:
    def test_merge_pairs(self):
        h = Hypergraph([[0, 1], [1, 2], [2, 3], [0, 3]])
        coarse, assignment = merge_modules(h, [[0, 1], [2, 3]])
        assert coarse.num_modules == 2
        assert assignment == [0, 0, 1, 1]
        # nets [0,1] and [2,3] collapse inside clusters; [1,2],[0,3] become {0,1}
        assert coarse.num_nets == 2
        assert all(coarse.pins(j) == (0, 1) for j in range(2))

    def test_areas_summed(self):
        h = Hypergraph([[0, 1], [1, 2]], module_areas=[1.0, 2.0, 4.0])
        coarse, _ = merge_modules(h, [[0, 1], [2]])
        assert coarse.module_areas == (3.0, 4.0)

    def test_incomplete_clusters_rejected(self, tiny_hypergraph):
        with pytest.raises(HypergraphError):
            merge_modules(tiny_hypergraph, [[0, 1]])

    def test_overlapping_clusters_rejected(self, tiny_hypergraph):
        with pytest.raises(HypergraphError):
            merge_modules(tiny_hypergraph, [[0, 1], [1, 2, 3]])


class TestRelabel:
    def test_relabel_roundtrip(self, tiny_hypergraph):
        order = [3, 2, 1, 0]
        out, inverse = relabel_modules(tiny_hypergraph, order)
        assert inverse == [3, 2, 1, 0]
        # n0 was {0,1} -> now {3,2} sorted (2,3)
        assert out.pins(0) == (2, 3)
        assert out.num_pins == tiny_hypergraph.num_pins

    def test_non_permutation_rejected(self, tiny_hypergraph):
        with pytest.raises(HypergraphError):
            relabel_modules(tiny_hypergraph, [0, 0, 1, 2])
