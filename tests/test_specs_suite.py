"""Tests for the benchmark specs and cached suite builder."""

import pytest

from repro.bench import (
    BENCHMARKS,
    PRIMARY2_CUT_HISTOGRAM,
    PRIMARY2_NET_SIZE_HISTOGRAM,
    PRIMARY2_NUM_NETS,
    build_circuit,
    build_suite,
    get_spec,
    planted_sides,
    spec_names,
)
from repro.hypergraph import net_size_histogram
from repro.partitioning.metrics import net_cut_count, ratio_cut_of_sides


class TestSpecs:
    def test_nine_benchmarks(self):
        assert len(BENCHMARKS) == 9
        assert spec_names() == [
            "bm1", "19ks", "Prim1", "Prim2", "Test02",
            "Test03", "Test04", "Test05", "Test06",
        ]

    def test_lookup_case_insensitive(self):
        assert get_spec("prim2").name == "Prim2"
        with pytest.raises(KeyError):
            get_spec("nope")

    def test_module_counts_match_paper(self):
        # Tables 2/3 "Number of elements" column.
        expected = {
            "bm1": 882, "19ks": 2844, "Prim1": 833, "Prim2": 3014,
            "Test02": 1663, "Test03": 1607, "Test04": 1515,
            "Test05": 2595, "Test06": 1752,
        }
        for name, modules in expected.items():
            assert get_spec(name).num_modules == modules

    def test_paper_rows_consistent(self):
        # The ratio-cut column must equal cut/(u*w) from the areas
        # column (within the paper's 3-digit rounding), for every row.
        for spec in BENCHMARKS:
            for row in (spec.paper_rcut, spec.paper_igvote,
                        spec.paper_igmatch):
                u, w = (int(x) for x in row.areas.split(":"))
                assert u + w == spec.num_modules
                expected = row.nets_cut / (u * w)
                # Test03's IG-Vote row has an obvious exponent typo in
                # the paper (8.98e-3 for 58/(803*804)); compare order-
                # agnostically via mantissa.
                ratio = row.ratio_cut / expected
                while ratio > 5:
                    ratio /= 10
                while ratio < 0.2:
                    ratio *= 10
                assert 0.98 < ratio < 1.02

    def test_planted_fraction_matches_igmatch_areas(self):
        for spec in BENCHMARKS:
            u = int(spec.paper_igmatch.areas.split(":")[0])
            assert spec.natural_u_modules == pytest.approx(u, abs=1)


class TestPrimary2Histogram:
    def test_totals(self):
        # Matches MCNC Primary2's published net count.
        assert PRIMARY2_NUM_NETS == 3029
        assert sum(PRIMARY2_CUT_HISTOGRAM.values()) == 145

    def test_cut_never_exceeds_total(self):
        for size, cut in PRIMARY2_CUT_HISTOGRAM.items():
            assert cut <= PRIMARY2_NET_SIZE_HISTOGRAM[size]

    def test_paper_non_monotonicity_present(self):
        # E.g. 8-pin nets: 14 nets, 0 cut while 7-pin: 52 nets, 12 cut.
        fractions = {
            size: PRIMARY2_CUT_HISTOGRAM[size] / count
            for size, count in PRIMARY2_NET_SIZE_HISTOGRAM.items()
        }
        assert fractions[7] > fractions[8]
        assert fractions[17] > fractions[16]


class TestSuiteBuilder:
    def test_build_circuit_cached(self):
        a = build_circuit("bm1", scale=0.1)
        b = build_circuit("bm1", scale=0.1)
        assert a is b

    def test_scale_shrinks(self):
        spec = get_spec("Prim1")
        h = build_circuit("Prim1", scale=0.2)
        assert h.num_modules == round(spec.num_modules * 0.2)

    def test_build_suite_subset(self):
        suite = build_suite(names=["bm1", "Prim1"], scale=0.1)
        assert set(suite) == {"bm1", "Prim1"}

    def test_prim2_histogram_exact_at_full_scale(self):
        h = build_circuit("Prim2", scale=1.0)
        assert net_size_histogram(h) == PRIMARY2_NET_SIZE_HISTOGRAM
        assert h.num_modules == 3014

    def test_planted_sides_quality(self):
        # The planted partition should be a good ratio cut (that is the
        # point of the construction).
        spec = get_spec("Test02")
        h = build_circuit("Test02", scale=0.25)
        sides = planted_sides(h, spec)
        ratio = ratio_cut_of_sides(h, sides)
        assert ratio < 50 / h.num_modules ** 1.5  # loose sanity bound

    def test_planted_cut_near_spec(self):
        spec = get_spec("Test05")
        h = build_circuit("Test05", scale=0.25)
        sides = planted_sides(h, spec)
        crossing = max(1, round(spec.crossing_nets * 0.25))
        cut = net_cut_count(h, sides)
        # crossing nets + noise nets + repair rewires
        noise_budget = round(spec.noise * h.num_nets) + 10
        assert crossing <= cut <= crossing + noise_budget
