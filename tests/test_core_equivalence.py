"""Cross-representation differential suite: dict core vs CSR core.

The CSR core's contract is not "close enough" — it is **bit identity**.
Every partitioner, run on the same instance with the same request, must
produce byte-identical :func:`canonical_result_bytes` and identical
deterministic observability counters whichever core is active.  This
suite enforces that contract three ways:

1. End-to-end: all 8 algorithms through :func:`run_partitioner` under
   ``use_core("dict")`` vs ``use_core("csr")``, comparing canonical
   bytes *and* the full obs counter dict (so the cores do the same
   amount of algorithmic work, not just reach the same answer).  An
   instance that raises must raise the identical error on both cores.
2. Layer-by-layer: intersection-graph construction (adjacency structure,
   bitwise edge weights, insertion order), the matcher's Dulmage–
   Mendelsohn ``classify`` under random sweeps, FM engine
   initialisation, and the Laplacian adjacency matrix.
3. Service-level: hypergraph fingerprints are core-blind, a served
   result equals a direct compute on either core, and a disk cache
   written by a dict-core engine is a hit — byte-identical — for a
   CSR-core engine.

Modeled on ``tests/test_parallel_equivalence.py`` (PR 3), which plays
the same role for the parallel execution backends.
"""

from __future__ import annotations

import random
import struct

import pytest
from hypothesis import given, settings

from repro import obs
from repro.core import use_core
from repro.errors import ReproError
from repro.graph import Graph
from repro.graph.laplacian import adjacency_matrix, laplacian_matrix
from repro.hypergraph import Hypergraph
from repro.intersection import intersection_graph
from repro.matching.incremental import IncrementalMatching
from repro.partitioning.fm import FMEngine
from repro.service import (
    PartitionEngine,
    PartitionRequest,
    ResultCache,
    canonical_result_bytes,
    run_partitioner,
)
from repro.service.engine import ALGORITHMS
from repro.service.fingerprint import canonical_fingerprint, exact_fingerprint
from tests.conftest import random_hypergraph
from tests.strategies import hypergraphs, partitionable_hypergraphs

WEIGHTINGS = ("unit", "overlap", "jaccard", "paper")


def run_one(core, h, request):
    """One full run under ``core``: (outcome, counters).

    ``outcome`` is the canonical result bytes on success, or an
    ``("error", type-name, message)`` triple when the instance is
    infeasible — identical errors are equivalent behaviour.  Counters
    are the complete deterministic obs tally for the run.
    """
    with obs.isolated() as state:
        obs.enable()
        try:
            with use_core(core):
                result = run_partitioner(h, request)
            outcome = canonical_result_bytes(result)
        except ReproError as exc:
            outcome = ("error", type(exc).__name__, str(exc))
        finally:
            obs.disable()
        return outcome, dict(state.counters)


def graph_signature(g: Graph) -> list:
    """Insertion-ordered adjacency with bitwise-exact weights."""
    return [
        (v, [(u, struct.pack("<d", w)) for u, w in nbrs.items()])
        for v, nbrs in enumerate(g._adj)
    ]


# ----------------------------------------------------------------------
# 1. End-to-end: every algorithm, dict == csr
# ----------------------------------------------------------------------
class TestEndToEnd:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_algorithms_bit_identical(self, algorithm):
        for seed in range(6):
            h = random_hypergraph(seed, num_modules=14, num_nets=18)
            request = PartitionRequest(
                algorithm=algorithm, seed=seed, restarts=2, starts=2
            )
            d_out, d_counters = run_one("dict", h, request)
            c_out, c_counters = run_one("csr", h, request)
            assert d_out == c_out, (
                f"{algorithm} seed={seed}: results diverge across cores"
            )
            assert d_counters == c_counters, (
                f"{algorithm} seed={seed}: obs counters diverge"
            )

    @pytest.mark.parametrize("algorithm", ("ig-match", "fm", "multilevel"))
    @settings(max_examples=20, deadline=None)
    @given(h=partitionable_hypergraphs(max_modules=16, max_nets=20))
    def test_fuzzed_instances_bit_identical(self, algorithm, h):
        request = PartitionRequest(algorithm=algorithm, seed=3, restarts=1)
        d_out, d_counters = run_one("dict", h, request)
        c_out, c_counters = run_one("csr", h, request)
        assert d_out == c_out
        assert d_counters == c_counters

    def test_split_stride_and_restarts_respected_on_both_cores(self):
        h = random_hypergraph(9, num_modules=16, num_nets=20)
        for request in (
            PartitionRequest("ig-match", seed=1, split_stride=3),
            PartitionRequest("fm", seed=4, restarts=5),
            PartitionRequest("ig-vote", seed=2, starts=3),
        ):
            assert run_one("dict", h, request) == run_one("csr", h, request)


# ----------------------------------------------------------------------
# 2. Layer-by-layer
# ----------------------------------------------------------------------
class TestIntersectionLayer:
    @pytest.mark.parametrize("weighting", WEIGHTINGS)
    @settings(max_examples=40, deadline=None)
    @given(
        h=hypergraphs(
            max_modules=12,
            max_nets=15,
            allow_empty_nets=True,
            allow_singleton_modules=True,
        )
    )
    def test_graph_identical_including_order(self, weighting, h):
        with use_core("dict"):
            gd = intersection_graph(h, weighting)
        with use_core("csr"):
            gc = intersection_graph(h, weighting)
        assert graph_signature(gd) == graph_signature(gc)
        assert struct.pack("<d", gd.total_weight) == struct.pack(
            "<d", gc.total_weight
        )

    def test_csr_build_installs_matching_adjacency_cache(self):
        h = random_hypergraph(5, num_modules=12, num_nets=16)
        with use_core("csr"):
            g = intersection_graph(h, "paper")
        assert g._csr_cache is not None
        cached = tuple(arr.tolist() for arr in g._csr_cache)
        g._csr_cache = None
        rebuilt = tuple(arr.tolist() for arr in g.csr_arrays())
        assert cached == rebuilt


class TestSpectralLayer:
    def test_adjacency_and_laplacian_identical(self):
        h = random_hypergraph(2, num_modules=14, num_nets=18)
        with use_core("dict"):
            g = intersection_graph(h, "paper")
            ad = adjacency_matrix(g)
            ld = laplacian_matrix(g)
        with use_core("csr"):
            g2 = intersection_graph(h, "paper")
            ac = adjacency_matrix(g2)
            lc = laplacian_matrix(g2)
        for dense, csr in ((ad, ac), (ld, lc)):
            assert (dense != csr).nnz == 0
            assert dense.indptr.tolist() == csr.indptr.tolist()
            assert dense.indices.tolist() == csr.indices.tolist()
            assert [struct.pack("<d", x) for x in dense.data] == [
                struct.pack("<d", x) for x in csr.data
            ]


class TestMatchingLayer:
    @settings(max_examples=30, deadline=None)
    @given(h=hypergraphs(max_modules=12, max_nets=15))
    def test_classify_identical_under_random_sweeps(self, h):
        g = intersection_graph(h, "paper")
        n = g.num_vertices
        order = list(range(n))
        random.Random(7).shuffle(order)
        with use_core("dict"):
            md = IncrementalMatching(g)
        with use_core("csr"):
            mc = IncrementalMatching(g)
        for v in order:
            with use_core("dict"):
                md.move_to_right(v)
                codes_d = md.classify()
            with use_core("csr"):
                mc.move_to_right(v)
                codes_c = mc.classify()
            assert codes_d == codes_c
        assert (md.augmentations, md.augmentation_attempts, md.search_visits) \
            == (mc.augmentations, mc.augmentation_attempts, mc.search_visits)


class TestFMLayer:
    @settings(max_examples=40, deadline=None)
    @given(
        h=hypergraphs(
            max_modules=14,
            max_nets=18,
            allow_empty_nets=True,
            allow_singleton_modules=True,
        )
    )
    def test_engine_init_identical(self, h):
        sides = [v % 2 for v in range(h.num_modules)]
        with use_core("dict"):
            ed = FMEngine(h, sides)
        with use_core("csr"):
            ec = FMEngine(h, sides)
        assert ed.pin_count == ec.pin_count
        assert ed.cut == ec.cut
        assert ed.gains == ec.gains
        assert ed.side_count == ec.side_count
        assert [struct.pack("<d", a) for a in ed.side_area] == [
            struct.pack("<d", a) for a in ec.side_area
        ]


# ----------------------------------------------------------------------
# 3. Service level: fingerprints, engines, and the shared disk cache
# ----------------------------------------------------------------------
class TestServiceLevel:
    def test_fingerprints_are_core_blind(self):
        h = random_hypergraph(11, num_modules=13, num_nets=17)
        with use_core("dict"):
            exact_d = exact_fingerprint(h)
            canon_d = canonical_fingerprint(h)
        with use_core("csr"):
            exact_c = exact_fingerprint(h)
            canon_c = canonical_fingerprint(h)
        assert exact_d == exact_c
        assert canon_d == canon_c

    @pytest.mark.parametrize("core", ("dict", "csr"))
    def test_served_equals_direct(self, core):
        h = random_hypergraph(4, num_modules=13, num_nets=16)
        request = PartitionRequest("ig-match", seed=2, restarts=2)
        engine = PartitionEngine(cache=None, core=core)
        served = engine.partition(h, request)
        direct = run_partitioner(h, request, core=core)
        assert canonical_result_bytes(served.result) == \
            canonical_result_bytes(direct)
        assert served.source == "computed"
        assert not served.cached

    def test_dict_written_disk_cache_hits_for_csr_engine(self, tmp_path):
        h = random_hypergraph(8, num_modules=14, num_nets=18)
        request = PartitionRequest("ig-match", seed=5, restarts=2)

        writer = PartitionEngine(
            cache=ResultCache(disk_dir=tmp_path), core="dict"
        )
        first = writer.partition(h, request)
        assert first.source == "computed"

        # A fresh engine (cold memory tier) on the other core, same
        # disk directory: the entry must be a hit, because the core
        # never enters the cache fingerprint.
        reader = PartitionEngine(
            cache=ResultCache(disk_dir=tmp_path), core="csr"
        )
        second = reader.partition(h, request)
        assert second.cached
        assert second.source == "disk"
        assert second.fingerprint == first.fingerprint
        assert canonical_result_bytes(second.result) == \
            canonical_result_bytes(first.result)
        assert reader.cache.stats["disk_hits"] == 1

    def test_csr_written_disk_cache_hits_for_dict_engine(self, tmp_path):
        h = random_hypergraph(12, num_modules=12, num_nets=15)
        request = PartitionRequest("fm", seed=6, restarts=3)
        writer = PartitionEngine(
            cache=ResultCache(disk_dir=tmp_path), core="csr"
        )
        first = writer.partition(h, request)
        reader = PartitionEngine(
            cache=ResultCache(disk_dir=tmp_path), core="dict"
        )
        second = reader.partition(h, request)
        assert second.source == "disk"
        assert canonical_result_bytes(second.result) == \
            canonical_result_bytes(first.result)
