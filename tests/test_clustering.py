"""Tests for coarsening and the multilevel hybrid partitioner."""

import pytest

from repro.clustering import (
    MultilevelConfig,
    coarsen,
    heavy_edge_matching,
    multilevel_partition,
)
from repro.errors import PartitionError, ReproError
from repro.hypergraph import Hypergraph


class TestHeavyEdgeMatching:
    def test_covers_all_modules(self, small_circuit):
        clusters = heavy_edge_matching(small_circuit)
        flattened = sorted(v for c in clusters for v in c)
        assert flattened == list(range(small_circuit.num_modules))

    def test_clusters_at_most_pairs(self, small_circuit):
        clusters = heavy_edge_matching(small_circuit)
        assert all(1 <= len(c) <= 2 for c in clusters)

    def test_pairs_are_adjacent(self, small_circuit):
        from repro.netmodels import get_model

        g = get_model("clique").to_graph(small_circuit)
        for cluster in heavy_edge_matching(small_circuit):
            if len(cluster) == 2:
                assert g.has_edge(cluster[0], cluster[1])

    def test_prefers_heavy_edges(self):
        # The only edges are a double-weight (0,1) and a unit (2,3):
        # every visitation order must pair {0,1} and {2,3}.
        h = Hypergraph([[0, 1], [0, 1], [2, 3]])
        for seed in range(4):
            clusters = heavy_edge_matching(h, seed=seed)
            pairs = sorted(sorted(c) for c in clusters if len(c) == 2)
            assert pairs == [[0, 1], [2, 3]]

    def test_deterministic(self, small_circuit):
        a = heavy_edge_matching(small_circuit, seed=5)
        b = heavy_edge_matching(small_circuit, seed=5)
        assert a == b


class TestCoarsen:
    def test_reaches_target(self, medium_circuit):
        levels = coarsen(medium_circuit, target_modules=50)
        assert levels
        assert levels[-1].coarse.num_modules <= max(
            50, 0.95 * levels[-1].fine.num_modules
        )

    def test_hierarchy_consistent(self, medium_circuit):
        levels = coarsen(medium_circuit, target_modules=60)
        for level in levels:
            assert len(level.assignment) == level.fine.num_modules
            assert max(level.assignment) == level.coarse.num_modules - 1
            # Areas are conserved through merging.
            assert level.coarse.total_area == pytest.approx(
                level.fine.total_area
            )

    def test_already_small_enough(self, small_circuit):
        levels = coarsen(small_circuit, target_modules=1000)
        assert levels == []

    def test_bad_target(self, small_circuit):
        with pytest.raises(ReproError):
            coarsen(small_circuit, target_modules=1)

    def test_halving_rate(self, medium_circuit):
        levels = coarsen(medium_circuit, target_modules=40)
        for level in levels:
            assert level.coarse.num_modules >= (
                level.fine.num_modules // 2
            )


class TestMultilevel:
    def test_two_clusters(self, two_cluster_hypergraph):
        result = multilevel_partition(
            two_cluster_hypergraph, MultilevelConfig(target_modules=4)
        )
        assert result.nets_cut == 1

    def test_quality_near_flat(self, medium_circuit):
        from repro.partitioning import ig_match

        flat = ig_match(medium_circuit)
        hybrid = multilevel_partition(
            medium_circuit, MultilevelConfig(target_modules=80)
        )
        # The hybrid is a heuristic; demand it lands within 4x of flat.
        assert hybrid.ratio_cut <= 4 * flat.ratio_cut + 1e-9

    def test_details(self, medium_circuit):
        result = multilevel_partition(
            medium_circuit, MultilevelConfig(target_modules=80)
        )
        assert result.algorithm == "Multilevel"
        assert result.details["levels"] >= 1
        assert result.details["coarsest_modules"] <= (
            medium_circuit.num_modules
        )

    def test_custom_core(self, medium_circuit):
        from repro.partitioning import FMConfig, fm_bipartition

        result = multilevel_partition(
            medium_circuit,
            MultilevelConfig(target_modules=60),
            bipartitioner=lambda h: fm_bipartition(h, FMConfig(seed=0)),
        )
        assert result.details["core_algorithm"] == "FM"

    def test_too_small(self):
        with pytest.raises(PartitionError):
            multilevel_partition(Hypergraph([[0]], num_modules=1))

    def test_no_refinement_mode(self, medium_circuit):
        result = multilevel_partition(
            medium_circuit,
            MultilevelConfig(target_modules=80, refine_rounds=0),
        )
        assert result.partition.u_size >= 1
