"""Tests for the observability layer (:mod:`repro.obs`)."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.hypergraph import save_net
from tests.conftest import random_hypergraph


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with instrumentation fully off."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpans:
    def test_spans_nest(self):
        obs.enable()
        with obs.span("outer", label="a"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        roots = obs.STATE.roots
        assert [n.name for n in roots] == ["outer"]
        assert [n.name for n in roots[0].children] == ["inner", "inner"]
        assert roots[0].attrs["label"] == "a"
        assert roots[0].seconds >= 0.0

    def test_span_events_carry_depth(self):
        sink = obs.MemorySink()
        obs.enable(sink=sink)
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = [e for e in sink.events if e["type"] == "span"]
        # Inner closes first at depth 1, outer last at depth 0.
        assert [(e["name"], e["depth"]) for e in spans] == [
            ("inner", 1),
            ("outer", 0),
        ]

    def test_set_attaches_attrs(self):
        obs.enable()
        with obs.span("phase") as sp:
            sp.set(iterations=7)
        assert obs.STATE.roots[0].attrs["iterations"] == 7

    def test_add_timing_files_aggregate_under_open_span(self):
        obs.enable()
        with obs.span("sweep"):
            obs.add_timing("sweep.inner", 0.5, count=10, items=3)
        node = obs.STATE.roots[0].children[0]
        assert node.name == "sweep.inner"
        assert node.seconds == 0.5
        assert node.count == 10

    def test_span_records_exception(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        assert obs.STATE.roots[0].attrs["error"] == "ValueError"
        assert not obs.STATE.stack


class TestCounters:
    def test_incr_and_gauge(self):
        obs.enable()
        obs.incr("a", 2)
        obs.incr("a")
        obs.gauge("b", 9)
        obs.gauge("b", 4)
        assert obs.counters() == {"a": 3, "b": 4}

    def test_counters_reset_between_runs(self):
        obs.enable()
        obs.incr("a", 5)
        obs.disable()
        obs.enable()  # a fresh session must not inherit counters
        assert obs.counters() == {}
        obs.incr("a")
        assert obs.counters() == {"a": 1}

    def test_reset_counters_only(self):
        obs.enable()
        with obs.span("phase"):
            obs.incr("a")
        obs.reset_counters()
        assert obs.counters() == {}
        assert obs.STATE.roots  # spans survive a counter reset

    def test_gauges_slices_out_gauge_subset(self):
        obs.enable()
        obs.incr("service.requests", 3)
        obs.gauge("service.queue.depth", 7)
        obs.gauge("pool.size", 2)
        assert obs.gauges() == {"pool.size": 2, "service.queue.depth": 7}
        assert obs.gauges(prefix="service.") == {"service.queue.depth": 7}
        # counters() still sees everything, same as before.
        assert obs.counters(prefix="service.") == {
            "service.queue.depth": 7,
            "service.requests": 3,
        }

    def test_gauges_last_write_wins_even_after_incr(self):
        obs.enable()
        obs.incr("x", 5)
        obs.gauge("x", 1)  # re-recorded as a gauge
        assert obs.gauges() == {"x": 1}

    def test_gauges_cleared_by_reset_counters(self):
        obs.enable()
        obs.gauge("g", 1)
        obs.reset_counters()
        assert obs.gauges() == {}
        obs.incr("g")  # same name, now a plain counter
        assert obs.gauges() == {}
        assert obs.counters() == {"g": 1}


class TestEnabledContext:
    def test_scopes_instrumentation(self):
        with obs.enabled() as state:
            assert state is obs.current_state()
            assert obs.is_enabled()
            obs.incr("a")
        assert not obs.is_enabled()
        assert obs.counters() == {"a": 1}  # data readable after exit

    def test_disables_on_exception(self):
        sink = obs.MemorySink()
        with pytest.raises(RuntimeError):
            with obs.enabled(sink=sink):
                obs.incr("a")
                raise RuntimeError("boom")
        assert not obs.is_enabled()
        assert sink.closed
        # The final counters event was still flushed on the way out.
        assert sink.events[-1]["type"] == "counters"
        assert sink.events[-1]["values"] == {"a": 1}


class TestDisabledMode:
    def test_disabled_emits_and_collects_nothing(self):
        sink = obs.MemorySink()
        obs.STATE.sinks.append(sink)  # sink present but switch off
        with obs.span("phase") as sp:
            sp.set(x=1)
        obs.incr("a")
        obs.gauge("b", 2)
        obs.add_timing("agg", 1.0)
        obs.emit("point", x=1)
        assert sink.events == []
        assert obs.STATE.roots == []
        assert obs.counters() == {}

    def test_disabled_span_is_shared_noop(self):
        assert obs.span("x") is obs.span("y")


class TestJsonLines:
    def test_trace_round_trips_through_json_loads(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs.enable(sink=obs.JsonLinesSink(path))
        with obs.span("phase", n=3):
            obs.emit("observation", value=1.5)
            obs.incr("counter.total", 4)
        obs.disable()
        lines = path.read_text().strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["type"] for e in events] == ["point", "span", "counters"]
        assert events[0] == {
            "type": "point",
            "name": "observation",
            "value": 1.5,
            "seq": 1,
        }
        assert events[1]["name"] == "phase"
        assert events[1]["n"] == 3
        assert events[2]["values"] == {"counter.total": 4}

    def test_disable_closes_sink(self, tmp_path):
        sink = obs.JsonLinesSink(tmp_path / "t.jsonl")
        obs.enable(sink=sink)
        obs.disable()
        assert sink._file.closed


class TestReport:
    def test_phase_report_merges_siblings_and_lists_counters(self):
        obs.enable()
        with obs.span("run"):
            obs.add_timing("level", 0.25, count=1, modules=10)
            obs.add_timing("level", 0.75, count=1, modules=20)
        obs.incr("work.items", 30)
        report = obs.phase_report()
        assert "run" in report
        assert "×2" in report
        assert "modules=30" in report  # numeric attrs sum on merge
        assert "work.items" in report

    def test_flatten_totals(self):
        obs.enable()
        with obs.span("a"):
            obs.add_timing("b", 0.5, count=2)
        with obs.span("a"):
            pass
        totals = obs.flatten_totals()
        assert totals["a"][1] == 2
        assert totals["b"] == (0.5, 2)

    def test_empty_report(self):
        obs.enable()
        assert "no observability data" in obs.phase_report()


class TestPipelineInstrumentation:
    def test_igmatch_populates_spans_and_counters(self):
        from repro import ig_match

        h = random_hypergraph(3, num_modules=40, num_nets=44)
        sink = obs.MemorySink()
        obs.enable(sink=sink)
        ig_match(h)
        totals = obs.flatten_totals()
        for name in (
            "igmatch",
            "intersection.build",
            "igmatch.sweep",
            "igmatch.matching",
            "igmatch.completion",
            "igmatch.refinement",
        ):
            assert name in totals, name
        counters = obs.counters()
        assert counters["igmatch.splits_evaluated"] > 0
        assert counters["matching.augmentations"] > 0
        sweep_events = [
            e for e in sink.events
            if e["type"] == "point" and e["name"] == "igmatch.sweep"
        ]
        assert sweep_events and "augmentations" in sweep_events[0]

    def test_lanczos_backend_reports_iterations(self):
        from repro import ig_match, IGMatchConfig

        h = random_hypergraph(4, num_modules=40, num_nets=44)
        sink = obs.MemorySink()
        obs.enable(sink=sink)
        ig_match(h, IGMatchConfig(backend="lanczos"))
        lanczos = [
            e for e in sink.events
            if e["type"] == "point" and e["name"] == "spectral.lanczos"
        ]
        assert lanczos and lanczos[0]["iterations"] > 0
        assert obs.counters()["lanczos.iterations"] > 0

    def test_instrumentation_does_not_change_results(self):
        from repro import ig_match

        h = random_hypergraph(5, num_modules=50, num_nets=55)
        baseline = ig_match(h)
        with obs.enabled():
            observed = ig_match(h)
        assert observed.partition.sides == baseline.partition.sides
        assert observed.nets_cut == baseline.nets_cut

    def test_lanczos_convergence_curve(self):
        from repro import ig_match, IGMatchConfig

        h = random_hypergraph(8, num_modules=40, num_nets=44)
        sink = obs.MemorySink()
        with obs.enabled(sink=sink):
            ig_match(h, IGMatchConfig(backend="lanczos"))
        curves = [
            e for e in sink.events
            if e.get("name") == "spectral.lanczos.convergence"
        ]
        assert curves
        curve = curves[0]
        assert len(curve["steps"]) == len(curve["residuals"])
        assert curve["steps"] == sorted(curve["steps"])
        # Residuals decay towards the converged solve's tolerance.
        assert curve["residuals"][-1] <= curve["residuals"][0]

    def test_igmatch_curve_matches_sweep(self):
        from repro import ig_match

        h = random_hypergraph(9, num_modules=40, num_nets=44)
        sink = obs.MemorySink()
        with obs.enabled(sink=sink):
            result = ig_match(h)
        curves = [
            e for e in sink.events if e.get("name") == "igmatch.curve"
        ]
        assert curves
        curve = curves[0]
        assert len(curve["ranks"]) == len(curve["ratio_cuts"])
        best_i = curve["ratio_cuts"].index(min(curve["ratio_cuts"]))
        assert curve["ranks"][best_i] == result.details["best_rank"]

    def test_splits_curve_event(self):
        from repro import eig1

        h = random_hypergraph(10, num_modules=36, num_nets=40)
        sink = obs.MemorySink()
        with obs.enabled(sink=sink):
            eig1(h)
        curves = [
            e for e in sink.events if e.get("name") == "splits.curve"
        ]
        assert curves
        curve = curves[0]
        assert len(curve["ranks"]) == h.num_modules - 1
        best_i = curve["ratio_cuts"].index(min(curve["ratio_cuts"]))
        assert curve["ranks"][best_i] == curve["best_rank"]

    def test_fm_curve_event(self):
        from repro import fm_bipartition

        h = random_hypergraph(11, num_modules=40, num_nets=44)
        sink = obs.MemorySink()
        with obs.enabled(sink=sink):
            fm_bipartition(h)
        curves = [
            e for e in sink.events if e.get("name") == "fm.curve"
        ]
        assert curves
        curve = curves[0]
        assert curve["cuts"][0] == curve["cut_initial"]
        assert len(curve["passes"]) == len(curve["cuts"])
        # FM never ends a pass loop worse than it started.
        assert curve["cuts"][-1] <= curve["cuts"][0]

    def test_fm_pass_events(self):
        from repro import fm_bipartition

        h = random_hypergraph(6, num_modules=40, num_nets=44)
        sink = obs.MemorySink()
        obs.enable(sink=sink)
        fm_bipartition(h)
        passes = [
            e for e in sink.events
            if e["type"] == "point" and e["name"] == "fm.pass"
        ]
        assert passes
        assert all(
            e["kept"] <= e["moved"] and "cut_after" in e for e in passes
        )
        assert obs.counters()["fm.passes"] == len(passes)


class TestCliFlags:
    @pytest.fixture
    def netlist_file(self, tmp_path):
        h = random_hypergraph(7, num_modules=30, num_nets=34)
        path = tmp_path / "circuit.net"
        save_net(h, path)
        return path

    def test_profile_prints_phase_tree(self, netlist_file, capsys):
        assert main([str(netlist_file), "--profile"]) == 0
        err = capsys.readouterr().err
        assert "phase tree" in err
        assert "intersection.build" in err
        assert "spectral.lanczos" in err
        assert "igmatch.sweep" in err
        assert "igmatch.completion" in err
        assert "igmatch.refinement" in err
        assert "counters:" in err
        assert "matching.augmentations" in err

    def test_trace_json_end_to_end(self, netlist_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(
            [str(netlist_file), "--trace-json", str(trace)]
        ) == 0
        events = [
            json.loads(line)
            for line in trace.read_text().strip().splitlines()
        ]
        assert events, "trace must not be empty"
        names = {e.get("name") for e in events}
        assert "spectral.lanczos" in names
        assert "igmatch.sweep" in names
        lanczos = next(
            e for e in events if e.get("name") == "spectral.lanczos"
            and e["type"] == "point"
        )
        assert lanczos["iterations"] > 0
        final = events[-1]
        assert final["type"] == "counters"
        assert final["values"]["matching.augmentations"] > 0

    def test_profile_on_generated_circuit(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(
            [
                "--generate", "bm1", "--scale", "0.1",
                "--profile", "--trace-json", str(trace),
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "phase tree" in err
        assert trace.exists()

    def test_trace_html_report(self, netlist_file, tmp_path, capsys):
        out = tmp_path / "trace.html"
        assert main([str(netlist_file), "--trace-html", str(out)]) == 0
        assert "wrote trace report" in capsys.readouterr().err
        html = out.read_text()
        assert 'class="frow"' in html  # phase-tree flame view
        assert "igmatch" in html
        assert "<svg" in html  # igmatch.curve convergence chart
        assert not obs.is_enabled()

    def test_obs_disabled_after_cli_run(self, netlist_file, capsys):
        assert main([str(netlist_file), "--profile"]) == 0
        assert not obs.is_enabled()


class TestObservedSuite:
    def test_run_observed_suite_payload_and_file(self, tmp_path):
        from repro.bench import run_observed_suite

        out = tmp_path / "BENCH_obs.json"
        payload = run_observed_suite(
            names=["bm1"], scale=0.1, out_path=out
        )
        assert payload["schema"] == 2
        (circuit,) = payload["circuits"]
        assert circuit["name"] == "bm1"
        assert circuit["nets_cut"] >= 0
        assert "igmatch.sweep" in circuit["phases"]
        assert circuit["counters"]["matching.augmentations"] > 0
        # Schema 2: raw span events (for the phase-tree flame view) and
        # convergence curves ride along.
        span_names = {e["name"] for e in circuit["spans"]}
        assert "igmatch" in span_names
        curve_names = {e["name"] for e in circuit["curves"]}
        assert "igmatch.curve" in curve_names
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        assert not obs.is_enabled()
