"""Tests for Rayleigh-quotient iteration and relaxed-tolerance flows."""

import numpy as np
import pytest

from repro.errors import SpectralError
from repro.graph import laplacian_matrix
from repro.spectral import (
    lanczos_extreme,
    rayleigh_quotient_iteration,
    spectral_ordering,
)
from tests.conftest import connected_random_graph


def random_symmetric(seed, n):
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    return (m + m.T) / 2


class TestRQI:
    def test_polishes_loose_lanczos(self):
        a = random_symmetric(0, 40)
        loose = lanczos_extreme(a, k=1, which="LA", tol=1e-2, seed=0)
        polished = rayleigh_quotient_iteration(
            a, loose.eigenvectors[:, 0]
        )
        exact = np.linalg.eigvalsh(a)[-1]
        assert polished.eigenvalue == pytest.approx(exact, abs=1e-9)
        assert polished.residual < 1e-8

    def test_cubic_convergence_is_fast(self):
        a = random_symmetric(3, 30)
        loose = lanczos_extreme(a, k=1, which="LA", tol=1e-1, seed=1)
        polished = rayleigh_quotient_iteration(
            a, loose.eigenvectors[:, 0]
        )
        assert polished.iterations <= 4

    def test_already_converged_is_noop(self):
        a = random_symmetric(5, 20)
        values, vectors = np.linalg.eigh(a)
        result = rayleigh_quotient_iteration(a, vectors[:, -1])
        assert result.iterations <= 1
        assert result.eigenvalue == pytest.approx(values[-1], abs=1e-9)

    def test_sparse_laplacian(self):
        g = connected_random_graph(2, num_vertices=25)
        q = laplacian_matrix(g)
        loose = lanczos_extreme(q, k=2, which="SA", tol=1e-3, seed=0)
        polished = rayleigh_quotient_iteration(
            q, loose.eigenvectors[:, 1]
        )
        dense = np.linalg.eigvalsh(q.toarray())
        # Converges to some exact eigenvalue near the approximation.
        assert min(abs(dense - polished.eigenvalue)) < 1e-8

    def test_validation(self):
        a = random_symmetric(1, 5)
        with pytest.raises(SpectralError):
            rayleigh_quotient_iteration(a, np.zeros(5))
        with pytest.raises(SpectralError):
            rayleigh_quotient_iteration(a, np.ones(3))
        with pytest.raises(SpectralError):
            rayleigh_quotient_iteration(np.ones((2, 3)), np.ones(2))


class TestRelaxedTolerance:
    def test_ordering_tolerance_plumbed(self):
        g = connected_random_graph(4, num_vertices=40, extra_edges=40)
        tight = spectral_ordering(g, backend="lanczos", tol=1e-10)
        loose = spectral_ordering(g, backend="lanczos", tol=1e-2)
        assert sorted(tight) == sorted(loose)
        # Loose ordering may differ in detail but must still separate
        # the graph roughly like the tight one: compare positions by
        # rank correlation sign.
        position_tight = {v: i for i, v in enumerate(tight)}
        position_loose = {v: i for i, v in enumerate(loose)}
        import statistics

        xs = [position_tight[v] for v in range(40)]
        ys = [position_loose[v] for v in range(40)]
        covariance = statistics.covariance(xs, ys)
        assert abs(covariance) > 0  # correlated (sign may flip)
