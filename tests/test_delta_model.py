"""NetlistDelta value semantics: wire format, validation, algebra.

The algebraic properties (``apply(invert(d))`` is the identity;
compose-then-apply equals apply-then-apply) are checked with hypothesis
over :func:`tests.strategies.adversarial_csr_hypergraphs` — the same
degenerate-shape generator the CSR core is fuzzed with — and on both
hypergraph cores, since ``apply`` also patches the CSR twin.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import use_core
from repro.delta import (
    DELTA_FORMAT,
    ModuleAdd,
    NetAdd,
    NetlistDelta,
    dumps_delta,
    load_delta,
    loads_delta,
    random_delta,
    save_delta,
)
from repro.errors import DeltaError
from repro.hypergraph import Hypergraph
from repro.service import exact_fingerprint
from tests.strategies import adversarial_csr_hypergraphs

CORES = ("dict", "csr")


@pytest.fixture
def base():
    return Hypergraph(
        [[0, 1], [1, 2, 3], [0, 3], [2, 3]], name="base"
    )


class TestWireFormat:
    def test_empty_delta_is_format_tag_only(self):
        assert json.loads(dumps_delta(NetlistDelta())) == {
            "format": DELTA_FORMAT
        }

    def test_round_trip_all_fields(self, base):
        delta = NetlistDelta(
            remove_modules=(0,),
            add_modules=(ModuleAdd(area=2.0, name="new"),),
            set_module_areas={1: 3.0},
            remove_nets=(0,),
            add_nets=(NetAdd(pins=(1, 2), weight=2.0),),
            set_pins={1: (1, 2)},
            set_net_weights={2: 4.0},
        )
        assert loads_delta(dumps_delta(delta)) == delta

    def test_canonical_text_is_stable(self, base):
        delta = NetlistDelta(remove_nets=(1, 0), set_pins={2: (0, 1)})
        assert dumps_delta(delta) == dumps_delta(
            loads_delta(dumps_delta(delta))
        )

    def test_save_load(self, base, tmp_path):
        delta = NetlistDelta(set_pins={0: (0, 2)})
        path = tmp_path / "delta.json"
        save_delta(delta, path)
        assert load_delta(path) == delta

    def test_bad_format_tag_rejected(self):
        with pytest.raises(DeltaError, match="format"):
            NetlistDelta.from_doc({"format": "nope"})

    def test_bad_json_rejected(self):
        with pytest.raises(DeltaError, match="invalid delta JSON"):
            loads_delta("{not json")


class TestValidation:
    def test_remove_module_out_of_range(self, base):
        with pytest.raises(DeltaError):
            NetlistDelta(remove_modules=(99,)).validate(base)

    def test_set_pins_on_removed_net(self, base):
        with pytest.raises(DeltaError):
            NetlistDelta(
                remove_nets=(0,), set_pins={0: (1, 2)}
            ).validate(base)

    def test_apply_validates(self, base):
        with pytest.raises(DeltaError):
            NetlistDelta(remove_nets=(99,)).apply(base)


class TestAlgebra:
    @pytest.mark.parametrize("core", CORES)
    @settings(max_examples=40, deadline=None)
    @given(
        h=adversarial_csr_hypergraphs(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_apply_invert_is_identity(self, core, h, seed):
        delta = random_delta(h, random.Random(seed))
        with use_core(core):
            edited = delta.apply(h)
            restored = delta.invert(h).apply(edited)
        assert exact_fingerprint(restored) == exact_fingerprint(h)

    @pytest.mark.parametrize("core", CORES)
    @settings(max_examples=40, deadline=None)
    @given(
        h=adversarial_csr_hypergraphs(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_compose_equals_sequential_apply(self, core, h, seed):
        rng = random.Random(seed)
        first = random_delta(h, rng)
        middle = first.apply(h)
        second = random_delta(middle, rng)
        with use_core(core):
            composed = first.compose(second, h).apply(h)
            sequential = second.apply(first.apply(h))
        assert exact_fingerprint(composed) == exact_fingerprint(
            sequential
        )

    @settings(max_examples=40, deadline=None)
    @given(
        h=adversarial_csr_hypergraphs(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_apply_identical_across_cores(self, h, seed):
        delta = random_delta(h, random.Random(seed))
        with use_core("dict"):
            from_dict = delta.apply(h)
        with use_core("csr"):
            from_csr = delta.apply(h)
        assert exact_fingerprint(from_dict) == exact_fingerprint(
            from_csr
        )

    def test_noop_apply_preserves_fingerprint(self, base):
        assert exact_fingerprint(
            NetlistDelta().apply(base)
        ) == exact_fingerprint(base)
