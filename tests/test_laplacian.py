"""Tests for matrix assembly (A, D, Q = D - A)."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    adjacency_matrix,
    degree_matrix,
    laplacian_matrix,
    negated_laplacian,
)


@pytest.fixture
def path_graph():
    g = Graph(3)
    g.add_edge(0, 1, 2.0)
    g.add_edge(1, 2, 3.0)
    return g


class TestAdjacency:
    def test_entries(self, path_graph):
        a = adjacency_matrix(path_graph).toarray()
        expected = np.array(
            [[0, 2, 0], [2, 0, 3], [0, 3, 0]], dtype=float
        )
        assert np.allclose(a, expected)

    def test_symmetric(self, path_graph):
        a = adjacency_matrix(path_graph)
        assert (abs(a - a.T)).max() == 0

    def test_zero_diagonal(self, path_graph):
        a = adjacency_matrix(path_graph).toarray()
        assert np.all(np.diag(a) == 0)

    def test_nonzero_count(self, path_graph):
        assert adjacency_matrix(path_graph).nnz == path_graph.num_nonzeros


class TestDegree:
    def test_diagonal(self, path_graph):
        d = degree_matrix(path_graph).toarray()
        assert np.allclose(np.diag(d), [2.0, 5.0, 3.0])
        assert np.allclose(d - np.diag(np.diag(d)), 0)


class TestLaplacian:
    def test_rows_sum_to_zero(self, path_graph):
        q = laplacian_matrix(path_graph).toarray()
        assert np.allclose(q.sum(axis=1), 0)

    def test_positive_semidefinite(self, path_graph):
        q = laplacian_matrix(path_graph).toarray()
        eigenvalues = np.linalg.eigvalsh(q)
        assert eigenvalues.min() > -1e-12

    def test_constant_vector_in_kernel(self, path_graph):
        q = laplacian_matrix(path_graph).toarray()
        ones = np.ones(3)
        assert np.allclose(q @ ones, 0)

    def test_quadratic_form_is_cut_energy(self, path_graph):
        # x^T Q x = sum w_ij (x_i - x_j)^2 over edges
        q = laplacian_matrix(path_graph).toarray()
        x = np.array([1.0, -1.0, 2.0])
        expected = 2.0 * (1 - -1) ** 2 + 3.0 * (-1 - 2) ** 2
        assert np.isclose(x @ q @ x, expected)

    def test_negated_laplacian(self, path_graph):
        q = laplacian_matrix(path_graph).toarray()
        nq = negated_laplacian(path_graph).toarray()
        assert np.allclose(nq, -q)
