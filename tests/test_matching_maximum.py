"""Tests for maximum bipartite matching, cross-validated against
networkx and brute force."""

import itertools

import pytest
from hypothesis import given, settings

from repro.matching import (
    BipartiteGraph,
    augmenting_path_matching,
    hopcroft_karp,
    matching_size,
)
from tests.strategies import bipartite_graphs


def build(nl, nr, edges):
    b = BipartiteGraph([("L", i) for i in range(nl)],
                       [("R", j) for j in range(nr)])
    for l, r in edges:
        b.add_edge(("L", l), ("R", r))
    return b


def brute_force_maximum(nl, nr, edges):
    """Maximum matching size by exhaustive search (tiny instances)."""
    best = 0
    for k in range(min(nl, nr, len(edges)), 0, -1):
        for combo in itertools.combinations(edges, k):
            lefts = {e[0] for e in combo}
            rights = {e[1] for e in combo}
            if len(lefts) == k and len(rights) == k:
                return k
    return best


class TestKnownInstances:
    def test_perfect_matching(self):
        b = build(3, 3, [(0, 0), (1, 1), (2, 2)])
        assert matching_size(augmenting_path_matching(b)) == 3

    def test_star_matches_one(self):
        b = build(1, 4, [(0, j) for j in range(4)])
        assert matching_size(augmenting_path_matching(b)) == 1

    def test_requires_augmentation(self):
        # Greedy can match (0,0) first; augmenting path must fix it.
        b = build(2, 2, [(0, 0), (0, 1), (1, 0)])
        assert matching_size(augmenting_path_matching(b)) == 2

    def test_empty_graph(self):
        b = build(2, 2, [])
        assert augmenting_path_matching(b) == {}

    def test_matching_is_valid(self):
        b = build(4, 4, [(i, j) for i in range(4) for j in range(4)
                         if (i + j) % 2 == 0])
        match = augmenting_path_matching(b)
        b.validate_matching(match)


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(10))
    def test_augmenting_equals_hopcroft_karp(self, seed):
        import random

        rng = random.Random(seed)
        nl, nr = rng.randint(3, 12), rng.randint(3, 12)
        edges = [
            (l, r)
            for l in range(nl)
            for r in range(nr)
            if rng.random() < 0.3
        ]
        b = build(nl, nr, edges)
        m1 = matching_size(augmenting_path_matching(b))
        m2 = matching_size(hopcroft_karp(b))
        assert m1 == m2

    @pytest.mark.parametrize("seed", range(10))
    def test_against_networkx(self, seed):
        import random

        import networkx as nx

        rng = random.Random(seed + 50)
        nl, nr = rng.randint(2, 10), rng.randint(2, 10)
        edges = [
            (l, r)
            for l in range(nl)
            for r in range(nr)
            if rng.random() < 0.35
        ]
        b = build(nl, nr, edges)
        ours = matching_size(hopcroft_karp(b))

        nxg = nx.Graph()
        nxg.add_nodes_from((("L", i) for i in range(nl)), bipartite=0)
        nxg.add_nodes_from((("R", j) for j in range(nr)), bipartite=1)
        nxg.add_edges_from(((("L", l), ("R", r)) for l, r in edges))
        theirs = len(
            nx.bipartite.maximum_matching(
                nxg, top_nodes=[("L", i) for i in range(nl)]
            )
        ) // 2
        assert ours == theirs

    @settings(max_examples=60, deadline=None)
    @given(bipartite_graphs(max_side=5))
    def test_against_brute_force(self, instance):
        nl, nr, edges = instance
        b = build(nl, nr, edges)
        match = augmenting_path_matching(b)
        b.validate_matching(match)
        assert matching_size(match) == brute_force_maximum(nl, nr, edges)
