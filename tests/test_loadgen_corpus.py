"""Corpus tests: isomorphic duplicates, fingerprints, determinism."""

import json

import pytest

from repro.errors import ReproError
from repro.hypergraph import from_json
from repro.loadgen import Corpus, build_corpus


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(distinct=3, isomorphs=3, seed=0, scale=0.1)


class TestBuildCorpus:
    def test_counts(self, corpus):
        assert len(corpus) == 6
        assert len(corpus.bases) == 3
        assert len(corpus.isomorphs) == 3

    def test_bases_are_distinct_instances(self, corpus):
        exact = [e.exact for e in corpus.bases]
        canonical = [e.canonical for e in corpus.bases]
        assert len(set(exact)) == len(exact)
        assert len(set(canonical)) == len(canonical)

    def test_isomorph_shares_canonical_not_exact(self, corpus):
        by_name = {e.name: e for e in corpus.entries}
        for iso in corpus.isomorphs:
            base = by_name[iso.base]
            assert iso.exact != base.exact
            assert iso.canonical == base.canonical
            assert iso.num_modules == base.num_modules
            assert iso.num_nets == base.num_nets

    def test_netlists_round_trip(self, corpus):
        for entry in corpus.entries:
            h = from_json(json.loads(json.dumps(entry.netlist)))
            assert h.num_modules == entry.num_modules
            assert h.num_nets == entry.num_nets

    def test_deterministic_for_seed(self):
        a = build_corpus(distinct=3, isomorphs=2, seed=5, scale=0.1)
        b = build_corpus(distinct=3, isomorphs=2, seed=5, scale=0.1)
        assert [e.name for e in a.entries] == [e.name for e in b.entries]
        assert [e.exact for e in a.entries] == [e.exact for e in b.entries]

    def test_seed_changes_corpus(self):
        a = build_corpus(distinct=3, isomorphs=2, seed=0, scale=0.1)
        b = build_corpus(distinct=3, isomorphs=2, seed=1, scale=0.1)
        assert [e.exact for e in a.entries] != [e.exact for e in b.entries]

    def test_more_distinct_than_specs_bumps_generator_seed(self):
        # Asking for more bases than there are benchmark specs must
        # yield genuinely different instances, not repeats.
        corpus = build_corpus(distinct=14, isomorphs=0, seed=0, scale=0.05)
        exact = [e.exact for e in corpus.bases]
        assert len(set(exact)) == 14

    def test_zero_isomorphs_allowed(self):
        corpus = build_corpus(distinct=2, isomorphs=0, seed=0, scale=0.1)
        assert corpus.isomorphs == []

    def test_bad_inputs_rejected(self):
        with pytest.raises(ReproError):
            build_corpus(distinct=0)
        with pytest.raises(ReproError):
            build_corpus(isomorphs=-1)
        with pytest.raises(ReproError):
            Corpus([])

    def test_describe_is_json_safe(self, corpus):
        doc = corpus.describe()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["entries"] == 6
        assert doc["bases"] == 3
        assert doc["isomorphs"] == 3
        assert len(doc["names"]) == 6
