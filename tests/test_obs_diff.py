"""Tests for BENCH_obs.json regression diffing (:mod:`repro.obs.diff`)
and the ``python -m repro.bench --compare`` exit-code gate."""

import copy
import json

import pytest

from repro.obs.diff import (
    FASTER,
    GREW,
    IMPROVED,
    MISSING,
    NEW,
    REGRESSED,
    SHRANK,
    SLOWER,
    UNCHANGED,
    DiffThresholds,
    diff_payloads,
)


def make_circuit(name="bm1", **overrides):
    circuit = {
        "name": name,
        "modules": 88,
        "nets": 90,
        "seconds": 1.0,
        "nets_cut": 5,
        "ratio_cut": 2.5e-3,
        "phases": {
            "igmatch.sweep": {"seconds": 0.6, "count": 1},
            "spectral.fiedler": {"seconds": 0.2, "count": 1},
        },
        "counters": {
            "lanczos.iterations": 40,
            "matching.augmentations": 70,
        },
    }
    circuit.update(overrides)
    return circuit


def make_payload(*circuits, **overrides):
    payload = {
        "schema": 2,
        "algorithm": "ig-match",
        "seed": 0,
        "scale": 0.1,
        "circuits": list(circuits) or [make_circuit()],
    }
    payload.update(overrides)
    return payload


def field(diff, name):
    (found,) = [
        f
        for c in diff.circuits
        for f in c.fields
        if f.name == name
    ]
    return found


class TestDeterministicFields:
    def test_identical_payloads_have_no_changes(self):
        base = make_payload()
        diff = diff_payloads(base, copy.deepcopy(base))
        assert not diff.has_regressions
        assert diff.counts() == {UNCHANGED: len(diff.circuits[0].fields)}

    def test_counter_increase_is_regression(self):
        base = make_payload()
        cur = copy.deepcopy(base)
        cur["circuits"][0]["counters"]["lanczos.iterations"] = 55
        diff = diff_payloads(base, cur)
        assert diff.has_regressions
        f = field(diff, "lanczos.iterations")
        assert f.status == REGRESSED
        assert f.deterministic and f.is_regression
        assert f.delta == 15

    def test_counter_decrease_is_improvement(self):
        base = make_payload()
        cur = copy.deepcopy(base)
        cur["circuits"][0]["counters"]["lanczos.iterations"] = 30
        diff = diff_payloads(base, cur)
        assert not diff.has_regressions
        assert field(diff, "lanczos.iterations").status == IMPROVED
        assert len(diff.improvements) == 1

    def test_new_and_missing_counters(self):
        base = make_payload()
        cur = copy.deepcopy(base)
        del cur["circuits"][0]["counters"]["matching.augmentations"]
        cur["circuits"][0]["counters"]["fm.passes"] = 3
        diff = diff_payloads(base, cur)
        assert not diff.has_regressions  # new/missing don't gate
        assert field(diff, "fm.passes").status == NEW
        assert field(diff, "matching.augmentations").status == MISSING

    def test_nets_cut_increase_regresses(self):
        base = make_payload()
        cur = copy.deepcopy(base)
        cur["circuits"][0]["nets_cut"] = 6
        cur["circuits"][0]["ratio_cut"] = 3.0e-3
        diff = diff_payloads(base, cur)
        statuses = {
            f.name: f.status for f in diff.circuits[0].fields
        }
        assert statuses["nets_cut"] == REGRESSED
        assert statuses["ratio_cut"] == REGRESSED
        assert len(diff.regressions) == 2

    def test_ratio_cut_float_roundtrip_noise_is_equal(self):
        base = make_payload()
        cur = copy.deepcopy(base)
        cur["circuits"][0]["ratio_cut"] = 2.5e-3 * (1 + 1e-12)
        diff = diff_payloads(base, cur)
        assert field(diff, "ratio_cut").status == UNCHANGED

    def test_phase_count_change_regresses(self):
        base = make_payload()
        cur = copy.deepcopy(base)
        cur["circuits"][0]["phases"]["igmatch.sweep"]["count"] = 2
        diff = diff_payloads(base, cur)
        regressed = [f for f in diff.regressions]
        assert [f.kind for f in regressed] == ["phase.count"]

    def test_phase_only_in_current_is_new(self):
        base = make_payload()
        cur = copy.deepcopy(base)
        cur["circuits"][0]["phases"]["igmatch.refinement"] = {
            "seconds": 0.01,
            "count": 1,
        }
        diff = diff_payloads(base, cur)
        new = diff.circuits[0].by_status(NEW)
        assert {f.kind for f in new} == {"phase.count", "phase.seconds"}
        assert not diff.has_regressions


class TestWallClockFields:
    def test_jitter_within_tolerance_is_unchanged(self):
        base = make_payload()
        cur = copy.deepcopy(base)
        cur["circuits"][0]["seconds"] = 1.2  # +20% < 25% tolerance
        diff = diff_payloads(base, cur)
        assert field(diff, "seconds").status == UNCHANGED

    def test_large_slowdown_is_slower_but_never_gates(self):
        base = make_payload()
        cur = copy.deepcopy(base)
        cur["circuits"][0]["seconds"] = 2.0
        diff = diff_payloads(base, cur)
        f = field(diff, "seconds")
        assert f.status == SLOWER
        assert not f.deterministic and not f.is_regression
        assert not diff.has_regressions
        assert diff.time_regressions == [f]

    def test_large_speedup_is_faster(self):
        base = make_payload()
        cur = copy.deepcopy(base)
        cur["circuits"][0]["seconds"] = 0.4
        diff = diff_payloads(base, cur)
        assert field(diff, "seconds").status == FASTER

    def test_zero_second_baseline_phase_uses_absolute_floor(self):
        base = make_payload()
        base["circuits"][0]["phases"]["igmatch.sweep"]["seconds"] = 0.0
        cur = copy.deepcopy(base)
        # Tiny absolute move on a zero baseline: infinite relative
        # change, but under the floor -> noise.
        cur["circuits"][0]["phases"]["igmatch.sweep"]["seconds"] = 0.015
        diff = diff_payloads(base, cur)
        seconds = [
            f
            for f in diff.circuits[0].fields
            if f.kind == "phase.seconds" and f.name == "igmatch.sweep"
        ]
        assert seconds[0].status == UNCHANGED
        # Above the floor the same zero baseline is a real slowdown.
        cur["circuits"][0]["phases"]["igmatch.sweep"]["seconds"] = 0.5
        diff = diff_payloads(base, cur)
        seconds = [
            f
            for f in diff.circuits[0].fields
            if f.kind == "phase.seconds" and f.name == "igmatch.sweep"
        ]
        assert seconds[0].status == SLOWER

    def test_custom_thresholds(self):
        thresholds = DiffThresholds(rel_tol=0.05, abs_floor_s=0.0)
        assert thresholds.verdict(1.0, 1.04) == UNCHANGED
        assert thresholds.verdict(1.0, 1.10) == SLOWER
        assert thresholds.verdict(1.0, 0.90) == FASTER


class TestCircuitLevel:
    def test_circuit_only_in_baseline_is_missing(self):
        base = make_payload(make_circuit("bm1"), make_circuit("Prim1"))
        cur = make_payload(make_circuit("bm1"))
        diff = diff_payloads(base, cur)
        by_name = {c.name: c for c in diff.circuits}
        assert by_name["Prim1"].status == "missing"
        assert by_name["Prim1"].fields == []
        assert by_name["bm1"].status == "common"
        assert not diff.has_regressions

    def test_circuit_only_in_current_is_new(self):
        base = make_payload(make_circuit("bm1"))
        cur = make_payload(make_circuit("bm1"), make_circuit("Test05"))
        diff = diff_payloads(base, cur)
        by_name = {c.name: c for c in diff.circuits}
        assert by_name["Test05"].status == "new"
        assert not diff.has_regressions

    def test_mismatched_config_is_recorded(self):
        base = make_payload()
        cur = make_payload(scale=0.2, algorithm="rcut")
        diff = diff_payloads(base, cur)
        assert set(diff.mismatched_config) == {"algorithm", "scale"}

    def test_schema1_payload_without_spans_curves(self):
        base = make_payload(schema=1)
        cur = make_payload()
        diff = diff_payloads(base, cur)
        assert not diff.has_regressions


class TestBenchCompareCli:
    """End-to-end exit codes of ``python -m repro.bench --compare``."""

    @pytest.fixture(scope="class")
    def baseline_path(self, tmp_path_factory):
        from repro.bench.__main__ import main

        path = tmp_path_factory.mktemp("bench") / "baseline.json"
        assert main(
            ["bm1", "--scale", "0.1", "--out", str(path)]
        ) == 0
        return path

    def run_compare(self, baseline, tmp_path, *extra):
        from repro.bench.__main__ import main

        return main(
            [
                "bm1", "--scale", "0.1",
                "--out", str(tmp_path / "current.json"),
                "--compare", str(baseline),
                *extra,
            ]
        )

    def test_identical_seed_runs_exit_zero(
        self, baseline_path, tmp_path, capsys
    ):
        code = self.run_compare(
            baseline_path, tmp_path, "--fail-on-regress"
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no deterministic regressions" in out

    def test_injected_counter_regression_exits_one(
        self, baseline_path, tmp_path, capsys
    ):
        doctored = tmp_path / "doctored.json"
        payload = json.loads(baseline_path.read_text())
        payload["circuits"][0]["counters"]["matching.augmentations"] -= 1
        doctored.write_text(json.dumps(payload))
        code = self.run_compare(
            doctored, tmp_path, "--fail-on-regress"
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "matching.augmentations" in captured.out

    def test_injected_cut_regression_exits_one(
        self, baseline_path, tmp_path
    ):
        doctored = tmp_path / "doctored.json"
        payload = json.loads(baseline_path.read_text())
        payload["circuits"][0]["nets_cut"] -= 1
        doctored.write_text(json.dumps(payload))
        assert (
            self.run_compare(doctored, tmp_path, "--fail-on-regress")
            == 1
        )

    def test_without_fail_flag_reports_but_exits_zero(
        self, baseline_path, tmp_path, capsys
    ):
        doctored = tmp_path / "doctored.json"
        payload = json.loads(baseline_path.read_text())
        payload["circuits"][0]["counters"]["matching.augmentations"] -= 1
        doctored.write_text(json.dumps(payload))
        assert self.run_compare(doctored, tmp_path) == 0
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_baseline_file_exits_usage(self, tmp_path, capsys):
        assert (
            self.run_compare(tmp_path / "nope.json", tmp_path) == 2
        )
        assert "cannot read baseline" in capsys.readouterr().err

    def test_unparsable_baseline_exits_usage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert self.run_compare(bad, tmp_path) == 2
        err = capsys.readouterr().err
        assert "cannot read baseline" in err
        assert "Traceback" not in err

    def test_non_object_baseline_exits_usage(self, tmp_path, capsys):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]", encoding="utf-8")
        assert self.run_compare(bad, tmp_path) == 2
        err = capsys.readouterr().err
        assert "not a benchmark payload" in err

    def test_unknown_schema_baseline_exits_usage(
        self, baseline_path, tmp_path, capsys
    ):
        doctored = tmp_path / "future.json"
        payload = json.loads(baseline_path.read_text())
        payload["schema"] = 99
        doctored.write_text(json.dumps(payload))
        assert self.run_compare(doctored, tmp_path) == 2
        err = capsys.readouterr().err
        assert "unknown schema version 99" in err
        assert "Traceback" not in err

    def test_report_written_alongside_compare(
        self, baseline_path, tmp_path
    ):
        report = tmp_path / "report.html"
        code = self.run_compare(
            baseline_path, tmp_path, "--report", str(report)
        )
        assert code == 0
        html = report.read_text()
        assert "Baseline comparison" in html
        assert "<svg" in html


class TestBenchCliValidation:
    def test_list_prints_specs(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("bm1", "Prim2", "Test05"):
            assert name in out

    def test_unknown_name_suggests_closest(self, capsys):
        from repro.bench.__main__ import main

        assert main(["Test5"]) == 2
        err = capsys.readouterr().err
        assert "unknown circuit" in err
        assert "did you mean" in err
        assert "Test05" in err

    def test_case_insensitive_names_accepted(self, tmp_path):
        from repro.bench.__main__ import main

        assert main(
            ["BM1", "--scale", "0.1", "--out", str(tmp_path / "o.json")]
        ) == 0


class TestBenchCacheScenarioCli:
    """``python -m repro.bench --cache-scenario``: cold vs warm serve."""

    def test_scenario_passes_all_checks(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "cache.json"
        code = main(
            ["bm1", "--cache-scenario", "--scale", "0.2",
             "--out", str(out)]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "FAIL" not in captured.out
        assert captured.out.count("PASS") == 5
        record = json.loads(out.read_text())
        assert record["ok"] is True
        assert record["warm"]["cached"] is True
        assert record["verified"]["warm_skipped_compute"] is True
        assert record["verified"]["results_identical"] is True

    def test_scenario_rejects_multiple_circuits(self, capsys):
        from repro.bench.__main__ import main

        assert main(["bm1", "Test02", "--cache-scenario"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_scenario_unknown_circuit(self, capsys):
        from repro.bench.__main__ import main

        assert main(["NoSuch", "--cache-scenario"]) == 2
        assert "unknown circuit" in capsys.readouterr().err


class TestMemoryFields:
    """Memory quantities (``*_bytes``) diff noise-aware and never gate:
    an RSS or heap watermark is machine state, not algorithm work."""

    def test_process_gauge_growth_never_gates(self):
        base = make_payload(make_circuit(
            mem={"rss_bytes": 50e6, "max_rss_bytes": 60e6},
        ))
        cur = make_payload(make_circuit(
            mem={"rss_bytes": 90e6, "max_rss_bytes": 95e6},
        ))
        diff = diff_payloads(base, cur)
        f = field(diff, "rss_bytes")
        assert f.status == GREW
        assert not f.deterministic
        assert not diff.has_regressions
        assert f in diff.memory_growths

    def test_small_memory_jitter_is_unchanged(self):
        base = make_payload(make_circuit(mem={"rss_bytes": 50e6}))
        cur = make_payload(make_circuit(mem={"rss_bytes": 52e6}))
        diff = diff_payloads(base, cur)
        assert field(diff, "rss_bytes").status == UNCHANGED

    def test_below_absolute_floor_is_always_noise(self):
        # +400KiB is a huge relative change on a 100KiB baseline, but
        # under the 1MiB floor it is indistinguishable from allocator
        # jitter.
        base = make_payload(make_circuit(mem={"rss_bytes": 100e3}))
        cur = make_payload(make_circuit(mem={"rss_bytes": 500e3}))
        diff = diff_payloads(base, cur)
        assert field(diff, "rss_bytes").status == UNCHANGED

    def test_memory_shrink_is_reported(self):
        base = make_payload(make_circuit(mem={"rss_bytes": 90e6}))
        cur = make_payload(make_circuit(mem={"rss_bytes": 50e6}))
        diff = diff_payloads(base, cur)
        assert field(diff, "rss_bytes").status == SHRANK
        assert diff.memory_growths == []

    def test_phase_mem_attribution_diffs_noise_aware(self):
        def with_phase_mem(peak):
            return make_circuit(phases={
                "igmatch.sweep": {
                    "seconds": 0.6, "count": 1,
                    "mem_alloc_bytes": 1_000_000,
                    "mem_peak_bytes": peak,
                },
            })

        diff = diff_payloads(
            make_payload(with_phase_mem(10_000_000)),
            make_payload(with_phase_mem(30_000_000)),
        )
        f = field(diff, "igmatch.sweep.mem_peak_bytes")
        assert f.kind == "phase.mem"
        assert f.status == GREW
        assert not diff.has_regressions
