"""End-to-end integration tests across modules.

These exercise the full pipelines a user would run: generate or load a
netlist, partition it with every algorithm, compare metrics, and verify
the cross-algorithm quality ordering the paper reports.
"""

import pytest

from repro import (
    EIG1Config,
    FMConfig,
    IGMatchConfig,
    RCutConfig,
    build_circuit,
    eig1,
    fm_bipartition,
    generate_hierarchical,
    ig_match,
    ig_vote,
    rcut,
    recursive_partition,
    refine,
)
from repro.hypergraph import load_net, save_net


class TestFullPipeline:
    def test_generate_save_load_partition(self, tmp_path):
        h = generate_hierarchical(
            num_modules=150, num_nets=170, natural_fraction=0.3,
            crossing_nets=4, seed=2, name="pipeline",
        )
        path = tmp_path / "pipeline.net"
        save_net(h, path)
        reloaded = load_net(path)
        assert reloaded == h

        direct = ig_match(h)
        via_file = ig_match(reloaded)
        assert direct.partition.sides == via_file.partition.sides

    def test_all_algorithms_agree_on_metric_definitions(
        self, small_circuit
    ):
        """Every algorithm's reported metrics must be recomputable from
        its partition."""
        from repro.partitioning.metrics import (
            net_cut_count,
            ratio_cut_of_sides,
        )

        results = [
            ig_match(small_circuit),
            ig_vote(small_circuit),
            eig1(small_circuit),
            rcut(small_circuit, RCutConfig(restarts=2)),
            fm_bipartition(small_circuit, FMConfig(seed=0)),
        ]
        for result in results:
            sides = list(result.partition.sides)
            assert result.nets_cut == net_cut_count(small_circuit, sides)
            assert result.ratio_cut == pytest.approx(
                ratio_cut_of_sides(small_circuit, sides)
            )

    def test_paper_quality_ordering(self, medium_circuit):
        """The paper's headline shape: ratio-cut family beats balanced
        FM; IG-Match at least matches IG-Vote."""
        igm = ig_match(medium_circuit)
        vote = ig_vote(medium_circuit)
        fm = fm_bipartition(medium_circuit, FMConfig(seed=0))
        assert igm.ratio_cut <= vote.ratio_cut * 1.001
        assert igm.ratio_cut <= fm.ratio_cut

    def test_benchmark_circuit_pipeline(self):
        h = build_circuit("Test04", scale=0.15)
        igm = ig_match(h)
        assert igm.partition.u_size + igm.partition.w_size == (
            h.num_modules
        )
        polished = refine(igm)
        assert polished.ratio_cut <= igm.ratio_cut + 1e-15

    def test_hardware_simulation_scenario(self, medium_circuit):
        """Section 1's application: partition into 4 blocks and count
        multiplexed (external) signals."""
        result = recursive_partition(medium_circuit, 4)
        assert result.num_blocks == 4
        total_external = sum(
            result.external_nets_of_block(b) for b in range(4)
        )
        # Every cut net is external to at least 2 blocks.
        assert total_external >= 2 * result.nets_cut

    def test_area_weighted_reporting(self):
        h = generate_hierarchical(
            num_modules=60, num_nets=70, natural_fraction=0.3,
            crossing_nets=2, seed=5,
        )
        # Rebuild with non-unit areas.
        from repro.hypergraph import Hypergraph

        nets = [list(h.pins(j)) for j in range(h.num_nets)]
        weighted = Hypergraph(
            nets,
            num_modules=h.num_modules,
            module_areas=[1.0 + (v % 3) for v in range(h.num_modules)],
        )
        result = ig_match(weighted)
        u, w = result.areas.split(":")
        assert float(u) + float(w) == pytest.approx(weighted.total_area)

    def test_spectral_backends_end_to_end(self, small_circuit):
        scipy_result = ig_match(
            small_circuit, IGMatchConfig(backend="scipy")
        )
        lanczos_result = ig_match(
            small_circuit, IGMatchConfig(backend="lanczos")
        )
        # Same eigenvector up to sign/ties: allow tiny quality wiggle.
        assert lanczos_result.ratio_cut <= scipy_result.ratio_cut * 1.5
        assert scipy_result.ratio_cut <= lanczos_result.ratio_cut * 1.5
