"""Tests for Hall's quadratic placement (Appendix A)."""

import numpy as np
import pytest

from repro.errors import SpectralError
from repro.graph import Graph
from repro.spectral import hall_placement, quadratic_wirelength
from tests.conftest import connected_random_graph


class TestWirelength:
    def test_hand_computed(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 1.0)
        x = np.array([0.0, 1.0, 3.0])
        assert quadratic_wirelength(g, x) == pytest.approx(2 * 1 + 1 * 4)

    def test_constant_vector_is_free(self):
        g = connected_random_graph(0, num_vertices=10)
        assert quadratic_wirelength(g, np.ones(10)) == pytest.approx(0.0)

    def test_shape_mismatch(self):
        g = Graph(3)
        with pytest.raises(SpectralError):
            quadratic_wirelength(g, np.zeros(5))


class TestPlacement:
    def test_coordinates_shape(self):
        g = connected_random_graph(1, num_vertices=12)
        placement = hall_placement(g, dimensions=2)
        assert placement.coordinates.shape == (12, 2)
        assert placement.dimensions == 2

    def test_eigenvalue_equals_wirelength(self):
        # Hall: the d-th eigenvalue equals the wirelength of the d-th
        # coordinate vector (unit norm).
        g = connected_random_graph(2, num_vertices=14)
        placement = hall_placement(g, dimensions=2)
        for d in range(2):
            x = placement.coordinates[:, d]
            assert quadratic_wirelength(g, x) == pytest.approx(
                placement.eigenvalues[d], abs=1e-6
            )

    def test_eigenvalues_sorted_nontrivial(self):
        g = connected_random_graph(5, num_vertices=16)
        placement = hall_placement(g, dimensions=3)
        assert placement.eigenvalues[0] > 1e-9
        assert np.all(np.diff(placement.eigenvalues) >= -1e-9)

    def test_optimality_vs_random_unit_vectors(self):
        # No unit vector orthogonal to the constant does better than the
        # Fiedler coordinate.
        g = connected_random_graph(9, num_vertices=12)
        placement = hall_placement(g, dimensions=1)
        best = placement.eigenvalues[0]
        rng = np.random.default_rng(0)
        for _ in range(25):
            x = rng.standard_normal(12)
            x -= x.mean()
            x /= np.linalg.norm(x)
            assert quadratic_wirelength(g, x) >= best - 1e-9

    def test_two_clusters_separate_in_1d(self, two_cluster_hypergraph):
        from repro.netmodels import get_model

        g = get_model("clique").to_graph(two_cluster_hypergraph)
        placement = hall_placement(g, dimensions=1)
        x = placement.coordinates[:, 0]
        group_a = x[:4]
        group_b = x[4:]
        assert max(group_a) < min(group_b) or max(group_b) < min(group_a)

    def test_disconnected_rejected(self):
        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        g.add_edge(4, 5)
        with pytest.raises(SpectralError):
            hall_placement(g, dimensions=1)

    def test_too_few_vertices(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        with pytest.raises(SpectralError):
            hall_placement(g, dimensions=2)

    def test_bad_dimensions(self):
        g = connected_random_graph(0, num_vertices=8)
        with pytest.raises(SpectralError):
            hall_placement(g, dimensions=0)

    def test_large_graph_sparse_path(self):
        g = connected_random_graph(13, num_vertices=60, extra_edges=80)
        placement = hall_placement(g, dimensions=2)
        assert placement.coordinates.shape == (60, 2)
        x = placement.coordinates[:, 0]
        assert quadratic_wirelength(g, x) == pytest.approx(
            placement.eigenvalues[0], rel=1e-4
        )
