"""The determinism contract of :mod:`repro.parallel`.

Three families of guarantees:

1. **Backend equivalence** — for every fanned-out algorithm (RCut
   restarts, FM multi-start, IG-Match orderings, the bench suite) the
   serial, thread, and process backends produce bit-identical results:
   same partition, same ``nets_cut``/``ratio_cut``, same details.
2. **Seed determinism** — every top-level partitioner run twice with
   the same seed returns an identical :class:`PartitionResult`.
3. **Executor semantics** — submission-order reduction, per-task seed
   spawning (prefix-stable), exception propagation with task context,
   nested-fan-out suppression, and env-var resolution.

Process-pool workers unpickle tasks by module path, so every task
function used with the process backend lives at module level here.
"""

from __future__ import annotations

import random
import time

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.clustering import MultilevelConfig, multilevel_partition
from repro.errors import PartitionError, ReproError
from repro.parallel import (
    BACKENDS,
    ParallelConfig,
    ParallelError,
    capture_fragment,
    merge_fragment,
    pmap,
    pstarmap,
    resolve_parallel,
    spawn_seeds,
)
from repro.partitioning import (
    AnnealingConfig,
    EIG1Config,
    FMConfig,
    IGMatchConfig,
    IGVoteConfig,
    KLConfig,
    RCutConfig,
    anneal,
    eig1,
    fm_bipartition,
    ig_match,
    ig_vote,
    kl_bisection,
    rcut,
)
from tests.conftest import random_hypergraph
from tests.strategies import partitionable_hypergraphs

POOL_BACKENDS = ("thread", "process")


def fingerprint(result):
    """Everything deterministic about a PartitionResult (no wall time)."""
    return (
        result.algorithm,
        tuple(result.partition.sides),
        result.nets_cut,
        result.ratio_cut,
        result.details,
    )


# ----------------------------------------------------------------------
# Module-level task functions (picklable for the process backend)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _add(x, y):
    return x + y


def _sleep_inverse(index, total):
    """Finish in reverse submission order to stress the reducer."""
    time.sleep(0.01 * (total - index))
    return index


def _raise_value_error(x):
    if x == 2:
        raise ValueError(f"boom on {x}")
    return x


class _Unpicklable(Exception):
    def __init__(self):
        super().__init__("unpicklable")
        self.payload = lambda: None  # lambdas cannot be pickled


def _raise_unpicklable(x):
    raise _Unpicklable()


def _nested_pmap(x):
    """A task that itself fans out: must run inline, not deadlock."""
    return sum(pmap(_square, range(x), ParallelConfig(2, "thread")))


def _count_with_obs(x):
    obs.STATE.counters["worker.calls"] = (
        obs.STATE.counters.get("worker.calls", 0) + 1
    )
    return x


# ----------------------------------------------------------------------
# spawn_seeds: the per-task seed derivation
# ----------------------------------------------------------------------
class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(42, 8) == spawn_seeds(42, 8)

    def test_prefix_stable(self):
        """Adding tasks never changes earlier tasks' seeds."""
        assert spawn_seeds(7, 3) == spawn_seeds(7, 100)[:3]

    def test_distinct_within_a_run(self):
        seeds = spawn_seeds(0, 64)
        assert len(set(seeds)) == 64

    @given(st.integers(0, 2**32), st.integers(0, 2**32))
    @settings(max_examples=50, deadline=None)
    def test_master_seeds_give_distinct_streams(self, a, b):
        assume(a != b)
        assert spawn_seeds(a, 4) != spawn_seeds(b, 4)

    def test_range_fits_in_signed_64_bit(self):
        for seed in spawn_seeds(123, 32):
            assert 0 <= seed < 2**63

    def test_zero_count(self):
        assert spawn_seeds(5, 0) == []


# ----------------------------------------------------------------------
# ParallelConfig construction and env resolution
# ----------------------------------------------------------------------
class TestParallelConfig:
    def test_defaults_are_serial(self):
        config = ParallelConfig()
        assert (config.workers, config.backend) == (1, "serial")
        assert config.effective_workers() == 1

    def test_invalid_backend_rejected(self):
        with pytest.raises(ReproError):
            ParallelConfig(workers=2, backend="mpi")

    def test_negative_workers_rejected(self):
        with pytest.raises(ReproError):
            ParallelConfig(workers=-1)

    def test_auto_workers_detects_cpus(self):
        config = ParallelConfig(workers=0, backend="thread")
        assert config.effective_workers() >= 1

    def test_serial_backend_uses_one_worker(self):
        assert ParallelConfig(8, "serial").effective_workers() == 1

    def test_resolve_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        config = resolve_parallel()
        assert (config.workers, config.backend) == (1, "serial")

    def test_resolve_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        config = resolve_parallel()
        assert (config.workers, config.backend) == (3, "thread")

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        config = resolve_parallel(workers=2, backend="process")
        assert (config.workers, config.backend) == (2, "process")

    def test_workers_imply_process_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_parallel(workers=4).backend == "process"

    def test_malformed_env_workers_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "two")
        with pytest.raises(ReproError):
            resolve_parallel()


# ----------------------------------------------------------------------
# pmap / pstarmap semantics
# ----------------------------------------------------------------------
class TestExecutorSemantics:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pmap_maps_in_order(self, backend):
        config = ParallelConfig(2, backend)
        assert pmap(_square, range(10), config) == [
            x * x for x in range(10)
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pstarmap_unpacks_tuples(self, backend):
        config = ParallelConfig(2, backend)
        args = [(i, 10 * i) for i in range(6)]
        assert pstarmap(_add, args, config) == [11 * i for i in range(6)]

    def test_results_follow_submission_order_not_finish_order(self):
        total = 6
        out = pmap(
            lambda i: _sleep_inverse(i, total),
            range(total),
            ParallelConfig(total, "thread"),
        )
        assert out == list(range(total))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_items(self, backend):
        assert pmap(_square, [], ParallelConfig(2, backend)) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_item(self, backend):
        assert pmap(_square, [7], ParallelConfig(2, backend)) == [49]

    def test_one_worker_runs_inline(self):
        # workers=1 never touches a pool, whatever the backend says.
        assert pmap(_square, range(4), ParallelConfig(1, "process")) == [
            0, 1, 4, 9,
        ]

    def test_zero_workers_auto_detect(self):
        config = ParallelConfig(0, "thread")
        assert pmap(_square, range(5), config) == [0, 1, 4, 9, 16]

    def test_none_config_is_serial(self):
        assert pmap(_square, range(3), None) == [0, 1, 4]

    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    def test_nested_fan_out_runs_inline(self, backend):
        out = pmap(_nested_pmap, [3, 4], ParallelConfig(2, backend))
        assert out == [sum(x * x for x in range(3)),
                       sum(x * x for x in range(4))]


class TestExceptionPropagation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_original_type_and_message_survive(self, backend):
        config = ParallelConfig(2, backend)
        with pytest.raises(ValueError, match="boom on 2"):
            pmap(_raise_value_error, range(5), config)

    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    def test_worker_traceback_attached(self, backend):
        config = ParallelConfig(2, backend)
        with pytest.raises(ValueError) as info:
            pmap(_raise_value_error, range(5), config)
        assert "boom on 2" in getattr(info.value, "worker_traceback", "")

    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    def test_task_context_noted(self, backend):
        config = ParallelConfig(2, backend)
        with pytest.raises(ValueError) as info:
            pmap(_raise_value_error, range(5), config, label="mylabel")
        notes = "".join(getattr(info.value, "__notes__", []))
        assert "3/5" in notes and "mylabel" in notes

    def test_unpicklable_exception_becomes_parallel_error(self):
        config = ParallelConfig(2, "process")
        with pytest.raises((ParallelError, _Unpicklable)) as info:
            pmap(_raise_unpicklable, range(3), config)
        assert "unpicklable" in str(info.value)

    def test_thread_backend_keeps_unpicklable_exception(self):
        config = ParallelConfig(2, "thread")
        with pytest.raises(_Unpicklable):
            pmap(_raise_unpicklable, range(3), config)


# ----------------------------------------------------------------------
# Backend equivalence on the real algorithms (satellite 1)
# ----------------------------------------------------------------------
def _pool(backend):
    return ParallelConfig(3, backend)


class TestRCutEquivalence:
    @given(partitionable_hypergraphs(), st.integers(0, 1000))
    @settings(max_examples=12, deadline=None)
    def test_all_backends_identical(self, h, seed):
        config = RCutConfig(restarts=4, seed=seed)
        serial = rcut(h, config)
        for backend in POOL_BACKENDS:
            parallel = rcut(
                h,
                RCutConfig(restarts=4, seed=seed, parallel=_pool(backend)),
            )
            assert fingerprint(parallel) == fingerprint(serial)

    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    def test_fixed_circuit(self, backend, two_cluster_hypergraph):
        h = two_cluster_hypergraph
        serial = rcut(h, RCutConfig(restarts=6, seed=3))
        parallel = rcut(
            h, RCutConfig(restarts=6, seed=3, parallel=_pool(backend))
        )
        assert fingerprint(parallel) == fingerprint(serial)
        assert parallel.details["restarts"] == 6

    def test_restart_prefix_stability(self):
        """Growing ``restarts`` never changes earlier restarts."""
        h = random_hypergraph(5, num_modules=14, num_nets=18)
        small = rcut(h, RCutConfig(restarts=3, seed=9))
        large = rcut(h, RCutConfig(restarts=8, seed=9))
        assert large.details["runs"][:3] == small.details["runs"]

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_restart_prefix_stability_any_seed(self, seed):
        h = random_hypergraph(1, num_modules=12, num_nets=15)
        small = rcut(h, RCutConfig(restarts=2, seed=seed))
        large = rcut(h, RCutConfig(restarts=5, seed=seed))
        assert large.details["runs"][:2] == small.details["runs"]


class TestFMEquivalence:
    @given(partitionable_hypergraphs(), st.integers(0, 1000))
    @settings(max_examples=12, deadline=None)
    def test_all_backends_identical(self, h, seed):
        config = FMConfig(seed=seed, starts=3)
        serial = fm_bipartition(h, config)
        for backend in POOL_BACKENDS:
            parallel = fm_bipartition(
                h, FMConfig(seed=seed, starts=3, parallel=_pool(backend))
            )
            assert fingerprint(parallel) == fingerprint(serial)

    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    def test_fixed_circuit(self, backend, two_cluster_hypergraph):
        h = two_cluster_hypergraph
        serial = fm_bipartition(h, FMConfig(seed=1, starts=4))
        parallel = fm_bipartition(
            h, FMConfig(seed=1, starts=4, parallel=_pool(backend))
        )
        assert fingerprint(parallel) == fingerprint(serial)
        assert parallel.details["starts"] == 4

    def test_single_start_matches_historical_path(self):
        """starts=1 must take the exact pre-parallelism code path."""
        h = random_hypergraph(2, num_modules=14, num_nets=18)
        a = fm_bipartition(h, FMConfig(seed=4))
        b = fm_bipartition(h, FMConfig(seed=4, starts=1,
                                       parallel=_pool("thread")))
        assert fingerprint(a) == fingerprint(b)


class TestIGMatchEquivalence:
    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fixed_circuits(self, backend, seed):
        h = random_hypergraph(seed, num_modules=14, num_nets=18)
        serial = ig_match(h, IGMatchConfig(seed=seed))
        parallel = ig_match(
            h, IGMatchConfig(seed=seed, parallel=_pool(backend))
        )
        assert fingerprint(parallel) == fingerprint(serial)

    @given(partitionable_hypergraphs(min_modules=6, max_modules=10),
           st.integers(0, 100))
    @settings(max_examples=8, deadline=None)
    def test_all_backends_identical(self, h, seed):
        try:
            serial = ig_match(h, IGMatchConfig(seed=seed))
        except PartitionError:
            assume(False)
            return
        for backend in POOL_BACKENDS:
            parallel = ig_match(
                h, IGMatchConfig(seed=seed, parallel=_pool(backend))
            )
            assert fingerprint(parallel) == fingerprint(serial)


# ----------------------------------------------------------------------
# Seed determinism for every top-level partitioner (satellite 3)
# ----------------------------------------------------------------------
_PARTITIONERS = {
    "ig-match": lambda h: ig_match(h, IGMatchConfig(seed=5)),
    "ig-vote": lambda h: ig_vote(h, IGVoteConfig(seed=5)),
    "eig1": lambda h: eig1(h, EIG1Config(seed=5)),
    "rcut": lambda h: rcut(h, RCutConfig(restarts=4, seed=5)),
    "fm": lambda h: fm_bipartition(h, FMConfig(seed=5, starts=2)),
    "kl": lambda h: kl_bisection(h, KLConfig(seed=5)),
    "anneal": lambda h: anneal(h, AnnealingConfig(seed=5)),
    "multilevel": lambda h: multilevel_partition(
        h, MultilevelConfig(seed=5)
    ),
}


class TestSeedDeterminism:
    @pytest.mark.parametrize("name", sorted(_PARTITIONERS))
    def test_same_seed_same_result(self, name):
        h = random_hypergraph(8, num_modules=16, num_nets=20)
        run = _PARTITIONERS[name]
        assert fingerprint(run(h)) == fingerprint(run(h))


# ----------------------------------------------------------------------
# Observability under parallelism
# ----------------------------------------------------------------------
class TestObsUnderParallelism:
    def _counters_and_spans(self, backend, workers):
        with obs.isolated():
            with obs.enabled():
                rcut(
                    random_hypergraph(4, num_modules=14, num_nets=18),
                    RCutConfig(
                        restarts=5, seed=2,
                        parallel=ParallelConfig(workers, backend),
                    ),
                )
                return dict(obs.counters()), obs.flatten_totals()

    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    def test_counters_and_span_counts_match_serial(self, backend):
        counters, totals = self._counters_and_spans("serial", 1)
        pcounters, ptotals = self._counters_and_spans(backend, 3)
        assert pcounters == counters
        assert {k: count for k, (_, count) in ptotals.items()} == {
            k: count for k, (_, count) in totals.items()
        }
        assert totals["rcut.restart"][1] == 5

    def test_worker_counters_merge_into_parent(self):
        with obs.isolated():
            with obs.enabled():
                pmap(
                    _count_with_obs,
                    range(6),
                    ParallelConfig(3, "thread"),
                )
                assert obs.counters()["worker.calls"] == 6

    def test_capture_fragment_returns_result_and_counters(self):
        result, fragment = capture_fragment(_count_with_obs, 41)
        assert result == 41
        assert fragment["counters"]["worker.calls"] == 1

    def test_merge_fragment_noop_when_disabled(self):
        _, fragment = capture_fragment(_count_with_obs, 1)
        merge_fragment(fragment)  # obs disabled: must not raise
        merge_fragment(None)

    def test_disabled_obs_adds_no_capture_overhead(self):
        # With obs off, workers must not ship fragments at all; the
        # visible contract is simply that results are unchanged.
        out = pmap(_square, range(8), ParallelConfig(2, "thread"))
        assert out == [x * x for x in range(8)]
