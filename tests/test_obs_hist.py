"""Histogram correctness: buckets, quantiles, merging, Prometheus I/O."""

import math
import random

import pytest

from repro import obs
from repro.obs.hist import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    HistogramSet,
    log_buckets,
)


class TestLogBuckets:
    def test_strictly_increasing(self):
        buckets = log_buckets(1e-4, 100.0, per_decade=4)
        assert all(a < b for a, b in zip(buckets, buckets[1:]))

    def test_span_and_density(self):
        buckets = log_buckets(1e-4, 100.0, per_decade=4)
        assert buckets[0] == pytest.approx(1e-4)
        assert buckets[-1] == pytest.approx(100.0)
        # 6 decades at 4 per decade, inclusive of both ends.
        assert len(buckets) == 25

    def test_default_is_latency_shaped(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(100.0)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            log_buckets(1.0, 0.1)
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(0.1, 1.0, per_decade=0)


class TestBucketBoundaries:
    def test_le_semantics_value_on_boundary_counts_low(self):
        hist = Histogram([1.0, 10.0])
        hist.observe(1.0)
        assert hist.bucket_counts == [1, 0, 0]

    def test_values_land_in_expected_buckets(self):
        hist = Histogram([1.0, 10.0])
        for value in (0.5, 1.0, 2.0, 10.0, 11.0):
            hist.observe(value)
        # <=1: {0.5, 1.0}; <=10: {2.0, 10.0}; +Inf overflow: {11.0}
        assert hist.bucket_counts == [2, 2, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(24.5)

    def test_cumulative_buckets_monotone_and_inf_total(self):
        hist = Histogram(log_buckets(1e-3, 10.0, per_decade=2))
        rng = random.Random(7)
        for _ in range(200):
            hist.observe(rng.uniform(0, 20))
        pairs = hist.cumulative_buckets()
        cumulative = [c for _, c in pairs]
        assert cumulative == sorted(cumulative)
        assert pairs[-1][0] == "+Inf"
        assert pairs[-1][1] == hist.count == 200

    def test_min_max_tracking(self):
        hist = Histogram([1.0])
        hist.observe(0.25)
        hist.observe(4.0)
        assert hist.min == 0.25
        assert hist.max == 4.0


class TestQuantiles:
    def test_empty_histogram(self):
        hist = Histogram(DEFAULT_LATENCY_BUCKETS)
        assert hist.quantile(0.5) is None
        assert hist.percentiles() == {"p50": None, "p95": None, "p99": None}

    def test_single_observation_is_exact(self):
        hist = Histogram(DEFAULT_LATENCY_BUCKETS)
        hist.observe(0.037)
        for q in (0.5, 0.95, 0.99):
            assert hist.quantile(q) == pytest.approx(0.037)

    def test_estimates_close_to_exact(self):
        """Quantile estimates are within one bucket of the true value."""
        boundaries = log_buckets(1e-4, 100.0, per_decade=8)
        hist = Histogram(boundaries)
        rng = random.Random(42)
        values = sorted(rng.lognormvariate(-3, 1.5) for _ in range(5000))
        for value in values:
            hist.observe(value)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = values[int(q * len(values)) - 1]
            estimate = hist.quantile(q)
            # The estimate must land within the bucket containing the
            # exact value: one per_decade=8 step is a factor of ~1.33.
            assert exact / 1.34 <= estimate <= exact * 1.34

    def test_clamped_to_observed_range(self):
        hist = Histogram([1.0, 10.0, 100.0])
        hist.observe(3.0)
        hist.observe(4.0)
        assert hist.quantile(0.01) >= hist.min
        assert hist.quantile(0.999) <= hist.max

    def test_overflow_bucket_reports_max(self):
        hist = Histogram([1.0])
        hist.observe(50.0)
        hist.observe(70.0)
        assert hist.quantile(0.99) == pytest.approx(70.0)


class TestMerge:
    @staticmethod
    def _filled(seed, n=300):
        hist = Histogram(DEFAULT_LATENCY_BUCKETS)
        rng = random.Random(seed)
        for _ in range(n):
            hist.observe(rng.lognormvariate(-4, 2))
        return hist

    def test_merge_equals_combined_observation(self):
        a, b = self._filled(1), self._filled(2)
        combined = Histogram(DEFAULT_LATENCY_BUCKETS)
        rng1, rng2 = random.Random(1), random.Random(2)
        for _ in range(300):
            combined.observe(rng1.lognormvariate(-4, 2))
        for _ in range(300):
            combined.observe(rng2.lognormvariate(-4, 2))
        merged = Histogram(DEFAULT_LATENCY_BUCKETS)
        merged.merge(a)
        merged.merge(b)
        assert merged.bucket_counts == combined.bucket_counts
        assert merged.count == combined.count
        assert merged.sum == pytest.approx(combined.sum)
        assert merged.min == combined.min
        assert merged.max == combined.max

    def test_merge_associative(self):
        a, b, c = self._filled(1), self._filled(2), self._filled(3)

        def merge_pair(x, y):
            out = Histogram(DEFAULT_LATENCY_BUCKETS)
            out.merge(x)
            out.merge(y)
            return out

        left = merge_pair(merge_pair(a, b), c)
        right = merge_pair(a, merge_pair(b, c))
        assert left.bucket_counts == right.bucket_counts
        assert left.count == right.count
        assert left.sum == pytest.approx(right.sum)
        assert left.min == right.min and left.max == right.max

    def test_merge_rejects_mismatched_boundaries(self):
        a = Histogram([1.0, 2.0])
        b = Histogram([1.0, 3.0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_empty_is_identity(self):
        a = self._filled(5)
        before = list(a.bucket_counts)
        a.merge(Histogram(DEFAULT_LATENCY_BUCKETS))
        assert a.bucket_counts == before

    def test_merge_associative_at_high_counts(self):
        # The load client merges per-outcome shards holding tens of
        # thousands of observations; bucket counts must agree exactly
        # under any fold order (float sums only approximately).
        shards = [self._filled(seed, n=20_000) for seed in range(8)]

        def fold(hists):
            out = Histogram(DEFAULT_LATENCY_BUCKETS)
            for h in hists:
                out.merge(h)
            return out

        left = fold(shards)
        right = fold(list(reversed(shards)))
        interleaved = fold(shards[::2] + shards[1::2])
        assert left.count == right.count == interleaved.count == 160_000
        assert (
            left.bucket_counts
            == right.bucket_counts
            == interleaved.bucket_counts
        )
        assert left.min == right.min == interleaved.min
        assert left.max == right.max == interleaved.max
        assert left.sum == pytest.approx(right.sum, rel=1e-9)
        assert left.sum == pytest.approx(interleaved.sum, rel=1e-9)
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == right.quantile(q)
            assert left.quantile(q) == interleaved.quantile(q)


class TestSingleBucketQuantiles:
    def test_all_mass_in_one_interior_bucket(self):
        # Every observation lands in (1, 10]: all quantiles must come
        # from that bucket and stay clamped to the observed min/max.
        hist = Histogram([1.0, 10.0, 100.0])
        for value in (2.0, 3.0, 5.0, 7.0):
            hist.observe(value)
        for q in (0.01, 0.5, 0.99):
            estimate = hist.quantile(q)
            assert 2.0 <= estimate <= 7.0

    def test_single_boundary_histogram(self):
        # A degenerate two-bucket histogram [<=1, >1] still answers
        # quantiles sanely from either side.
        low = Histogram([1.0])
        for value in (0.2, 0.4, 0.9):
            low.observe(value)
        assert 0.2 <= low.quantile(0.5) <= 0.9
        assert low.quantile(0.99) <= 0.9

        high = Histogram([1.0])
        for value in (3.0, 4.0):
            high.observe(value)
        # Overflow bucket has no upper boundary: the observed max is
        # the only honest answer.
        assert high.quantile(0.5) == pytest.approx(4.0)
        assert high.quantile(0.99) == pytest.approx(4.0)

    def test_repeated_identical_value_is_exact(self):
        hist = Histogram(DEFAULT_LATENCY_BUCKETS)
        for _ in range(1000):
            hist.observe(0.125)
        for q in (0.01, 0.5, 0.99, 0.999):
            assert hist.quantile(q) == pytest.approx(0.125)


class TestReplayAgreement:
    def test_client_and_server_views_agree_on_replayed_log(self):
        # Replay one request log into two independently-sharded
        # HistogramSets: the "client" keys series by algorithm+outcome
        # and observes sequentially; the "server" shards the same
        # latencies across 4 worker histograms in arrival order and
        # merges.  Identical buckets in, identical distributions out —
        # this is the invariant that makes the client-vs-server
        # latency comparison in BENCH_serving.json meaningful.
        rng = random.Random(42)
        log = [
            {
                "latency_s": rng.lognormvariate(-4, 1.5),
                "algorithm": rng.choice(["fm", "kl", "eig1"]),
            }
            for _ in range(5000)
        ]

        client = HistogramSet()
        for entry in log:
            client.observe(
                "request.duration_seconds",
                entry["latency_s"],
                algorithm=entry["algorithm"],
                outcome="ok",
            )

        workers = [HistogramSet() for _ in range(4)]
        for i, entry in enumerate(log):
            workers[i % 4].observe(
                "request.duration_seconds",
                entry["latency_s"],
                algorithm=entry["algorithm"],
            )
        server = Histogram(DEFAULT_LATENCY_BUCKETS)
        for worker in workers:
            merged = worker.merged("request.duration_seconds")
            if merged is not None:
                server.merge(merged)

        client_view = client.merged("request.duration_seconds")
        assert client_view.count == server.count == len(log)
        assert client_view.bucket_counts == server.bucket_counts
        assert client_view.min == server.min
        assert client_view.max == server.max
        assert client_view.sum == pytest.approx(server.sum, rel=1e-9)
        for q in (0.5, 0.95, 0.99):
            assert client_view.quantile(q) == server.quantile(q)

    def test_per_algorithm_slices_agree(self):
        rng = random.Random(7)
        log = [
            (rng.choice(["fm", "kl"]), rng.lognormvariate(-3, 1))
            for _ in range(2000)
        ]
        a, b = HistogramSet(), HistogramSet()
        for algorithm, latency in log:
            a.observe("d", latency, algorithm=algorithm)
        for algorithm, latency in reversed(log):
            b.observe("d", latency, algorithm=algorithm)
        for algorithm in ("fm", "kl"):
            assert (
                a.get("d", algorithm=algorithm).bucket_counts
                == b.get("d", algorithm=algorithm).bucket_counts
            )


class TestHistogramSet:
    def test_labels_key_distinct_series(self):
        hists = HistogramSet()
        hists.observe("x.duration_seconds", 0.1, algorithm="fm")
        hists.observe("x.duration_seconds", 0.2, algorithm="kl")
        hists.observe("x.duration_seconds", 0.3, algorithm="fm")
        snap = hists.snapshot()
        assert len(snap["x.duration_seconds"]) == 2
        by_algo = {
            series["labels"]["algorithm"]: series
            for series in snap["x.duration_seconds"]
        }
        assert by_algo["fm"]["count"] == 2
        assert by_algo["kl"]["count"] == 1

    def test_merged_collapses_labels(self):
        hists = HistogramSet()
        hists.observe("y", 0.1, source="memory")
        hists.observe("y", 0.4, source="disk")
        merged = hists.merged("y")
        assert merged.count == 2
        assert merged.min == pytest.approx(0.1)
        assert merged.max == pytest.approx(0.4)
        assert hists.merged("unknown") is None

    def test_snapshot_is_json_safe_and_sorted(self):
        import json

        hists = HistogramSet()
        hists.observe("b", 1.0)
        hists.observe("a", 2.0, z="1", a="2")
        snap = hists.snapshot()
        assert list(snap) == ["a", "b"]
        json.dumps(snap)  # must not raise


class TestPrometheusRoundTrip:
    @staticmethod
    def _doc():
        hists = HistogramSet()
        hists.observe("service.request.duration_seconds", 0.01,
                      algorithm="fm", source="computed")
        hists.observe("service.request.duration_seconds", 0.3,
                      algorithm="fm", source="memory")
        return {
            "service": {"service.requests": 2, "service.cache.hit": 1},
            "cache": {"memory_hits": 1, "misses": 1, "memory_entries": 1,
                      "memory_used_bytes": 512,
                      "memory_budget_bytes": 1024, "disk_enabled": False},
            "jobs": {"submitted": 3, "pending": 1, "running": 0},
            "slow": {"threshold_s": 1.0, "capacity": 32, "held": 0,
                     "recorded": 0},
            "histograms": hists.snapshot(),
        }

    def test_render_parses_cleanly(self):
        text = obs.render_prometheus(self._doc())
        samples = obs.parse_prometheus_text(text)
        assert samples["repro_service_requests_total"] == [({}, 2.0)]
        assert samples["repro_cache_memory_entries"] == [({}, 1.0)]
        counts = samples["repro_service_request_duration_seconds_count"]
        assert sum(v for _, v in counts) == 2.0

    def test_histogram_buckets_cumulative_with_inf(self):
        text = obs.render_prometheus(self._doc())
        samples = obs.parse_prometheus_text(text)
        buckets = samples["repro_service_request_duration_seconds_bucket"]
        inf = [
            (labels, v) for labels, v in buckets if labels["le"] == "+Inf"
        ]
        assert len(inf) == 2 and all(v == 1.0 for _, v in inf)

    def test_parser_rejects_missing_type(self):
        with pytest.raises(ValueError, match="TYPE"):
            obs.parse_prometheus_text("untyped_metric 1\n")

    def test_parser_rejects_bad_sample_line(self):
        with pytest.raises(ValueError, match="line 2"):
            obs.parse_prometheus_text(
                "# TYPE x counter\nx{oops 1\n"
            )

    def test_parser_rejects_nonmonotone_histogram(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 5\n"
            "h_sum 1\n"
        )
        with pytest.raises(ValueError, match="decreased"):
            obs.parse_prometheus_text(bad)

    def test_parser_rejects_missing_inf_bucket(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            "h_count 5\n"
            "h_sum 1\n"
        )
        with pytest.raises(ValueError, match=r"\+Inf"):
            obs.parse_prometheus_text(bad)

    def test_parser_rejects_inf_count_mismatch(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_count 5\n"
            "h_sum 1\n"
        )
        with pytest.raises(ValueError, match="_count"):
            obs.parse_prometheus_text(bad)

    def test_inf_value_formatting(self):
        text = obs.render_prometheus(
            {"slow": {"threshold_s": math.inf}}
        )
        assert "repro_slow_requests_threshold_s +Inf" in text
        obs.parse_prometheus_text(text)
