"""Tests for the Lanczos eigensolver, cross-validated against dense eigh."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SpectralError
from repro.spectral import lanczos_extreme
from tests.conftest import connected_random_graph
from repro.graph import laplacian_matrix


def random_symmetric(seed, n):
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    return (m + m.T) / 2


class TestAgainstDense:
    @pytest.mark.parametrize("seed", range(4))
    def test_largest_eigenvalues(self, seed):
        a = random_symmetric(seed, 30)
        dense = np.linalg.eigvalsh(a)
        result = lanczos_extreme(sp.csr_matrix(a), k=3, which="LA", seed=seed)
        assert np.allclose(result.eigenvalues, dense[-3:], atol=1e-7)

    @pytest.mark.parametrize("seed", range(4))
    def test_smallest_eigenvalues(self, seed):
        a = random_symmetric(seed + 100, 25)
        dense = np.linalg.eigvalsh(a)
        result = lanczos_extreme(sp.csr_matrix(a), k=2, which="SA", seed=seed)
        assert np.allclose(result.eigenvalues, dense[:2], atol=1e-7)

    def test_eigenvectors_satisfy_equation(self):
        a = random_symmetric(7, 40)
        result = lanczos_extreme(sp.csr_matrix(a), k=2, which="LA")
        for i in range(2):
            vec = result.eigenvectors[:, i]
            val = result.eigenvalues[i]
            assert np.linalg.norm(a @ vec - val * vec) < 1e-6

    def test_eigenvectors_orthonormal(self):
        a = random_symmetric(3, 40)
        result = lanczos_extreme(sp.csr_matrix(a), k=3, which="LA")
        gram = result.eigenvectors.T @ result.eigenvectors
        assert np.allclose(gram, np.eye(3), atol=1e-7)


class TestLaplacians:
    def test_laplacian_smallest_is_zero(self):
        g = connected_random_graph(2, num_vertices=20)
        q = laplacian_matrix(g)
        result = lanczos_extreme(q, k=2, which="SA", seed=1)
        assert abs(result.eigenvalues[0]) < 1e-8
        assert result.eigenvalues[1] > 1e-8  # connected => lambda_2 > 0

    def test_disconnected_laplacian_multiplicity(self):
        # Two disjoint triangles: eigenvalue 0 has multiplicity 2.
        from repro.graph import Graph

        g = Graph(6)
        for base in (0, 3):
            g.add_edge(base, base + 1)
            g.add_edge(base + 1, base + 2)
            g.add_edge(base, base + 2)
        result = lanczos_extreme(laplacian_matrix(g), k=2, which="SA")
        assert np.allclose(result.eigenvalues, [0.0, 0.0], atol=1e-8)

    def test_matvec_callable_interface(self):
        a = random_symmetric(11, 20)
        result = lanczos_extreme(lambda x: a @ x, k=1, which="LA", n=20)
        dense_max = np.linalg.eigvalsh(a)[-1]
        assert result.eigenvalues[0] == pytest.approx(dense_max, abs=1e-7)


class TestValidation:
    def test_callable_needs_n(self):
        with pytest.raises(SpectralError):
            lanczos_extreme(lambda x: x, k=1)

    def test_bad_which(self):
        with pytest.raises(SpectralError):
            lanczos_extreme(np.eye(3), k=1, which="XX")

    def test_k_too_large(self):
        with pytest.raises(SpectralError):
            lanczos_extreme(np.eye(3), k=5)

    def test_k_nonpositive(self):
        with pytest.raises(SpectralError):
            lanczos_extreme(np.eye(3), k=0)

    def test_non_square_rejected(self):
        with pytest.raises(SpectralError):
            lanczos_extreme(np.ones((2, 3)), k=1)

    def test_deterministic_given_seed(self):
        a = random_symmetric(5, 25)
        r1 = lanczos_extreme(sp.csr_matrix(a), k=2, seed=9)
        r2 = lanczos_extreme(sp.csr_matrix(a), k=2, seed=9)
        assert np.array_equal(r1.eigenvalues, r2.eigenvalues)
        assert np.array_equal(r1.eigenvectors, r2.eigenvectors)

    def test_identity_matrix(self):
        result = lanczos_extreme(sp.identity(10, format="csr"), k=2)
        assert np.allclose(result.eigenvalues, [1.0, 1.0])
