"""The vectorised Phase II must match the pure-Python reference exactly."""

import pytest

from repro.intersection import intersection_graph
from repro.matching import IncrementalMatching
from repro.partitioning.igmatch import (
    _SweepArrays,
    _evaluate_split,
    _evaluate_split_vectorised,
)
from repro.spectral import spectral_ordering
from tests.conftest import random_hypergraph


@pytest.mark.parametrize("seed", range(8))
def test_vectorised_equals_reference(seed):
    h = random_hypergraph(seed, num_modules=18, num_nets=22)
    graph = intersection_graph(h, "paper")
    order = spectral_ordering(graph, seed=0)
    matcher = IncrementalMatching(graph)
    arrays = _SweepArrays(h)
    for index, net in enumerate(order[:-1]):
        matcher.move_to_right(net)
        codes = matcher.classify()
        ref_eval, ref_assign = _evaluate_split(
            h, codes, index + 1, matcher.matching_size
        )
        vec_eval, vec_assign = _evaluate_split_vectorised(
            arrays, codes, index + 1, matcher.matching_size
        )
        assert ref_eval == vec_eval
        if ref_assign is None:
            assert vec_assign is None
        else:
            assert list(ref_assign) == list(vec_assign)


def test_degenerate_nets_agree():
    """Nets of size 0/1 must be ignored identically by both paths."""
    from repro.hypergraph import Hypergraph

    h = Hypergraph([[0, 1], [2], [], [1, 2], [0, 2]], num_modules=3)
    graph = intersection_graph(h, "paper")
    matcher = IncrementalMatching(graph)
    arrays = _SweepArrays(h)
    for rank, net in enumerate([0, 3], start=1):
        matcher.move_to_right(net)
        codes = matcher.classify()
        ref = _evaluate_split(h, codes, rank, matcher.matching_size)
        vec = _evaluate_split_vectorised(
            arrays, codes, rank, matcher.matching_size
        )
        assert ref[0] == vec[0]


def test_large_circuit_same_final_partition(medium_circuit, monkeypatch):
    """End-to-end: forcing the reference evaluator on a circuit above
    the vectorisation threshold yields the identical partition."""
    from repro.partitioning import IGMatchConfig, ig_match
    from repro.partitioning import igmatch as igmatch_module

    fast = ig_match(medium_circuit, IGMatchConfig(seed=0))

    # `_SweepArrays(h)` returning None routes every split through the
    # pure-Python reference path.
    monkeypatch.setattr(
        igmatch_module, "_SweepArrays", lambda h, *args: None
    )
    reference = ig_match(medium_circuit, IGMatchConfig(seed=0))
    assert fast.partition.sides == reference.partition.sides
    assert fast.nets_cut == reference.nets_cut
