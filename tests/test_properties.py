"""Cross-cutting property-based tests (hypothesis).

Complements the per-module suites with randomized invariants over the
whole pipeline: serialisation roundtrips, transformation conservation
laws, metric identities, and engine/metric agreement.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import (
    drop_degenerate_nets,
    from_json,
    induced_subhypergraph,
    loads_net,
    dumps_net,
    merge_modules,
    net_size_histogram,
    to_json,
)
from repro.intersection import intersection_graph, shared_module_map
from repro.partitioning import FMEngine, ratio_cut_of_sides
from repro.partitioning.metrics import net_cut_count
from tests.conftest import hypergraph_strategy


class TestSerializationRoundtrips:
    @settings(max_examples=40, deadline=None)
    @given(hypergraph_strategy())
    def test_json_roundtrip(self, h):
        assert from_json(to_json(h)) == h

    @settings(max_examples=40, deadline=None)
    @given(hypergraph_strategy())
    def test_net_format_roundtrip(self, h):
        assert loads_net(dumps_net(h)) == h


class TestTransformInvariants:
    @settings(max_examples=40, deadline=None)
    @given(hypergraph_strategy())
    def test_drop_degenerate_preserves_cut_counts(self, h):
        sides = [v % 2 for v in range(h.num_modules)]
        clean, _ = drop_degenerate_nets(h)
        assert net_cut_count(h, sides) == net_cut_count(clean, sides)

    @settings(max_examples=40, deadline=None)
    @given(hypergraph_strategy(min_modules=4))
    def test_merge_conserves_area(self, h):
        # Pair up modules arbitrarily.
        clusters = [
            [v for v in (2 * i, 2 * i + 1) if v < h.num_modules]
            for i in range((h.num_modules + 1) // 2)
        ]
        coarse, assignment = merge_modules(h, clusters)
        assert coarse.total_area == pytest.approx(h.total_area)
        assert len(assignment) == h.num_modules

    @settings(max_examples=40, deadline=None)
    @given(hypergraph_strategy(min_modules=5))
    def test_induced_sub_never_grows(self, h):
        subset = list(range(0, h.num_modules, 2))
        if len(subset) < 2:
            return
        sub, module_map, net_map = induced_subhypergraph(h, subset)
        assert sub.num_modules == len(subset)
        assert sub.num_nets <= h.num_nets
        for new_net, old_net in enumerate(net_map):
            assert sub.net_size(new_net) <= h.net_size(old_net)


class TestIntersectionInvariants:
    @settings(max_examples=40, deadline=None)
    @given(hypergraph_strategy())
    def test_edge_iff_nonempty_share(self, h):
        g = intersection_graph(h, "unit")
        shared = shared_module_map(h)
        assert {(u, v) for u, v, _ in g.edges()} == set(shared)

    @settings(max_examples=40, deadline=None)
    @given(hypergraph_strategy())
    def test_weights_positive_and_symmetric_input(self, h):
        g = intersection_graph(h, "paper")
        for u, v, w in g.edges():
            assert w > 0
            assert g.weight(v, u) == w


class TestMetricIdentities:
    @settings(max_examples=40, deadline=None)
    @given(hypergraph_strategy(min_modules=4), st.integers(0, 1000))
    def test_ratio_cut_flip_invariant(self, h, seed):
        import random

        rng = random.Random(seed)
        sides = [rng.randint(0, 1) for _ in range(h.num_modules)]
        if len(set(sides)) < 2:
            sides[0] = 1 - sides[0]
        flipped = [1 - s for s in sides]
        assert ratio_cut_of_sides(h, sides) == pytest.approx(
            ratio_cut_of_sides(h, flipped)
        )

    @settings(max_examples=40, deadline=None)
    @given(hypergraph_strategy(min_modules=4), st.integers(0, 1000))
    def test_engine_cut_matches_metric(self, h, seed):
        import random

        rng = random.Random(seed)
        sides = [rng.randint(0, 1) for _ in range(h.num_modules)]
        engine = FMEngine(h, sides)
        assert engine.cut == net_cut_count(h, sides)
        # And stays in sync through arbitrary moves.
        for _ in range(5):
            v = rng.randrange(h.num_modules)
            engine.move(v)
        assert engine.cut == net_cut_count(h, engine.sides)


class TestHistogramInvariants:
    @settings(max_examples=40, deadline=None)
    @given(hypergraph_strategy())
    def test_histogram_partition_of_nets(self, h):
        hist = net_size_histogram(h)
        assert sum(hist.values()) == h.num_nets
        assert all(size >= 2 for size in hist)  # strategy has no tiny nets
