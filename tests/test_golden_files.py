"""Golden-file tests: checked-in sample circuits through the front ends.

These freeze the exact interpretation of each supported format — any
parser change that silently alters the structure of a known file fails
here.
"""

from pathlib import Path

import pytest

from repro.hypergraph import load_bookshelf, load_hgr, load_verilog
from repro.partitioning import exact_min_ratio_cut, ig_match

DATA = Path(__file__).parent / "data"


class TestHalfAdder:
    def test_structure(self):
        h = load_verilog(DATA / "half_adder.v")
        assert h.num_modules == 6  # 4 pads + 2 gates
        assert h.num_nets == 4
        assert h.num_pins == 10


class TestC17:
    @pytest.fixture
    def c17(self):
        return load_verilog(DATA / "c17.v")

    def test_structure(self, c17):
        # 7 pads + 6 gates; 11 nets (5 PIs, 4 internal, 2 POs).
        assert c17.num_modules == 13
        assert c17.num_nets == 11
        gates = [
            v
            for v in range(c17.num_modules)
            if not c17.module_name(v).startswith("pad:")
        ]
        assert len(gates) == 6

    def test_fanouts(self, c17):
        # Net n11 feeds g16 and g19 plus its driver g11: 3 pins.
        names = {
            c17.net_name(j): c17.net_size(j)
            for j in range(c17.num_nets)
        }
        assert names["n11"] == 3
        assert names["n3"] == 3  # pad + g10 + g11
        assert names["n22"] == 2  # g22 + pad

    def test_partitioning_matches_exact(self, c17):
        heuristic = ig_match(c17)
        optimal = exact_min_ratio_cut(c17)
        assert heuristic.ratio_cut <= 1.5 * optimal.ratio_cut + 1e-12


class TestSampleHgr:
    def test_structure(self):
        h = load_hgr(DATA / "sample.hgr")
        assert h.num_modules == 7
        assert h.num_nets == 5
        assert h.pins(2) == (3, 4, 5)  # 1-indexed "4 5 6"

    def test_clusters_found(self):
        h = load_hgr(DATA / "sample.hgr")
        result = ig_match(h)
        assert result.nets_cut == 1
        # Two optimal 1-cut splits exist (cut the bridge net {2,3} or
        # the net {3,4,5}); both give ratio 1/12.
        assert result.ratio_cut == pytest.approx(1 / 12)
        assert sorted(result.partition.u_modules) in (
            [0, 1, 2], [0, 1, 2, 3], [3, 4, 5, 6], [4, 5, 6]
        )


class TestSampleBookshelf:
    def test_structure(self):
        h = load_bookshelf(DATA / "sample.nodes", DATA / "sample.nets")
        assert h.num_modules == 6
        assert h.num_nets == 3
        assert h.module_area(0) == 4.0  # u1: 2x2
        assert h.module_area(4) == 0.0  # terminal
        assert h.net_name(0) == "n_in"
        assert h.net_size(0) == 3
