"""Tests for the exact partitioners, and heuristic-vs-optimal checks."""

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partitioning import (
    IGMatchConfig,
    RCutConfig,
    exact_min_cut_bisection,
    exact_min_ratio_cut,
    ig_match,
    ig_vote,
    rcut,
)
from repro.partitioning.metrics import is_bisection
from tests.conftest import random_hypergraph


class TestExactRatioCut:
    def test_two_cluster_optimum(self, two_cluster_hypergraph):
        result = exact_min_ratio_cut(two_cluster_hypergraph)
        assert result.nets_cut == 1
        assert result.ratio_cut == pytest.approx(1 / 16)
        assert result.details["optimal"]

    def test_path_netlist(self):
        # Chain of 2-pin nets: optimum cuts one net in the middle.
        h = Hypergraph([[i, i + 1] for i in range(7)])
        result = exact_min_ratio_cut(h)
        assert result.nets_cut == 1
        assert result.ratio_cut == pytest.approx(1 / 16)

    def test_size_limit(self):
        h = Hypergraph([[i, i + 1] for i in range(30)])
        with pytest.raises(PartitionError):
            exact_min_ratio_cut(h)

    def test_too_small(self):
        with pytest.raises(PartitionError):
            exact_min_ratio_cut(Hypergraph([], num_modules=1))

    @pytest.mark.parametrize("seed", range(8))
    def test_heuristics_never_beat_exact(self, seed):
        h = random_hypergraph(seed, num_modules=11, num_nets=13)
        optimum = exact_min_ratio_cut(h).ratio_cut
        for heuristic in (
            ig_match(h, IGMatchConfig()),
            ig_vote(h),
            rcut(h, RCutConfig(restarts=4, seed=seed)),
        ):
            assert heuristic.ratio_cut >= optimum - 1e-12

    @pytest.mark.parametrize("seed", range(6))
    def test_igmatch_usually_near_optimal(self, seed):
        """On clustered instances IG-Match should land within 2x of the
        true optimum (it is exact on the matching subproblem, heuristic
        only in the ordering)."""
        from repro.bench import generate_hierarchical

        h = generate_hierarchical(
            num_modules=16, num_nets=18, natural_fraction=0.4,
            crossing_nets=1, subcluster_size=8, noise=0.0,
            seed=seed,
        )
        optimum = exact_min_ratio_cut(h).ratio_cut
        heuristic = ig_match(h).ratio_cut
        assert heuristic <= 2.5 * optimum + 1e-12

    def test_theorem1_respected_by_optimum(self):
        """The true hypergraph optimum, evaluated on the clique-model
        graph cut, respects the spectral lower bound."""
        from repro.analysis import ratio_cut_lower_bound
        from repro.netmodels import get_model
        from repro.partitioning.metrics import graph_edge_cut

        h = random_hypergraph(3, num_modules=10, num_nets=14)
        g = get_model("clique").to_graph(h)
        from repro.graph import connected_components

        if len(connected_components(g)) != 1:
            pytest.skip("instance disconnected")
        bound = ratio_cut_lower_bound(g).bound
        best = float("inf")
        for mask in range(1, 2**9):
            u_mask = (mask << 1) | 1
            sides = [0 if u_mask >> v & 1 else 1 for v in range(10)]
            u = sides.count(0)
            if u in (0, 10):
                continue
            cost = graph_edge_cut(g, sides) / (u * (10 - u))
            best = min(best, cost)
        assert best >= bound - 1e-9


class TestExactBisection:
    def test_two_cluster_bisection(self, two_cluster_hypergraph):
        result = exact_min_cut_bisection(two_cluster_hypergraph)
        assert result.nets_cut == 1
        assert is_bisection(result.partition.sides)

    def test_odd_module_count(self):
        h = Hypergraph([[i, i + 1] for i in range(6)])  # 7 modules
        result = exact_min_cut_bisection(h)
        assert is_bisection(result.partition.sides)
        assert result.nets_cut == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_fm_never_beats_exact_bisection(self, seed):
        from repro.partitioning import FMConfig, fm_bipartition

        h = random_hypergraph(seed + 20, num_modules=12, num_nets=14)
        optimum = exact_min_cut_bisection(h)
        heuristic = fm_bipartition(
            h, FMConfig(balance_tolerance=0.0, seed=seed)
        )
        if is_bisection(heuristic.partition.sides):
            assert heuristic.nets_cut >= optimum.nets_cut
