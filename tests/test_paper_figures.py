"""Worked structural examples mirroring the paper's Figures 1-4.

The original figures are schematic images, so the exact instances cannot
be copied; these tests encode the *constructions* each figure
illustrates, on hand-built instances where every quantity is computed by
hand.
"""

import pytest

from repro.hypergraph import Hypergraph
from repro.intersection import intersection_graph
from repro.matching import (
    BipartiteGraph,
    IncrementalMatching,
    augmenting_path_matching,
    decompose_bipartite,
    matching_size,
)
from repro.matching.incremental import VertexClass
from repro.partitioning import IGMatchConfig, ig_match_sweep


class TestFigure1Construction:
    """Figure 1: a six-net netlist and its intersection graph with the
    paper's edge weights."""

    @pytest.fixture
    def six_net_circuit(self):
        # Six nets over nine modules; hand-picked so every weight rule
        # (shared-module degree, net sizes, multiple shares) is hit.
        nets = [
            [0, 1, 2],     # s0
            [2, 3],        # s1
            [3, 4, 5],     # s2
            [5, 6],        # s3
            [6, 7, 8],     # s4
            [0, 8],        # s5
        ]
        return Hypergraph(nets, name="fig1")

    def test_intersection_edges(self, six_net_circuit):
        g = intersection_graph(six_net_circuit, "paper")
        # Ring structure: consecutive nets share exactly one module.
        expected = {(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)}
        assert {(u, v) for u, v, _ in g.edges()} == expected

    def test_hand_computed_weights(self, six_net_circuit):
        g = intersection_graph(six_net_circuit, "paper")
        # s0 (size 3) and s1 (size 2) share module 2 of degree 2:
        # w = 1/(2-1) * (1/3 + 1/2) = 5/6.
        assert g.weight(0, 1) == pytest.approx(5 / 6)
        # s1 (2) and s2 (3) share module 3 (degree 2): same 5/6.
        assert g.weight(1, 2) == pytest.approx(5 / 6)
        # s3 (2) and s4 (3) share module 6 (degree 2): 5/6.
        assert g.weight(3, 4) == pytest.approx(5 / 6)
        # s4 (3) and s5 (2) share module 8 (degree 2): 5/6.
        assert g.weight(4, 5) == pytest.approx(5 / 6)

    def test_no_reverse_construction_needed(self, six_net_circuit):
        # The IG is uniquely determined by H (the paper notes the
        # converse fails): rebuilding from the same H gives identical
        # weights.
        a = intersection_graph(six_net_circuit, "paper")
        b = intersection_graph(six_net_circuit, "paper")
        assert sorted(a.edges()) == sorted(b.edges())


class TestFigure2InducedBipartite:
    """Figure 2: splitting the IG vertex set induces the bipartite graph
    of crossing edges."""

    def test_crossing_edges_only(self):
        h = Hypergraph(
            [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]], name="chain"
        )
        graph = intersection_graph(h, "paper")
        matcher = IncrementalMatching(graph)
        # Move nets 0 and 1 to R: crossing edges are exactly the IG
        # edges between {0,1} and {2,3,4} = (1,2) only.
        matcher.move_to_right(0)
        matcher.move_to_right(1)
        snap = matcher.snapshot()
        assert set(snap.edges()) == {(2, 1)}


class TestFigure3EvenOddSets:
    """Figure 3: the matching M and the sets U_L, U_R, Even, Odd and the
    core B'."""

    def test_hand_built_decomposition(self):
        # L = {a, b, c}, R = {x, y, z}
        # Edges: a-x, b-x, b-y, c-z.  MM = {(a,x),(b,y),(c,z)} size 3?
        # No: a-x, b-y, c-z is a perfect matching, so no unmatched
        # vertices and everything is core.
        b = BipartiteGraph("abc", "xyz")
        b.add_edge("a", "x")
        b.add_edge("b", "x")
        b.add_edge("b", "y")
        b.add_edge("c", "z")
        match = augmenting_path_matching(b)
        assert matching_size(match) == 3
        d = decompose_bipartite(b, match)
        assert d.core_left == {"a", "b", "c"}
        assert d.core_right == {"x", "y", "z"}

    def test_unmatched_vertices_seed_even_sets(self):
        # L = {a, b}, R = {x}; edges a-x, b-x.  MM size 1; one of a,b
        # unmatched -> U_L nonempty, x becomes Odd(L) (a loser).
        b = BipartiteGraph("ab", "x")
        b.add_edge("a", "x")
        b.add_edge("b", "x")
        match = augmenting_path_matching(b)
        d = decompose_bipartite(b, match)
        assert d.even_left == {"a", "b"}
        assert d.odd_left == {"x"}
        assert d.critical_set == {"x"}
        assert d.maximum_independent_set() == {"a", "b"}


class TestFigure4LosersNotCut:
    """Figure 4: the completed partition can cut fewer nets than the
    maximum-matching bound, because a loser's modules may all land on
    one side."""

    def test_paper_phenomenon_instance(self):
        # Hand-built instance where a loser ends up uncut.
        #   nets: W1={0,1}, W2={1,2}, v={0,2}, X={3,4}
        # Sweep order v, X, W1, W2.  At the split {v, X} | {W1, W2}:
        # crossing edges are v-W1 (module 0) and v-W2 (module 2), the
        # maximum matching has size 1 and v is the unique loser (its
        # matching partner and the unmatched L vertex are both winners).
        # Winners W1, W2 pin modules {0,1,2} to the L side and winner X
        # pins {3,4} to the R side — so loser v = {0,2} lands entirely
        # on the L side and is NOT cut: 0 nets cut < matching size 1.
        h = Hypergraph(
            [[0, 1], [1, 2], [0, 2], [3, 4]], name="fig4"
        )
        evaluations, partition = ig_match_sweep(
            h, IGMatchConfig(check_invariants=True), order=[2, 3, 0, 1]
        )
        assert partition is not None
        assert partition.num_nets_cut == 0
        by_rank = {e.rank: e for e in evaluations}
        assert by_rank[2].matching_size == 1
        assert by_rank[2].nets_cut == 0  # strictly below the bound
