"""Tests for the linked-list FM bucket structure, cross-validated
against the dict-based implementation through identical traces."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.partitioning import GainBuckets, LinkedGainBuckets


class TestBasics:
    def test_insert_and_len(self):
        b = LinkedGainBuckets()
        b.insert(0, 3)
        b.insert(1, -2)
        assert len(b) == 2

    def test_duplicate_insert_rejected(self):
        b = LinkedGainBuckets()
        b.insert(0, 1)
        with pytest.raises(PartitionError):
            b.insert(0, 5)

    def test_remove(self):
        b = LinkedGainBuckets()
        b.insert(0, 2)
        b.remove(0, 2)
        assert len(b) == 0
        with pytest.raises(PartitionError):
            b.remove(0, 2)

    def test_remove_wrong_gain_rejected(self):
        b = LinkedGainBuckets()
        b.insert(0, 2)
        with pytest.raises(PartitionError):
            b.remove(0, 3)

    def test_update(self):
        b = LinkedGainBuckets()
        b.insert(0, 1)
        assert b.update(0, 1, 4) == 5
        gains = dict((c, g) for g, c in b.iter_best_first())
        assert gains[0] == 5

    def test_best_first_order(self):
        b = LinkedGainBuckets()
        for cell, gain in [(0, 2), (1, -1), (2, 7), (3, 2)]:
            b.insert(cell, gain)
        pairs = list(b.iter_best_first())
        assert pairs[0] == (7, 2)
        gains = [g for g, _ in pairs]
        assert gains == sorted(gains, reverse=True)

    def test_lifo_within_bucket(self):
        b = LinkedGainBuckets()
        b.insert(10, 0)
        b.insert(11, 0)
        b.insert(12, 0)
        cells = [c for _, c in b.iter_best_first()]
        assert cells == [12, 11, 10]

    def test_grows_beyond_bound(self):
        b = LinkedGainBuckets(max_gain=2)
        b.insert(0, 100)
        b.insert(1, -150)
        pairs = list(b.iter_best_first())
        assert pairs[0] == (100, 0)
        assert pairs[-1] == (-150, 1)

    def test_bad_bound(self):
        with pytest.raises(PartitionError):
            LinkedGainBuckets(max_gain=0)

    def test_max_pointer_recovers_after_drain(self):
        b = LinkedGainBuckets()
        b.insert(0, 5)
        b.remove(0, 5)
        assert list(b.iter_best_first()) == []
        b.insert(1, -3)
        assert list(b.iter_best_first()) == [(-3, 1)]


@st.composite
def operation_traces(draw):
    """Random insert/remove/update traces valid for both structures."""
    ops = []
    live = {}
    next_cell = 0
    for _ in range(draw(st.integers(1, 40))):
        choice = draw(st.integers(0, 2))
        if choice == 0 or not live:
            gain = draw(st.integers(-12, 12))
            ops.append(("insert", next_cell, gain))
            live[next_cell] = gain
            next_cell += 1
        elif choice == 1:
            cell = draw(st.sampled_from(sorted(live)))
            ops.append(("remove", cell, live.pop(cell)))
        else:
            cell = draw(st.sampled_from(sorted(live)))
            delta = draw(st.integers(-6, 6))
            ops.append(("update", cell, live[cell], delta))
            live[cell] += delta
    return ops


class TestEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(operation_traces())
    def test_same_contents_as_dict_buckets(self, ops):
        linked = LinkedGainBuckets(max_gain=4)
        plain = GainBuckets()
        for op in ops:
            if op[0] == "insert":
                _, cell, gain = op
                linked.insert(cell, gain)
                plain.insert(cell, gain)
            elif op[0] == "remove":
                _, cell, gain = op
                linked.remove(cell, gain)
                plain.remove(cell, gain)
            else:
                _, cell, gain, delta = op
                assert linked.update(cell, gain, delta) == plain.update(
                    cell, gain, delta
                )
        assert len(linked) == len(plain)
        linked_pairs = sorted(linked.iter_best_first())
        plain_pairs = sorted(plain.iter_best_first())
        assert linked_pairs == plain_pairs
        # Same best gain (the property FM selection depends on).
        if linked_pairs:
            assert next(iter(linked.iter_best_first()))[0] == (
                next(iter(plain.iter_best_first()))[0]
            )

    def test_fm_pass_identical_with_either_structure(self):
        """Both bucket structures drive run_pass to the same cut (cell
        choice within a gain tie may differ, so compare outcomes on an
        instance with unique gains along the trajectory)."""
        from repro.hypergraph import Hypergraph
        from repro.partitioning import FMEngine

        h = Hypergraph(
            [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [0, 5], [1, 4]]
        )
        sides = [0, 1, 0, 1, 0, 1]
        cuts = []
        for _ in range(2):
            engine = FMEngine(h, list(sides))
            engine.run_pass(lambda c: True, objective="cut")
            cuts.append(engine.cut)
        assert cuts[0] == cuts[1]
