"""Tests for criticality-aware (net-weighted) IG-Match."""

import pytest

from repro.errors import PartitionError
from repro.hypergraph import Hypergraph
from repro.partitioning import IGMatchConfig, ig_match


def chain_with_critical_bridge():
    """Three 4-module clusters A-B-C in a chain.  The A-B bridge is
    heavy (critical, weight 50); the B-C bridge is cheap (weight 1).
    Both single-bridge cuts have identical *count* cost and balance, so
    only the weighted objective reliably avoids the critical net."""
    nets = []
    weights = []
    for base in (0, 4, 8):
        group = [base + i for i in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                nets.append([group[i], group[j]])
                weights.append(1.0)
    nets.append([3, 4])
    weights.append(50.0)  # critical bridge A-B
    nets.append([7, 8])
    weights.append(1.0)  # cheap bridge B-C
    return Hypergraph(nets, net_weights=weights)


class TestWeightedObjective:
    def test_prefers_to_keep_critical_net(self):
        h = chain_with_critical_bridge()
        result = ig_match(h, IGMatchConfig(use_net_weights=True))
        # The weighted optimum cuts only the cheap B-C bridge.
        assert result.partition.weighted_nets_cut == pytest.approx(1.0)
        assert sorted(result.partition.u_modules) in (
            [0, 1, 2, 3, 4, 5, 6, 7], [8, 9, 10, 11]
        )

    def test_details_reported(self):
        h = chain_with_critical_bridge()
        result = ig_match(h, IGMatchConfig(use_net_weights=True))
        assert result.details["weighted_objective"] is True
        assert result.details["weighted_cut"] == pytest.approx(
            result.partition.weighted_nets_cut
        )

    def test_noop_on_unweighted(self, small_circuit):
        plain = ig_match(small_circuit, IGMatchConfig(seed=0))
        flagged = ig_match(
            small_circuit, IGMatchConfig(seed=0, use_net_weights=True)
        )
        assert plain.partition.sides == flagged.partition.sides
        assert "weighted_objective" not in flagged.details

    def test_invariant_check_incompatible(self):
        h = chain_with_critical_bridge()
        with pytest.raises(PartitionError):
            ig_match(
                h,
                IGMatchConfig(
                    use_net_weights=True, check_invariants=True
                ),
            )

    def test_weighted_vs_unweighted_tradeoff(self):
        """On a netlist where the count-optimal cut crosses heavy nets,
        the weighted objective pays extra (count) cuts to save weight."""
        # Cluster A {0..3}, cluster B {4..7}; a heavy 3-net bundle ties
        # 3 to B while two cheap nets tie 0,1 to B.
        nets = []
        weights = []
        for base in (0, 4):
            group = [base + i for i in range(4)]
            for i in range(4):
                for j in range(i + 1, 4):
                    nets.append([group[i], group[j]])
                    weights.append(1.0)
        for _ in range(3):  # heavy bundle across {3,4}
            nets.append([3, 4])
            weights.append(10.0)
        h = Hypergraph(nets, net_weights=weights)
        unweighted = ig_match(h, IGMatchConfig())
        weighted = ig_match(h, IGMatchConfig(use_net_weights=True))
        assert (
            weighted.partition.weighted_nets_cut
            <= unweighted.partition.weighted_nets_cut
        )
