"""Test package for repro."""
