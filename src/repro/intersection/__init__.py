"""The netlist intersection graph (the paper's dual representation).

Vertices are signal nets; edges join nets sharing at least one module,
weighted per Section 2.2 of the paper (or any alternative scheme from
:mod:`repro.intersection.weights`).
"""

from .build import (
    EdgeState,
    graph_from_edge_state,
    intersection_edge_state,
    intersection_graph,
    intersection_nonzeros,
    shared_module_map,
)
from .weights import (
    available_weightings,
    get_weighting,
    jaccard_weight,
    overlap_weight,
    paper_weight,
    unit_weight,
)

__all__ = [
    "EdgeState",
    "available_weightings",
    "get_weighting",
    "graph_from_edge_state",
    "intersection_edge_state",
    "intersection_graph",
    "intersection_nonzeros",
    "jaccard_weight",
    "overlap_weight",
    "paper_weight",
    "shared_module_map",
    "unit_weight",
]
