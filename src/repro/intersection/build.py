"""Construction of the netlist intersection graph.

Given the netlist hypergraph ``H = (V', E')`` with ``m`` nets, the
intersection graph ``G'`` (Section 2.2) has one vertex per net, and an edge
between two nets exactly when they share at least one module.  ``G'`` is
uniquely determined by ``H``; the converse does not hold.

Construction is O(total pin pair work): for each module of degree ``d`` we
touch its ``C(d, 2)`` incident-net pairs.  Shared module lists per net pair
are accumulated so any :mod:`weighting <repro.intersection.weights>` can be
evaluated exactly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from ..graph import Graph
from ..hypergraph import Hypergraph
from ..obs import incr, span
from .weights import Weighting, get_weighting

__all__ = ["intersection_graph", "shared_module_map", "intersection_nonzeros"]


def shared_module_map(
    h: Hypergraph,
) -> Dict[Tuple[int, int], List[int]]:
    """Map each intersecting net pair ``(a, b)`` with a < b to the shared
    modules.

    The keys are exactly the edges of the intersection graph.
    """
    shared: Dict[Tuple[int, int], List[int]] = {}
    for module, nets in h.iter_modules():
        for i, net_a in enumerate(nets):
            for net_b in nets[i + 1 :]:
                shared.setdefault((net_a, net_b), []).append(module)
    return shared


def intersection_graph(
    h: Hypergraph,
    weighting: Union[str, Weighting] = "paper",
) -> Graph:
    """Build the weighted intersection graph ``G'`` of ``h``.

    Parameters
    ----------
    h:
        The netlist hypergraph.  Nets of size 0 or 1 become isolated
        vertices of ``G'`` (they share no module with anything), which the
        downstream spectral code tolerates; prefer
        :func:`repro.hypergraph.drop_degenerate_nets` first.
    weighting:
        Either a scheme name (``"paper"``, ``"unit"``, ``"overlap"``,
        ``"jaccard"``) or a callable; see
        :mod:`repro.intersection.weights`.

    Returns
    -------
    Graph
        A graph on ``h.num_nets`` vertices where vertex ``j`` is net ``j``.
    """
    with span(
        "intersection.build", nets=h.num_nets, modules=h.num_modules
    ) as sp:
        if isinstance(weighting, str):
            weighting = get_weighting(weighting)
        g = Graph(h.num_nets)
        for (net_a, net_b), shared in shared_module_map(h).items():
            weight = weighting(h, net_a, net_b, shared)
            if weight > 0:
                g.add_edge(net_a, net_b, weight)
        sp.set(edges=g.num_edges)
        incr("intersection.builds")
        incr("intersection.edges", g.num_edges)
    return g


def intersection_nonzeros(h: Hypergraph) -> int:
    """Nonzeros in the intersection-graph adjacency matrix.

    This is the quantity the paper compares against the clique model's
    nonzero count (e.g. Test05: 19 935 vs 219 811) to argue the dual
    representation is an order of magnitude sparser.
    """
    return 2 * len(shared_module_map(h))
