"""Construction of the netlist intersection graph.

Given the netlist hypergraph ``H = (V', E')`` with ``m`` nets, the
intersection graph ``G'`` (Section 2.2) has one vertex per net, and an edge
between two nets exactly when they share at least one module.  ``G'`` is
uniquely determined by ``H``; the converse does not hold.

Construction is O(total pin pair work): for each module of degree ``d`` we
touch its ``C(d, 2)`` incident-net pairs.  Shared module lists per net pair
are accumulated so any :mod:`weighting <repro.intersection.weights>` can be
evaluated exactly.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple, Union

from ..core import csr_active
from ..graph import Graph
from ..hypergraph import Hypergraph
from ..obs import incr, span
from .weights import Weighting, get_weighting

__all__ = [
    "EdgeState",
    "graph_from_edge_state",
    "intersection_edge_state",
    "intersection_graph",
    "intersection_nonzeros",
    "shared_module_map",
]


class EdgeState(NamedTuple):
    """The intersection graph as four parallel arrays.

    One entry per edge ``(edge_a[i], edge_b[i])`` with ``a < b``, weight
    ``weights[i]``, and ``first_mod[i]`` the smallest shared module.
    Entries are in canonical order — sorted by ``(first_mod, a, b)``,
    the dict path's first-encounter order — so replaying them through
    :func:`graph_from_edge_state` reproduces a cold build's adjacency
    byte for byte.  This is the representation the incremental ECO
    machinery (:mod:`repro.delta`) stores and patches.
    """

    edge_a: "object"  # np.ndarray[int64]
    edge_b: "object"  # np.ndarray[int64]
    weights: "object"  # np.ndarray[float64]
    first_mod: "object"  # np.ndarray[int64]

    @property
    def num_edges(self) -> int:
        return int(self.edge_a.size)


def shared_module_map(
    h: Hypergraph,
) -> Dict[Tuple[int, int], List[int]]:
    """Map each intersecting net pair ``(a, b)`` with a < b to the shared
    modules.

    The keys are exactly the edges of the intersection graph.
    """
    shared: Dict[Tuple[int, int], List[int]] = {}
    for module, nets in h.iter_modules():
        for i, net_a in enumerate(nets):
            for net_b in nets[i + 1 :]:
                shared.setdefault((net_a, net_b), []).append(module)
    return shared


def intersection_graph(
    h: Hypergraph,
    weighting: Union[str, Weighting] = "paper",
) -> Graph:
    """Build the weighted intersection graph ``G'`` of ``h``.

    Parameters
    ----------
    h:
        The netlist hypergraph.  Nets of size 0 or 1 become isolated
        vertices of ``G'`` (they share no module with anything), which the
        downstream spectral code tolerates; prefer
        :func:`repro.hypergraph.drop_degenerate_nets` first.
    weighting:
        Either a scheme name (``"paper"``, ``"unit"``, ``"overlap"``,
        ``"jaccard"``) or a callable; see
        :mod:`repro.intersection.weights`.

    Returns
    -------
    Graph
        A graph on ``h.num_nets`` vertices where vertex ``j`` is net ``j``.
    """
    with span(
        "intersection.build", nets=h.num_nets, modules=h.num_modules
    ) as sp:
        if isinstance(weighting, str):
            name = weighting
            weighting = get_weighting(name)
            if csr_active():
                g = _intersection_graph_csr(h, name)
                sp.set(edges=g.num_edges)
                incr("intersection.builds")
                incr("intersection.edges", g.num_edges)
                return g
        g = Graph(h.num_nets)
        for (net_a, net_b), shared in shared_module_map(h).items():
            weight = weighting(h, net_a, net_b, shared)
            if weight > 0:
                g.add_edge(net_a, net_b, weight)
        sp.set(edges=g.num_edges)
        incr("intersection.builds")
        incr("intersection.edges", g.num_edges)
    return g


def _intersection_graph_csr(h: Hypergraph, weighting_name: str) -> Graph:
    """Vectorised ``G'`` construction from CSR incidence arrays.

    Bit-identical to the dict path by construction:

    * edges are inserted into the :class:`Graph` in the dict path's
      first-encounter order — sorted by (minimum shared module, a, b) —
      so every downstream adjacency iteration sees the same sequence;
    * weights are computed with the same IEEE operations in the same
      order (per-module contributions accumulate lowest module first,
      one add per step, exactly like the sequential Python loop).

    Named weightings only; callables take the reference path.
    """
    return graph_from_edge_state(
        h.num_nets,
        intersection_edge_state(h, weighting_name),
        set_csr=True,
    )


def intersection_edge_state(
    h: Hypergraph, weighting_name: str = "paper"
) -> EdgeState:
    """Compute the canonical :class:`EdgeState` of ``h`` vectorised.

    Named weightings only (the warm-start machinery needs a name it can
    re-evaluate per edge); weight values are bitwise identical to both
    cold build paths.  Touches ``h.csr`` (materialising it if needed).
    """
    import numpy as np

    get_weighting(weighting_name)  # reject unknown names early
    csr = h.csr
    indptr = csr.module_indptr
    indices = csr.module_indices
    degrees = np.diff(indptr)

    # Enumerate every (module, net_a, net_b) co-incidence, batching
    # modules by degree so each batch is one fancy-indexed gather plus
    # one triu pair expansion (lexicographic (a, b) within a module,
    # matching the dict path's nested loop).
    pair_a_parts = []
    pair_b_parts = []
    pair_mod_parts = []
    for d in np.unique(degrees):
        if d < 2:
            continue
        d = int(d)
        mods = np.flatnonzero(degrees == d)
        rows = indices[indptr[mods][:, None] + np.arange(d)]
        iu, ju = np.triu_indices(d, 1)
        pair_a_parts.append(rows[:, iu].ravel())
        pair_b_parts.append(rows[:, ju].ravel())
        pair_mod_parts.append(np.repeat(mods, iu.size))
    if not pair_a_parts:
        empty_i = np.empty(0, dtype=np.int64)
        return EdgeState(
            empty_i, empty_i, np.empty(0, dtype=np.float64), empty_i
        )

    a = np.concatenate(pair_a_parts)
    b = np.concatenate(pair_b_parts)
    mod = np.concatenate(pair_mod_parts)
    # Group co-incidences by edge; within a group modules stay
    # ascending, which is the order the dict path's shared lists
    # accumulate in.
    order = np.lexsort((mod, b, a))
    a, b, mod = a[order], b[order], mod[order]
    boundary = np.empty(a.size, dtype=bool)
    boundary[0] = True
    np.logical_or(a[1:] != a[:-1], b[1:] != b[:-1], out=boundary[1:])
    group_start = np.flatnonzero(boundary)
    counts = np.diff(np.append(group_start, a.size))
    edge_a = a[group_start]
    edge_b = b[group_start]
    first_mod = mod[group_start]

    sizes = np.diff(csr.net_indptr)
    if weighting_name == "unit":
        weights = np.ones(edge_a.size, dtype=np.float64)
    elif weighting_name == "overlap":
        weights = counts.astype(np.float64)
    elif weighting_name == "jaccard":
        union = sizes[edge_a] + sizes[edge_b] - counts
        weights = counts / union
    else:  # "paper" — get_weighting() already rejected unknown names
        size_term = 1.0 / sizes[edge_a] + 1.0 / sizes[edge_b]
        contrib = np.repeat(size_term, counts) / (degrees[mod] - 1.0)
        # Accumulate each edge's per-module terms sequentially (lowest
        # module first, one IEEE add per round) — exactly the Python
        # loop's summation order, never numpy's pairwise reduction.
        weights = np.zeros(edge_a.size, dtype=np.float64)
        for k in range(int(counts.max())):
            sel = counts > k
            weights[sel] += contrib[group_start[sel] + k]

    keep = weights > 0
    if not np.all(keep):
        edge_a = edge_a[keep]
        edge_b = edge_b[keep]
        first_mod = first_mod[keep]
        weights = weights[keep]

    enc = np.lexsort((edge_b, edge_a, first_mod))
    return EdgeState(
        edge_a[enc], edge_b[enc], weights[enc], first_mod[enc]
    )


def graph_from_edge_state(
    num_nets: int, state: EdgeState, set_csr: bool = True
) -> Graph:
    """Materialise a :class:`~repro.graph.Graph` from an edge state.

    Edges are inserted in array order — canonical states reproduce the
    cold builds' adjacency iteration order exactly.  With ``set_csr``
    the symmetric CSR adjacency is installed too (the CSR-core cold path
    always does; the dict path never does — pass ``csr_active()`` to
    mirror whichever cold build the caller is standing in for).
    """
    import numpy as np

    g = Graph(num_nets)
    edge_a, edge_b, weights = state.edge_a, state.edge_b, state.weights
    for u, v, w in zip(
        edge_a.tolist(), edge_b.tolist(), weights.tolist()
    ):
        g.add_edge(u, v, w)
    if not set_csr:
        return g

    # Hand downstream consumers (Laplacian assembly, vectorised König
    # classification) the canonical symmetric CSR adjacency for free.
    row = np.concatenate([edge_a, edge_b])
    col = np.concatenate([edge_b, edge_a])
    val = np.concatenate([weights, weights])
    sym = np.lexsort((col, row))
    sym_indptr = np.zeros(num_nets + 1, dtype=np.int64)
    np.cumsum(np.bincount(row, minlength=num_nets), out=sym_indptr[1:])
    g.set_csr_arrays(sym_indptr, col[sym], val[sym])
    return g


def intersection_nonzeros(h: Hypergraph) -> int:
    """Nonzeros in the intersection-graph adjacency matrix.

    This is the quantity the paper compares against the clique model's
    nonzero count (e.g. Test05: 19 935 vs 219 811) to argue the dual
    representation is an order of magnitude sparser.
    """
    return 2 * len(shared_module_map(h))
