"""Edge weighting schemes for the intersection graph.

The paper's weighting (Section 2.2) for nets ``s_a``, ``s_b`` sharing
modules ``v_1 .. v_q`` is

.. math::

    A'_{ab} = \\sum_{k=1}^{q} \\frac{1}{d_k - 1}
              \\left( \\frac{1}{|s_a|} + \\frac{1}{|s_b|} \\right)

where ``d_k`` is the number of nets incident to shared module ``v_k``.  A
shared module necessarily has ``d_k >= 2``, so the formula is well defined.
The design intent: overlaps between *small* nets matter more, and a module
shared among many nets dilutes each pairwise overlap.

The paper reports that several alternative weightings give "extremely
similar, high-quality" results — the robustness claim tested by ablation
A1.  The alternatives implemented here are the natural candidates: unit
weight, raw overlap count, and Jaccard similarity.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..errors import ReproError
from ..hypergraph import Hypergraph

__all__ = [
    "paper_weight",
    "unit_weight",
    "overlap_weight",
    "jaccard_weight",
    "get_weighting",
    "available_weightings",
]

#: A weighting receives (hypergraph, net_a, net_b, shared_modules) and
#: returns the edge weight A'_ab.
Weighting = Callable[[Hypergraph, int, int, Sequence[int]], float]


def paper_weight(
    h: Hypergraph, net_a: int, net_b: int, shared: Sequence[int]
) -> float:
    """The weighting of Section 2.2 (see module docstring)."""
    size_term = 1.0 / h.net_size(net_a) + 1.0 / h.net_size(net_b)
    total = 0.0
    for module in shared:
        degree = h.module_degree(module)
        if degree < 2:
            raise ReproError(
                f"module {module} is claimed shared by nets {net_a},{net_b} "
                f"but has degree {degree}"
            )
        total += size_term / (degree - 1)
    return total


def unit_weight(
    h: Hypergraph, net_a: int, net_b: int, shared: Sequence[int]
) -> float:
    """1.0 whenever the nets intersect at all."""
    return 1.0


def overlap_weight(
    h: Hypergraph, net_a: int, net_b: int, shared: Sequence[int]
) -> float:
    """The number of shared modules ``q``."""
    return float(len(shared))


def jaccard_weight(
    h: Hypergraph, net_a: int, net_b: int, shared: Sequence[int]
) -> float:
    """Jaccard similarity ``|a ∩ b| / |a ∪ b|`` of the two pin sets."""
    union = h.net_size(net_a) + h.net_size(net_b) - len(shared)
    return len(shared) / union


_WEIGHTINGS: Dict[str, Weighting] = {
    "paper": paper_weight,
    "unit": unit_weight,
    "overlap": overlap_weight,
    "jaccard": jaccard_weight,
}


def get_weighting(name: str) -> Weighting:
    """Look up a weighting scheme by name."""
    try:
        return _WEIGHTINGS[name]
    except KeyError:
        raise ReproError(
            f"unknown weighting {name!r}; available: {sorted(_WEIGHTINGS)}"
        ) from None


def available_weightings() -> List[str]:
    """Names of all weighting schemes, sorted."""
    return sorted(_WEIGHTINGS)
