"""Explicit bipartite graphs.

:class:`BipartiteGraph` is the standalone representation used by the
maximum-matching algorithms and the König decomposition.  The IG-Match
sweep itself uses an implicit view (edges of the intersection graph that
cross the current L/R split — see :mod:`repro.matching.incremental`), but
exposes snapshots as :class:`BipartiteGraph` for testing and analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple

from ..errors import MatchingError

__all__ = ["BipartiteGraph"]


class BipartiteGraph:
    """An undirected bipartite graph with arbitrary hashable vertex ids.

    Examples
    --------
    >>> b = BipartiteGraph(["l0", "l1"], ["r0"])
    >>> b.add_edge("l0", "r0")
    >>> sorted(b.neighbors("r0"))
    ['l0']
    """

    __slots__ = ("_left", "_right", "_adj", "_num_edges")

    def __init__(self, left: Iterable = (), right: Iterable = ()):
        self._left: Set = set(left)
        self._right: Set = set(right)
        overlap = self._left & self._right
        if overlap:
            raise MatchingError(
                f"vertices on both sides: {sorted(map(repr, overlap))[:5]}"
            )
        self._adj: Dict = {v: set() for v in self._left | self._right}
        self._num_edges = 0

    # ------------------------------------------------------------------
    @property
    def left(self) -> Set:
        """The left vertex set (do not mutate)."""
        return self._left

    @property
    def right(self) -> Set:
        """The right vertex set (do not mutate)."""
        return self._right

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def add_left(self, v) -> None:
        """Add an isolated vertex to the left side."""
        if v in self._right:
            raise MatchingError(f"vertex {v!r} already on the right side")
        if v not in self._left:
            self._left.add(v)
            self._adj[v] = set()

    def add_right(self, v) -> None:
        """Add an isolated vertex to the right side."""
        if v in self._left:
            raise MatchingError(f"vertex {v!r} already on the left side")
        if v not in self._right:
            self._right.add(v)
            self._adj[v] = set()

    def add_edge(self, left_v, right_v) -> None:
        """Add the edge ``{left_v, right_v}`` (idempotent)."""
        if left_v not in self._left:
            raise MatchingError(f"{left_v!r} is not a left vertex")
        if right_v not in self._right:
            raise MatchingError(f"{right_v!r} is not a right vertex")
        if right_v not in self._adj[left_v]:
            self._adj[left_v].add(right_v)
            self._adj[right_v].add(left_v)
            self._num_edges += 1

    def has_edge(self, u, v) -> bool:
        return v in self._adj.get(u, ())

    def neighbors(self, v) -> Iterator:
        try:
            return iter(self._adj[v])
        except KeyError:
            raise MatchingError(f"unknown vertex {v!r}") from None

    def degree(self, v) -> int:
        try:
            return len(self._adj[v])
        except KeyError:
            raise MatchingError(f"unknown vertex {v!r}") from None

    def edges(self) -> Iterator[Tuple]:
        """Iterate over edges as ``(left_vertex, right_vertex)``."""
        for l in self._left:
            for r in self._adj[l]:
                yield (l, r)

    def side_of(self, v) -> str:
        """``"L"`` or ``"R"``."""
        if v in self._left:
            return "L"
        if v in self._right:
            return "R"
        raise MatchingError(f"unknown vertex {v!r}")

    def validate_matching(self, match: Dict) -> None:
        """Raise unless ``match`` is a valid matching of this graph.

        ``match`` maps each matched vertex to its partner, symmetrically.
        """
        for u, v in match.items():
            if match.get(v) != u:
                raise MatchingError(
                    f"matching not symmetric at {u!r} -> {v!r}"
                )
            if not self.has_edge(u, v):
                raise MatchingError(
                    f"matched pair ({u!r}, {v!r}) is not an edge"
                )

    def __repr__(self) -> str:
        return (
            f"<BipartiteGraph: |L|={len(self._left)}, "
            f"|R|={len(self._right)}, {self._num_edges} edges>"
        )
