"""Maximum bipartite matching.

Two algorithms:

* :func:`augmenting_path_matching` — the paper's method (Figure 5): grow
  the matching one breadth-first augmenting-path search at a time.  Worst
  case O(V·E), but it is the primitive the incremental IG-Match sweep
  amortises.
* :func:`hopcroft_karp` — O(E·sqrt(V)) phase-based algorithm, used as an
  independent cross-check in the tests and for one-shot computations.

Both return the matching as a symmetric dict ``{u: v, v: u}``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from .bipartite import BipartiteGraph

__all__ = [
    "augmenting_path_matching",
    "hopcroft_karp",
    "matching_size",
]


def matching_size(match: Dict) -> int:
    """Number of edges in a symmetric matching dict."""
    return len(match) // 2


def find_augmenting_path(
    graph: BipartiteGraph, match: Dict, start
) -> Optional[List]:
    """BFS for an augmenting path from unmatched vertex ``start``.

    Alternates non-matching / matching edges.  Returns the path as a
    vertex list (start first) or ``None`` when no augmenting path exists.
    This is the standard technique the paper cites [23].
    """
    if start in match:
        return None
    parent = {start: None}
    queue = deque([start])
    while queue:
        u = queue.popleft()
        # From u we cross a NON-matching edge (u is either the unmatched
        # start or was entered via a matching edge).
        for v in graph.neighbors(u):
            if v in parent or match.get(u) == v:
                continue
            parent[v] = u
            partner = match.get(v)
            if partner is None:
                # v is unmatched: augmenting path found.
                path = [v]
                node = u
                while node is not None:
                    path.append(node)
                    node = parent[node]
                path.reverse()
                return path
            if partner not in parent:
                parent[partner] = v
                queue.append(partner)
    return None


def apply_augmenting_path(match: Dict, path: List) -> None:
    """Flip matched/unmatched edges along an augmenting path, in place."""
    for i in range(0, len(path) - 1, 2):
        u, v = path[i], path[i + 1]
        match[u] = v
        match[v] = u


def augmenting_path_matching(graph: BipartiteGraph) -> Dict:
    """Maximum matching by repeated BFS augmentation (the paper's method)."""
    match: Dict = {}
    for start in graph.left:
        path = find_augmenting_path(graph, match, start)
        if path is not None:
            apply_augmenting_path(match, path)
    return match


def hopcroft_karp(graph: BipartiteGraph) -> Dict:
    """Maximum matching via Hopcroft–Karp, O(E·sqrt(V))."""
    INF = float("inf")
    match: Dict = {}
    dist: Dict = {}
    left = list(graph.left)

    def bfs() -> bool:
        queue = deque()
        for u in left:
            if u not in match:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = INF
        found = False
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                partner = match.get(v)
                if partner is None:
                    found = True
                elif dist[partner] == INF:
                    dist[partner] = dist[u] + 1
                    queue.append(partner)
        return found

    def dfs(u) -> bool:
        for v in graph.neighbors(u):
            partner = match.get(v)
            if partner is None or (
                dist.get(partner) == dist[u] + 1 and dfs(partner)
            ):
                match[u] = v
                match[v] = u
                return True
        dist[u] = INF
        return False

    while bfs():
        for u in left:
            if u not in match:
                dfs(u)
    return match
