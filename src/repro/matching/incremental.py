"""Incremental maximum matching under the IG-Match sweep.

The IG-Match main loop (Figure 5 of the paper) moves nets one at a time
from L to R in sorted-eigenvector order.  The induced bipartite graph
``B = (L, R, E_B)`` — the intersection-graph edges crossing the split —
therefore changes only locally per move, and the maximum matching can be
*maintained* rather than recomputed:

1. If the moving net ``v`` was matched to some ``u`` (in R), unmatch the
   pair and try one augmenting-path search from ``u`` (it may be
   re-matchable through other L vertices).
2. Move ``v`` to R; its crossing edges flip from (v∈L → R neighbours) to
   (L neighbours → v∈R).
3. Try one augmenting-path search from ``v``.

Each step changes the maximum matching size by at most one in each
direction, so one search suffices and the matching stays maximum — this is
the amortisation behind the paper's O(|V|·(|V|+|E|)) bound (Theorem 6).

``E_B`` is kept *implicit*: a crossing edge is an intersection-graph edge
whose endpoints are currently on different sides.  This avoids rebuilding
edge sets and keeps every search O(|V| + |E_G'|).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional

from ..core import csr_active
from ..errors import MatchingError
from ..graph import Graph
from .bipartite import BipartiteGraph

__all__ = ["IncrementalMatching", "VertexClass"]

_LEFT = 0
_RIGHT = 1


class VertexClass:
    """Integer codes for the König classes of :meth:`IncrementalMatching.classify`.

    Names follow the paper's Figure 3: ``EVEN_L``/``EVEN_R`` are winner
    nets, ``ODD_L`` (R-side) / ``ODD_R`` (L-side) are the critical-set
    losers, and ``CORE_L``/``CORE_R`` form the perfectly-matched subgraph
    ``B'`` that Phase II assigns wholesale.
    """

    EVEN_L = 0
    ODD_L = 1  # on the R side, reached from U_L at odd distance
    EVEN_R = 2
    ODD_R = 3  # on the L side, reached from U_R at odd distance
    CORE_L = 4
    CORE_R = 5


class IncrementalMatching:
    """Maximum matching of the crossing bipartite graph, maintained as
    vertices sweep from L to R.

    Parameters
    ----------
    graph:
        The fixed host graph (for IG-Match, the intersection graph).  All
        vertices start on the L side; call :meth:`move_to_right` in sweep
        order.
    """

    def __init__(self, graph: Graph):
        self._graph = graph
        n = graph.num_vertices
        self._side = [_LEFT] * n
        self._match: List[int] = [-1] * n
        self._left_count = n
        self._matching_size = 0
        # Epoch-stamped visit marks let classify() run without
        # reallocating per split.
        self._visit_l = [0] * n
        self._visit_r = [0] * n
        self._epoch = 0
        # Flat adjacency cache: the per-split alternating BFS touches
        # every edge, so the Graph method-call overhead would dominate
        # the whole sweep (Theorem 6's inner loop).
        self._adjacency = [list(graph.neighbors(v)) for v in range(n)]
        # Lazily-built numpy (indptr, indices) mirror of the adjacency,
        # used by the vectorised classify() under the csr core.
        self._np_adjacency = None
        #: Plain-int telemetry, always maintained (a few integer adds
        #: per sweep move): successful augmenting paths applied,
        #: searches attempted, and total vertices visited by augmenting
        #: searches (the work term behind Theorem 6's amortisation).
        self.augmentations = 0
        self.augmentation_attempts = 0
        self.search_visits = 0

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def left_count(self) -> int:
        return self._left_count

    @property
    def right_count(self) -> int:
        return self.num_vertices - self._left_count

    @property
    def matching_size(self) -> int:
        """Size of the (maximum) matching of the current crossing graph."""
        return self._matching_size

    def side_of(self, v: int) -> str:
        """``"L"`` or ``"R"`` for vertex ``v``."""
        return "L" if self._side[v] == _LEFT else "R"

    def partner(self, v: int) -> Optional[int]:
        """The vertex matched with ``v``, or ``None``."""
        p = self._match[v]
        return None if p == -1 else p

    def left_vertices(self) -> Iterator[int]:
        return (v for v in range(self.num_vertices) if self._side[v] == _LEFT)

    def right_vertices(self) -> Iterator[int]:
        return (
            v for v in range(self.num_vertices) if self._side[v] == _RIGHT
        )

    def crossing_neighbors(self, v: int) -> Iterator[int]:
        """Neighbours of ``v`` on the opposite side (the ``E_B`` edges)."""
        my_side = self._side[v]
        return (
            u for u in self._graph.neighbors(v) if self._side[u] != my_side
        )

    def crossing_edge_count(self) -> int:
        """``|E_B|``, counted directly (O(E))."""
        return sum(
            1
            for u, v, _ in self._graph.edges()
            if self._side[u] != self._side[v]
        )

    # ------------------------------------------------------------------
    # The sweep primitive
    # ------------------------------------------------------------------
    def move_to_right(self, v: int) -> None:
        """Move vertex ``v`` from L to R, restoring matching maximality.

        This is one iteration of the paper's Figure 5 pseudocode, minus
        the winner-set construction (see :meth:`snapshot` /
        :func:`repro.matching.koenig.decompose`).
        """
        if self._side[v] != _LEFT:
            raise MatchingError(f"vertex {v} is not on the L side")

        # Step 1: detach v from the matching; its old partner u (in R)
        # may be re-matchable along an augmenting path into L.
        u = self._match[v]
        if u != -1:
            self._match[v] = -1
            self._match[u] = -1
            self._matching_size -= 1

        # Step 2: flip sides.  Crossing edges update implicitly, but the
        # matching must stay consistent: any pair matched across the old
        # split is still crossing after the flip *unless* it involved v,
        # which we already unmatched.
        self._side[v] = _RIGHT
        self._left_count -= 1

        if u != -1:
            if self._augment_from(u):
                self._matching_size += 1

        # Step 3: v (now in R) may extend the matching.
        if self._augment_from(v):
            self._matching_size += 1

    # ------------------------------------------------------------------
    # Warm starts (ECO / delta serving)
    # ------------------------------------------------------------------
    def jump_start(self, right_vertices, seed=None) -> int:
        """Jump a fresh matcher straight to a mid-sweep split.

        Flips every vertex in ``right_vertices`` to R in one pass, seeds
        the matching from ``seed`` — ``(u, v)`` pairs from a previous
        sweep's matching, silently skipping any pair the new graph or
        split no longer supports — then restores maximality with
        :meth:`repair_to_maximum`.  With a good seed the repair does
        O(changed) work instead of replaying the whole sweep prefix.

        Returns the number of seed pairs actually installed.  Must be
        called before any :meth:`move_to_right`; König classification
        afterwards is exactly what the replayed sweep would produce,
        because the classes depend only on *which* matching is maximum,
        not how it was found (Dulmage–Mendelsohn canonicity).
        """
        if self._left_count != self.num_vertices or self._matching_size:
            raise MatchingError(
                "jump_start requires a fresh matcher (all vertices on L, "
                "empty matching)"
            )
        for v in right_vertices:
            if self._side[v] != _LEFT:
                raise MatchingError(
                    f"jump_start vertex {v} listed twice"
                )
            self._side[v] = _RIGHT
            self._left_count -= 1
        installed = 0
        if seed:
            match = self._match
            side = self._side
            n = self.num_vertices
            for u, v in seed:
                if not (0 <= u < n and 0 <= v < n):
                    continue
                if side[u] == side[v]:
                    continue
                if match[u] != -1 or match[v] != -1:
                    continue
                if not self._graph.has_edge(u, v):
                    continue
                match[u] = v
                match[v] = u
                installed += 1
        self._matching_size += installed
        self.repair_to_maximum()
        return installed

    def repair_to_maximum(self) -> int:
        """Grow the current (valid) matching to maximum.

        One augmenting search from every unmatched vertex suffices: a
        failed search from ``x`` stays failed after augmentations along
        paths from other vertices (the classical Hungarian-algorithm
        lemma), and successful augmentations never unmatch a vertex.
        Returns the number of augmenting paths applied.
        """
        grown = 0
        for v in range(self.num_vertices):
            if self._match[v] == -1 and self._augment_from(v):
                self._matching_size += 1
                grown += 1
        return grown

    # ------------------------------------------------------------------
    # Augmenting search
    # ------------------------------------------------------------------
    def _augment_from(self, start: int) -> bool:
        """BFS one augmenting path from unmatched ``start``; apply it.

        Works from either side.  Returns True when the matching grew.
        """
        if self._match[start] != -1:
            return False
        self.augmentation_attempts += 1
        match = self._match
        side = self._side
        adjacency = self._adjacency

        parent: Dict[int, int] = {start: -1}
        queue = deque([start])
        while queue:
            x = queue.popleft()
            x_side = side[x]
            for y in adjacency[x]:
                if side[y] == x_side or y in parent or match[x] == y:
                    continue
                parent[y] = x
                if match[y] == -1:
                    # Reconstruct the path start .. x, y and flip its
                    # edges pairwise from the newly-matched end.
                    path = [y]
                    node = x
                    while node != -1:
                        path.append(node)
                        node = parent[node]
                    for i in range(0, len(path) - 1, 2):
                        a, b = path[i], path[i + 1]
                        match[a] = b
                        match[b] = a
                    self.augmentations += 1
                    self.search_visits += len(parent)
                    return True
                partner = match[y]
                if partner not in parent:
                    parent[partner] = y
                    queue.append(partner)
        self.search_visits += len(parent)
        return False

    # ------------------------------------------------------------------
    # König classification (Phase I winner selection)
    # ------------------------------------------------------------------
    def classify(self) -> List[int]:
        """König classes of every vertex for the current split.

        Returns a list of :class:`VertexClass` codes.  Cost is one
        alternating BFS from each side's unmatched vertices, O(V + E) —
        the per-split Phase I cost in Theorem 6.

        The matching must be maximum, which :meth:`move_to_right`
        maintains; with a maximum matching the reaches from the two sides
        are disjoint, so the six classes partition the vertices.

        Under the csr core the alternating reachability is computed as
        a numpy frontier BFS instead of the Python queue.  The marked
        set is a fixed point of the alternating-reachability relation —
        independent of visit order — so the codes are identical.
        """
        if csr_active():
            return self._classify_vectorised()
        self._epoch += 1
        self._alternating_mark(_LEFT, self._visit_l)
        self._alternating_mark(_RIGHT, self._visit_r)
        epoch = self._epoch
        codes = [0] * self.num_vertices
        for v in range(self.num_vertices):
            if self._side[v] == _LEFT:
                if self._visit_l[v] == epoch:
                    codes[v] = VertexClass.EVEN_L
                elif self._visit_r[v] == epoch:
                    codes[v] = VertexClass.ODD_R
                else:
                    codes[v] = VertexClass.CORE_L
            else:
                if self._visit_r[v] == epoch:
                    codes[v] = VertexClass.EVEN_R
                elif self._visit_l[v] == epoch:
                    codes[v] = VertexClass.ODD_L
                else:
                    codes[v] = VertexClass.CORE_R
        return codes

    def _alternating_mark(self, from_side: int, visit: List[int]) -> None:
        """Mark everything alternating-reachable from ``from_side``'s
        unmatched vertices in ``visit`` with the current epoch."""
        epoch = self._epoch
        side = self._side
        match = self._match
        adjacency = self._adjacency
        queue = deque()
        for v in range(self.num_vertices):
            if side[v] == from_side and match[v] == -1:
                visit[v] = epoch
                queue.append(v)
        while queue:
            u = queue.popleft()
            u_side = side[u]
            for w in adjacency[u]:
                if side[w] == u_side or visit[w] == epoch:
                    continue
                # (u, w) is a crossing non-matching edge (w unmarked, so
                # it cannot be u's partner, which is marked with u).
                visit[w] = epoch
                mate = match[w]
                if mate != -1 and visit[mate] != epoch:
                    visit[mate] = epoch
                    queue.append(mate)
        # Note: unmatched start vertices were marked before the loop, and
        # every vertex entered mid-loop is matched (else the matching
        # would not be maximum).

    # ------------------------------------------------------------------
    # Vectorised classification (csr core)
    # ------------------------------------------------------------------
    def _ensure_np_adjacency(self):
        if self._np_adjacency is None:
            import numpy as np

            cache = self._graph._csr_cache
            if cache is not None:
                self._np_adjacency = (cache[0], cache[1])
            else:
                n = self.num_vertices
                counts = np.fromiter(
                    (len(a) for a in self._adjacency),
                    dtype=np.int64,
                    count=n,
                )
                indptr = np.zeros(n + 1, dtype=np.int64)
                np.cumsum(counts, out=indptr[1:])
                indices = np.fromiter(
                    (w for a in self._adjacency for w in a),
                    dtype=np.int64,
                    count=int(indptr[-1]),
                )
                self._np_adjacency = (indptr, indices)
        return self._np_adjacency

    def _classify_vectorised(self) -> List[int]:
        import numpy as np

        n = self.num_vertices
        indptr, indices = self._ensure_np_adjacency()
        side = np.asarray(self._side, dtype=np.int8)
        match = np.asarray(self._match, dtype=np.int64)
        reach_l = self._alternating_mark_vectorised(
            _LEFT, side, match, indptr, indices
        )
        reach_r = self._alternating_mark_vectorised(
            _RIGHT, side, match, indptr, indices
        )
        left = side == _LEFT
        codes = np.where(left, VertexClass.CORE_L, VertexClass.CORE_R)
        codes[left & reach_r] = VertexClass.ODD_R
        codes[left & reach_l] = VertexClass.EVEN_L
        codes[~left & reach_l] = VertexClass.ODD_L
        codes[~left & reach_r] = VertexClass.EVEN_R
        return codes.tolist()

    @staticmethod
    def _alternating_mark_vectorised(
        from_side, side, match, indptr, indices
    ):
        """The marked set of :meth:`_alternating_mark` as a bool array.

        Frontier BFS over alternating layers: unmatched ``from_side``
        vertices seed the frontier; each round marks their unvisited
        opposite-side neighbours, then advances the frontier to those
        neighbours' unvisited mates.  Computes the same least fixed
        point the sequential queue does.
        """
        import numpy as np

        visited = np.zeros(side.size, dtype=bool)
        frontier = np.flatnonzero((side == from_side) & (match == -1))
        visited[frontier] = True
        while frontier.size:
            starts = indptr[frontier]
            ends = indptr[frontier + 1]
            counts = ends - starts
            total = int(counts.sum())
            if total == 0:
                break
            offsets = (
                np.repeat(ends - np.cumsum(counts), counts)
                + np.arange(total)
            )
            neighbours = indices[offsets]
            crossing = neighbours[
                (side[neighbours] != from_side) & ~visited[neighbours]
            ]
            if crossing.size == 0:
                break
            crossing = np.unique(crossing)
            visited[crossing] = True
            mates = match[crossing]
            mates = mates[mates != -1]
            mates = mates[~visited[mates]]
            visited[mates] = True
            frontier = mates
        return visited

    # ------------------------------------------------------------------
    # Snapshots and invariants
    # ------------------------------------------------------------------
    def snapshot(self) -> BipartiteGraph:
        """An explicit :class:`BipartiteGraph` copy of the crossing graph.

        O(V + E); intended for tests and the König decomposition.
        """
        b = BipartiteGraph(self.left_vertices(), self.right_vertices())
        for u, v, _ in self._graph.edges():
            if self._side[u] != self._side[v]:
                if self._side[u] == _LEFT:
                    b.add_edge(u, v)
                else:
                    b.add_edge(v, u)
        return b

    def matching_dict(self) -> Dict[int, int]:
        """The current matching as a symmetric dict."""
        return {
            v: p for v, p in enumerate(self._match) if p != -1
        }

    def check_invariants(self) -> None:
        """Raise :class:`MatchingError` on any internal inconsistency.

        Verifies symmetry, that matched pairs are crossing edges, and
        that the recorded size agrees.  (Maximality is verified in the
        test suite against Hopcroft–Karp.)
        """
        count = 0
        for v, p in enumerate(self._match):
            if p == -1:
                continue
            if self._match[p] != v:
                raise MatchingError(f"matching asymmetric at {v}<->{p}")
            if self._side[v] == self._side[p]:
                raise MatchingError(
                    f"matched pair ({v},{p}) on the same side"
                )
            if not self._graph.has_edge(v, p):
                raise MatchingError(f"matched pair ({v},{p}) not an edge")
            count += 1
        if count != 2 * self._matching_size:
            raise MatchingError(
                f"matching size {self._matching_size} disagrees with "
                f"{count} matched endpoints"
            )
