"""König / Dulmage–Mendelsohn decomposition of a matched bipartite graph.

Given a bipartite graph ``B = (L, R, E_B)`` and a *maximum* matching M,
alternating breadth-first searches from the unmatched vertices classify
every vertex (Figure 3 of the paper):

* ``Even(L)`` ⊆ L — reachable from an unmatched L vertex at even distance
  (winners).  Contains ``U_L``.
* ``Odd(L)``  ⊆ R — reachable from U_L at odd distance (losers).
* ``Even(R)`` ⊆ R, ``Odd(R)`` ⊆ L — symmetric, from U_R.
* The *core* ``B' = (L', R')`` — matched vertices reachable from no
  unmatched vertex; M restricted to B' is a perfect matching of B'.

Consequences used by IG-Match:

* ``Odd(L) ∪ Odd(R)`` is the Hasan–Liu *critical set* — the vertices in
  every minimum vertex cover (footnote 4 of the paper); it is independent
  of which maximum matching was used.
* ``Odd(L) ∪ Odd(R) ∪ L'`` (or symmetrically with R') is a minimum vertex
  cover; its complement ``Even(L) ∪ Even(R) ∪ R'`` is a maximum
  independent set (Theorems 2 and 3 — König's theorem).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Set

from ..errors import MatchingError
from .bipartite import BipartiteGraph

__all__ = ["Decomposition", "decompose", "decompose_bipartite"]


@dataclass(frozen=True)
class Decomposition:
    """The six vertex classes of a matched bipartite graph."""

    even_left: FrozenSet
    odd_left: FrozenSet
    even_right: FrozenSet
    odd_right: FrozenSet
    core_left: FrozenSet
    core_right: FrozenSet

    # -- derived sets ---------------------------------------------------
    @property
    def critical_set(self) -> FrozenSet:
        """Vertices in *every* minimum vertex cover (Hasan–Liu)."""
        return self.odd_left | self.odd_right

    def minimum_vertex_cover(self, cover_core_left: bool = True) -> FrozenSet:
        """A minimum vertex cover: the critical set plus one core side."""
        core = self.core_left if cover_core_left else self.core_right
        return self.critical_set | core

    def maximum_independent_set(
        self, cover_core_left: bool = True
    ) -> FrozenSet:
        """An MIS: the complement of :meth:`minimum_vertex_cover`."""
        core = self.core_right if cover_core_left else self.core_left
        return self.even_left | self.even_right | core

    @property
    def all_vertices(self) -> FrozenSet:
        return (
            self.even_left
            | self.odd_left
            | self.even_right
            | self.odd_right
            | self.core_left
            | self.core_right
        )


def _alternating_reach(
    starts: Iterable,
    neighbors: Callable[[object], Iterator],
    partner: Callable[[object], object],
) -> Set:
    """All vertices on alternating paths from the unmatched ``starts``.

    Traversal leaves a start (or a vertex entered via matching edge)
    through non-matching edges, and continues through matching edges.
    Returns the full reachable set (both parities).
    """
    reached: Set = set(starts)
    queue = deque(reached)
    while queue:
        u = queue.popleft()
        for v in neighbors(u):
            if v in reached or partner(u) == v:
                continue
            reached.add(v)
            mate = partner(v)
            if mate is not None and mate not in reached:
                reached.add(mate)
                queue.append(mate)
    return reached


def decompose(
    left: Iterable,
    right: Iterable,
    neighbors: Callable[[object], Iterator],
    partner: Callable[[object], object],
) -> Decomposition:
    """Decompose an abstract matched bipartite graph.

    Parameters
    ----------
    left, right:
        The two vertex sets.
    neighbors:
        Callable yielding a vertex's neighbours (all on the other side).
    partner:
        Callable returning a vertex's matched partner or ``None``.  The
        matching must be *maximum*; the decomposition verifies the
        tell-tale violation (an unmatched-to-unmatched alternating
        reach) and raises :class:`MatchingError` if found.
    """
    left_set = set(left)
    right_set = set(right)

    unmatched_left = [v for v in left_set if partner(v) is None]
    unmatched_right = [v for v in right_set if partner(v) is None]

    reach_from_left = _alternating_reach(unmatched_left, neighbors, partner)
    reach_from_right = _alternating_reach(unmatched_right, neighbors, partner)

    even_left = frozenset(reach_from_left & left_set)
    odd_left = frozenset(reach_from_left & right_set)
    even_right = frozenset(reach_from_right & right_set)
    odd_right = frozenset(reach_from_right & left_set)

    if any(partner(v) is None for v in odd_left) or any(
        partner(v) is None for v in odd_right
    ):
        raise MatchingError(
            "an unmatched vertex is alternating-reachable from the other "
            "side's unmatched set: the matching is not maximum"
        )
    overlap = reach_from_left & reach_from_right
    if overlap:
        raise MatchingError(
            "alternating reaches from the two sides overlap "
            f"(e.g. at {next(iter(overlap))!r}): the matching is not maximum"
        )

    core_left = frozenset(left_set - even_left - odd_right)
    core_right = frozenset(right_set - even_right - odd_left)
    return Decomposition(
        even_left=even_left,
        odd_left=odd_left,
        even_right=even_right,
        odd_right=odd_right,
        core_left=core_left,
        core_right=core_right,
    )


def decompose_bipartite(
    graph: BipartiteGraph, match: Dict
) -> Decomposition:
    """Decompose an explicit :class:`BipartiteGraph` with matching dict."""
    graph.validate_matching(match)
    return decompose(
        graph.left,
        graph.right,
        graph.neighbors,
        lambda v: match.get(v),
    )
