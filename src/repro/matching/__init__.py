"""Bipartite matching machinery underlying IG-Match.

Maximum matching (BFS augmenting paths and Hopcroft–Karp), incremental
matching maintenance under the L→R sweep, and the König / Dulmage–
Mendelsohn decomposition that converts a maximum matching into winner and
loser net sets (Figure 3 / Theorems 2–3 of the paper).
"""

from .bipartite import BipartiteGraph
from .incremental import IncrementalMatching
from .koenig import Decomposition, decompose, decompose_bipartite
from .maximum import (
    apply_augmenting_path,
    augmenting_path_matching,
    find_augmenting_path,
    hopcroft_karp,
    matching_size,
)

__all__ = [
    "BipartiteGraph",
    "Decomposition",
    "IncrementalMatching",
    "apply_augmenting_path",
    "augmenting_path_matching",
    "decompose",
    "decompose_bipartite",
    "find_augmenting_path",
    "hopcroft_karp",
    "matching_size",
]
