"""Cheap process-wide counters and gauges.

Counters are dotted-name totals (``"matching.augmentations"``,
``"lanczos.iterations"``) accumulated over a profiled run; gauges are
last-write-wins observations sharing the same namespace.  Both live in
one flat dict on the registry state, are snapshot by
:func:`counters`, and are flushed as a single ``counters`` event when
tracing shuts down.

Every helper returns immediately while instrumentation is off.  Inner
loops should *not* call these per iteration even so — keep a local
integer and report the total once per phase (see the IG-Match sweep and
FM pass loop for the idiom).
"""

from __future__ import annotations

from typing import Dict

from .registry import STATE

__all__ = ["counters", "gauge", "gauges", "incr", "reset_counters"]


def incr(name: str, value: float = 1) -> None:
    """Add ``value`` to counter ``name`` (creating it at 0)."""
    if not STATE.enabled:
        return
    STATE.counters[name] = STATE.counters.get(name, 0) + value


def gauge(name: str, value: float) -> None:
    """Record the latest observation of ``name`` (last write wins)."""
    if not STATE.enabled:
        return
    STATE.counters[name] = value
    STATE.gauge_names.add(name)


def counters(prefix: str = "") -> Dict[str, float]:
    """A snapshot of every counter/gauge, sorted by name.

    ``prefix`` filters to one dotted namespace (e.g. ``"service."`` for
    the serving layer's counters in ``/metrics``).
    """
    return {
        k: STATE.counters[k]
        for k in sorted(STATE.counters)
        if k.startswith(prefix)
    }


def gauges(prefix: str = "") -> Dict[str, float]:
    """A snapshot of the *gauge* subset of the namespace, sorted.

    Counters and gauges share one dict; this returns only the names
    recorded via :func:`gauge` (last-write observations), filtered by
    ``prefix`` exactly like :func:`counters`.  A name written by both
    helpers counts as a gauge — last write wins there too.
    """
    gauge_names = STATE.gauge_names
    return {
        k: STATE.counters[k]
        for k in sorted(STATE.counters)
        if k in gauge_names and k.startswith(prefix)
    }


def reset_counters() -> None:
    """Zero all counters without touching spans or sinks."""
    STATE.counters.clear()
    STATE.gauge_names.clear()
