"""Global on/off switch and shared state for the observability layer.

The whole :mod:`repro.obs` package funnels through one module-level
:class:`ObsState`.  Instrumentation call sites check ``STATE.enabled``
(or call a helper that does) before doing any work, so a disabled run
pays one attribute load and a branch per instrumented *phase* — never
per move, pin, or matrix element.  Hot inner loops keep their own plain
integer tallies and report them once per phase for the same reason.

State is process-wide and single-threaded by design: the partitioners
are synchronous, and a trace interleaved from several threads would be
unreadable anyway.  ``enable()`` resets all collected data, so
back-to-back profiled runs never bleed counters or spans into each
other.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional

__all__ = [
    "ObsState",
    "STATE",
    "enable",
    "enabled",
    "disable",
    "is_enabled",
    "reset",
]


class ObsState:
    """All mutable observability state: sinks, span tree, counters."""

    __slots__ = ("enabled", "sinks", "roots", "stack", "counters", "seq")

    def __init__(self) -> None:
        self.enabled = False
        #: Event sinks (see :mod:`repro.obs.events`); every structured
        #: event is handed to each sink in order.
        self.sinks: List[Any] = []
        #: Completed top-level spans (the phase tree for the report).
        self.roots: List[Any] = []
        #: Stack of *open* span nodes (nesting context).
        self.stack: List[Any] = []
        #: Monotonic counters and last-write gauges, by name.
        self.counters: Dict[str, float] = {}
        #: Monotonically increasing event sequence number.
        self.seq = 0

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


STATE = ObsState()


def is_enabled() -> bool:
    """True when instrumentation is collecting (the global switch)."""
    return STATE.enabled


def enable(sink: Optional[Any] = None) -> ObsState:
    """Turn instrumentation on, wiping any previously collected data.

    ``sink``, if given, receives every structured event (a
    :class:`repro.obs.events.JsonLinesSink`, ``MemorySink``, or any
    object with ``handle(dict)`` / ``close()``).
    """
    reset()
    if sink is not None:
        STATE.sinks.append(sink)
    STATE.enabled = True
    return STATE


def disable() -> None:
    """Turn instrumentation off, flushing counters and closing sinks.

    A final ``{"type": "counters", ...}`` event carrying every counter
    is emitted before the sinks close, so a JSON-lines trace always ends
    with the run's totals.  Collected spans and counters remain readable
    (for :func:`repro.obs.report.phase_report`) until the next
    :func:`enable`.
    """
    if STATE.enabled and STATE.counters and STATE.sinks:
        from .events import emit_raw

        emit_raw(
            {
                "type": "counters",
                "values": {k: STATE.counters[k] for k in sorted(STATE.counters)},
            }
        )
    for sink in STATE.sinks:
        close = getattr(sink, "close", None)
        if close is not None:
            close()
    STATE.sinks = []
    STATE.enabled = False


@contextmanager
def enabled(sink: Optional[Any] = None):
    """Scope instrumentation to a ``with`` block, exception-safe.

    ``with obs.enabled(sink=...) as state:`` is the preferred form of
    the ``enable()`` / ``disable()`` pair: :func:`disable` always runs
    on the way out (including on exceptions), so a failing partitioner
    can never leak enabled state into subsequent code.  Collected spans
    and counters remain readable after the block, exactly as after a
    manual :func:`disable`.
    """
    state = enable(sink=sink)
    try:
        yield state
    finally:
        disable()


def reset() -> None:
    """Drop all collected spans, counters, and sinks (keeps on/off state)."""
    for sink in STATE.sinks:
        close = getattr(sink, "close", None)
        if close is not None:
            close()
    STATE.sinks = []
    STATE.roots = []
    STATE.stack = []
    STATE.counters = {}
    STATE.seq = 0
