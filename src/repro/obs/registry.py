"""Global on/off switch and shared state for the observability layer.

The whole :mod:`repro.obs` package funnels through one module-level
``STATE`` handle.  Instrumentation call sites check ``STATE.enabled``
(or call a helper that does) before doing any work, so a disabled run
pays one attribute load and a branch per instrumented *phase* — never
per move, pin, or matrix element.  Hot inner loops keep their own plain
integer tallies and report them once per phase for the same reason.

``STATE`` is a thin proxy over a :class:`contextvars.ContextVar`
holding the *current* :class:`ObsState`.  In ordinary single-threaded
use there is exactly one state (the process-wide root) and the proxy is
invisible.  The :mod:`repro.parallel` executor gives each worker task a
fresh private state via :func:`isolated`, so concurrently running tasks
record their own spans and counters without interleaving; the parent
merges the resulting trace fragments deterministically (in submission
order) after the fan-out.  ``enable()`` resets all collected data, so
back-to-back profiled runs never bleed counters or spans into each
other.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Set

__all__ = [
    "ObsState",
    "STATE",
    "current_state",
    "enable",
    "enabled",
    "disable",
    "is_enabled",
    "isolated",
    "reset",
]


class ObsState:
    """All mutable observability state: sinks, span tree, counters."""

    __slots__ = (
        "enabled", "sinks", "roots", "stack", "counters", "gauge_names",
        "seq", "memprof", "memframes",
    )

    def __init__(self) -> None:
        self.enabled = False
        #: Event sinks (see :mod:`repro.obs.events`); every structured
        #: event is handed to each sink in order.
        self.sinks: List[Any] = []
        #: Completed top-level spans (the phase tree for the report).
        self.roots: List[Any] = []
        #: Stack of *open* span nodes (nesting context).
        self.stack: List[Any] = []
        #: Monotonic counters and last-write gauges, by name.
        self.counters: Dict[str, float] = {}
        #: Names in ``counters`` that were recorded via ``gauge()``
        #: (last-write observations, not monotonic totals) — what lets
        #: ``obs.gauges()`` slice them out of the shared namespace.
        self.gauge_names: Set[str] = set()
        #: Monotonically increasing event sequence number.
        self.seq = 0
        #: Per-span memory attribution switch (see
        #: :mod:`repro.obs.memprof`).  Off by default: spans check this
        #: flag once and skip every tracemalloc call while it is False.
        self.memprof = False
        #: Stack of open memory frames, parallel to ``stack`` while
        #: memprof is on.  Each frame is ``[node, start_bytes,
        #: peak_abs_bytes]``; the node reference pairs frames with spans
        #: so spans opened before memprof was enabled are skipped.
        self.memframes: List[Any] = []

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


#: The process-wide root state — what every thread sees unless it is
#: inside an :func:`isolated` scope.
_ROOT = ObsState()

_CURRENT: "contextvars.ContextVar[ObsState]" = contextvars.ContextVar(
    "repro_obs_state", default=_ROOT
)


def current_state() -> ObsState:
    """The :class:`ObsState` the calling context is recording into."""
    return _CURRENT.get()


class _StateProxy:
    """Attribute proxy delegating to the context's current ObsState.

    Keeps the historical ``from repro.obs.registry import STATE`` call
    sites working unchanged while letting parallel workers swap in a
    private state.  Attribute access costs one ``ContextVar.get`` — paid
    per instrumented phase, not per inner-loop iteration.
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> Any:
        return getattr(_CURRENT.get(), name)

    def __setattr__(self, name: str, value: Any) -> None:
        setattr(_CURRENT.get(), name, value)

    def next_seq(self) -> int:
        return _CURRENT.get().next_seq()


STATE = _StateProxy()


@contextmanager
def isolated() -> Iterator[ObsState]:
    """Record into a fresh private :class:`ObsState` within the block.

    The primitive behind per-worker trace capture: everything the block
    does (spans, counters, events) lands in the yielded state instead of
    the shared root, so concurrent tasks cannot interleave their traces.
    On exit the previous state is restored; the private state remains
    readable for serialisation into a trace fragment.
    """
    state = ObsState()
    token = _CURRENT.set(state)
    try:
        yield state
    finally:
        _CURRENT.reset(token)


def is_enabled() -> bool:
    """True when instrumentation is collecting (the context's switch)."""
    return _CURRENT.get().enabled


def enable(sink: Optional[Any] = None) -> ObsState:
    """Turn instrumentation on, wiping any previously collected data.

    ``sink``, if given, receives every structured event (a
    :class:`repro.obs.events.JsonLinesSink`, ``MemorySink``, or any
    object with ``handle(dict)`` / ``close()``).
    """
    reset()
    state = _CURRENT.get()
    if sink is not None:
        state.sinks.append(sink)
    state.enabled = True
    return state


def disable() -> None:
    """Turn instrumentation off, flushing counters and closing sinks.

    A final ``{"type": "counters", ...}`` event carrying every counter
    is emitted before the sinks close, so a JSON-lines trace always ends
    with the run's totals.  Collected spans and counters remain readable
    (for :func:`repro.obs.report.phase_report`) until the next
    :func:`enable`.
    """
    state = _CURRENT.get()
    if state.memprof:
        from .memprof import disable_memprof

        disable_memprof()
    if state.enabled and state.counters and state.sinks:
        from .events import emit_raw

        emit_raw(
            {
                "type": "counters",
                "values": {k: state.counters[k] for k in sorted(state.counters)},
            }
        )
    for sink in state.sinks:
        close = getattr(sink, "close", None)
        if close is not None:
            close()
    state.sinks = []
    state.enabled = False


@contextmanager
def enabled(sink: Optional[Any] = None):
    """Scope instrumentation to a ``with`` block, exception-safe.

    ``with obs.enabled(sink=...) as state:`` is the preferred form of
    the ``enable()`` / ``disable()`` pair: :func:`disable` always runs
    on the way out (including on exceptions), so a failing partitioner
    can never leak enabled state into subsequent code.  Collected spans
    and counters remain readable after the block, exactly as after a
    manual :func:`disable`.
    """
    state = enable(sink=sink)
    try:
        yield state
    finally:
        disable()


def reset() -> None:
    """Drop all collected spans, counters, and sinks (keeps on/off state)."""
    state = _CURRENT.get()
    if state.memprof:
        from .memprof import disable_memprof

        disable_memprof()
    for sink in state.sinks:
        close = getattr(sink, "close", None)
        if close is not None:
            close()
    state.sinks = []
    state.roots = []
    state.stack = []
    state.counters = {}
    state.gauge_names = set()
    state.seq = 0
    state.memprof = False
    state.memframes = []
