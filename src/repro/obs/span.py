"""Nesting timing spans with monotonic clocks.

:func:`span` is the context-manager tracer used at phase granularity
(build the intersection graph, run one eigensolve, one sweep, one FM
pass loop).  While instrumentation is off it returns a shared no-op
object, so the disabled cost of an instrumented phase is one function
call — nothing is allocated and no clock is read.

Hot loops that cannot afford a context manager per iteration time
themselves with plain ``perf_counter`` accumulators and report the
total once via :func:`add_timing`, which files an *aggregated* span
(``count`` occurrences, summed seconds) under the currently open span.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from .events import emit_raw
from .registry import STATE, current_state as _current_state

__all__ = ["Span", "SpanNode", "add_timing", "span"]


class SpanNode:
    """One node of the collected phase tree."""

    __slots__ = ("name", "attrs", "seconds", "count", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.seconds = 0.0
        self.count = 1
        self.children: List["SpanNode"] = []


class _NullSpan:
    """Shared do-nothing span handed out while instrumentation is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL = _NullSpan()


def _attach(node: SpanNode) -> None:
    parent = STATE.stack[-1] if STATE.stack else None
    (parent.children if parent is not None else STATE.roots).append(node)


class Span:
    """A live span: times a ``with`` block and files it in the tree."""

    __slots__ = ("_node", "_start")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self._node = SpanNode(name, attrs)
        self._start = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered mid-span (iteration counts...)."""
        self._node.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        state = _current_state()
        _attach(self._node)
        state.stack.append(self._node)
        if state.memprof:
            from .memprof import on_span_enter

            on_span_enter(state, self._node)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        node = self._node
        node.seconds = time.perf_counter() - self._start
        state = _current_state()
        if state.memprof:
            from .memprof import on_span_exit

            on_span_exit(state, node)
        if state.stack and state.stack[-1] is node:
            state.stack.pop()
        if exc_type is not None:
            node.attrs.setdefault("error", exc_type.__name__)
        if state.sinks:
            event: Dict[str, Any] = {"type": "span", "name": node.name}
            event.update(node.attrs)
            event["dur_s"] = round(node.seconds, 6)
            event["depth"] = len(state.stack)
            event["seq"] = state.next_seq()
            emit_raw(event)
        return False


def span(name: str, **attrs: Any):
    """Open a named timing span around a ``with`` block.

    No-op (shared null object) while instrumentation is off, so it is
    safe at any phase boundary.  ``attrs`` should be deterministic
    values (sizes, config knobs) — durations are added automatically.
    """
    if not STATE.enabled:
        return _NULL
    return Span(name, attrs)


def add_timing(
    name: str, seconds: float, count: int = 1, **attrs: Any
) -> None:
    """File an aggregated span (hot-loop totals) under the open span.

    Used by sweep/pass loops that accumulate ``perf_counter`` deltas in
    local variables and report once: ``count`` occurrences totalling
    ``seconds``.  No-op while instrumentation is off.
    """
    if not STATE.enabled:
        return
    node = SpanNode(name, attrs)
    node.seconds = seconds
    node.count = count
    _attach(node)
    if STATE.sinks:
        event: Dict[str, Any] = {"type": "span", "name": name}
        event.update(attrs)
        event["dur_s"] = round(seconds, 6)
        event["count"] = count
        event["depth"] = len(STATE.stack)
        event["seq"] = STATE.next_seq()
        emit_raw(event)
