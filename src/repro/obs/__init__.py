"""repro.obs — spans, counters, and structured trace output.

The observability layer for the whole IG-Match pipeline.  Off by
default with a module-level no-op fast path; when enabled it collects

* nesting wall-clock **spans** at phase granularity (intersection-graph
  build, eigensolves, split sweeps, FM passes, coarsening levels),
* process-wide **counters/gauges** (Lanczos iterations, matching
  augmentations, FM moves, ...),
* a **JSON-lines event stream** for machine consumption.

Typical use (what ``repro-partition --profile --trace-json t.jsonl``
does)::

    from repro import obs

    with obs.enabled(sink=obs.JsonLinesSink("trace.jsonl")):
        result = ig_match(h)
        print(obs.phase_report())
    # disable() ran on exit (even on exceptions): counters flushed,
    # sink closed.  The manual obs.enable()/obs.disable() pair remains
    # available when the scope cannot be a single block.

Instrumented library code uses three idioms:

* ``with obs.span("igmatch.sweep", nets=m) as sp: ... sp.set(splits=s)``
  around phases;
* local integer/``perf_counter`` accumulators inside hot loops,
  reported once via ``obs.add_timing`` / ``obs.incr``;
* ``obs.emit("spectral.lanczos", iterations=...)`` for point
  observations worth a trace line of their own.

Everything in a trace is deterministic under a fixed seed except
wall-clock durations (``dur_s`` fields); see
:mod:`repro.obs.events` for the event schema and
``docs/observability.md`` for the span-name catalogue.
"""

from .counters import counters, gauge, gauges, incr, reset_counters
from .diff import (
    BenchDiff,
    CircuitDiff,
    DiffThresholds,
    FieldDiff,
    ScaleDiff,
    diff_payloads,
    diff_scale_payloads,
)
from .events import JsonLinesSink, MemorySink, emit
from .hist import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    HistogramSet,
    log_buckets,
)
from .memprof import (
    RssSampler,
    disable_memprof,
    enable_memprof,
    memory_snapshot,
    memprof_active,
    memprof_enabled,
    rss_sampling,
)
from .proc import build_info, process_metrics
from .prom import parse_prometheus_text, render_prometheus
from .registry import (
    STATE,
    current_state,
    disable,
    enable,
    enabled,
    is_enabled,
    isolated,
    reset,
)
from .render import (
    load_jsonl,
    render_html,
    render_markdown,
    render_scale_html,
    render_scale_markdown,
    render_serving_html,
    render_serving_markdown,
    render_slow_html,
    render_trace_html,
    span_tree_from_events,
)
from .report import flatten_memory, flatten_totals, human_bytes, phase_report
from .span import Span, SpanNode, add_timing, span
from .trace import TraceCapture, current_trace_id, new_trace_id

__all__ = [
    "BenchDiff",
    "CircuitDiff",
    "DEFAULT_LATENCY_BUCKETS",
    "DiffThresholds",
    "FieldDiff",
    "Histogram",
    "HistogramSet",
    "JsonLinesSink",
    "MemorySink",
    "RssSampler",
    "STATE",
    "ScaleDiff",
    "Span",
    "SpanNode",
    "TraceCapture",
    "add_timing",
    "build_info",
    "counters",
    "current_state",
    "current_trace_id",
    "diff_payloads",
    "diff_scale_payloads",
    "disable",
    "disable_memprof",
    "emit",
    "enable",
    "enable_memprof",
    "enabled",
    "flatten_memory",
    "flatten_totals",
    "gauge",
    "gauges",
    "human_bytes",
    "incr",
    "is_enabled",
    "isolated",
    "load_jsonl",
    "log_buckets",
    "memory_snapshot",
    "memprof_active",
    "memprof_enabled",
    "new_trace_id",
    "parse_prometheus_text",
    "phase_report",
    "process_metrics",
    "render_html",
    "render_markdown",
    "render_prometheus",
    "render_scale_html",
    "render_scale_markdown",
    "render_serving_html",
    "render_serving_markdown",
    "render_slow_html",
    "render_trace_html",
    "reset",
    "reset_counters",
    "rss_sampling",
    "span",
    "span_tree_from_events",
]
