"""repro.obs — spans, counters, and structured trace output.

The observability layer for the whole IG-Match pipeline.  Off by
default with a module-level no-op fast path; when enabled it collects

* nesting wall-clock **spans** at phase granularity (intersection-graph
  build, eigensolves, split sweeps, FM passes, coarsening levels),
* process-wide **counters/gauges** (Lanczos iterations, matching
  augmentations, FM moves, ...),
* a **JSON-lines event stream** for machine consumption.

Typical use (what ``repro-partition --profile --trace-json t.jsonl``
does)::

    from repro import obs

    obs.enable(sink=obs.JsonLinesSink("trace.jsonl"))
    result = ig_match(h)
    print(obs.phase_report())
    obs.disable()            # flushes counters, closes the sink

Instrumented library code uses three idioms:

* ``with obs.span("igmatch.sweep", nets=m) as sp: ... sp.set(splits=s)``
  around phases;
* local integer/``perf_counter`` accumulators inside hot loops,
  reported once via ``obs.add_timing`` / ``obs.incr``;
* ``obs.emit("spectral.lanczos", iterations=...)`` for point
  observations worth a trace line of their own.

Everything in a trace is deterministic under a fixed seed except
wall-clock durations (``dur_s`` fields); see
:mod:`repro.obs.events` for the event schema and
``docs/observability.md`` for the span-name catalogue.
"""

from .counters import counters, gauge, incr, reset_counters
from .events import JsonLinesSink, MemorySink, emit
from .registry import STATE, disable, enable, is_enabled, reset
from .report import flatten_totals, phase_report
from .span import Span, SpanNode, add_timing, span

__all__ = [
    "JsonLinesSink",
    "MemorySink",
    "STATE",
    "Span",
    "SpanNode",
    "add_timing",
    "counters",
    "disable",
    "emit",
    "enable",
    "flatten_totals",
    "gauge",
    "incr",
    "is_enabled",
    "phase_report",
    "reset",
    "reset_counters",
    "span",
]
