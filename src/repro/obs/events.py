"""Structured event sinks: JSON-lines on disk, or in-memory for tests.

Every event is one flat JSON object with a ``type`` discriminator:

``{"type": "span", "name": ..., "dur_s": ..., "depth": ..., "seq": ...}``
    A completed (or aggregated) timing span; extra keys are the span's
    attributes.  ``count`` > 1 marks an aggregate over many occurrences.
``{"type": "point", "name": ..., "seq": ...}``
    An instantaneous structured observation (e.g. one eigensolve's
    iteration count, one FM pass's move tally).
``{"type": "counters", "values": {...}}``
    The final counter totals, emitted once when tracing shuts down.

Keys are serialised sorted, so traces are byte-stable under a fixed
seed *except* for wall-clock fields — exactly the fields named
``dur_s`` (span duration in seconds).  Everything else (names, depths,
sequence numbers, iteration counts, move tallies) is deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .registry import STATE

__all__ = ["JsonLinesSink", "MemorySink", "emit", "emit_raw"]


class JsonLinesSink:
    """Append events to a file as JSON lines (one object per line)."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._file = open(self.path, "w", encoding="utf-8")

    def handle(self, event: Dict[str, Any]) -> None:
        self._file.write(json.dumps(event, sort_keys=True, default=str))
        self._file.write("\n")

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


class MemorySink:
    """Collect events in a list — the test double."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self.closed = False

    def handle(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True


def emit_raw(event: Dict[str, Any]) -> None:
    """Hand a prebuilt event dict to every sink (no enabled check)."""
    for sink in STATE.sinks:
        sink.handle(event)


def emit(name: str, **fields: Any) -> None:
    """Emit a ``point`` event; no-op while instrumentation is off."""
    if not STATE.enabled:
        return
    event: Dict[str, Any] = {"type": "point", "name": name}
    event.update(fields)
    event["seq"] = STATE.next_seq()
    emit_raw(event)
