"""Always-on process resource gauges for ``/metrics``.

:func:`process_metrics` samples the current process' memory and CPU
consumption using only the standard library (``resource``, ``os``,
``/proc`` where available) — no psutil dependency.  The serving layer
includes the sample in every ``/metrics`` document (JSON and
Prometheus), and ``repro-loadgen`` records it into
``BENCH_serving.json`` so benchmark runs carry a memory/CPU footprint
alongside latency and throughput.

Fields (all floats; a field is omitted when the platform cannot
provide it rather than reported as a guess):

``process.rss_bytes``
    Current resident set size, read from ``/proc/self/statm`` on Linux.
    Falls back to the peak (``max_rss_bytes``) elsewhere — documented
    as a gauge either way because it is a point-in-time observation.
``process.max_rss_bytes``
    Peak resident set size (``getrusage``; the kernel reports KiB on
    Linux, bytes on macOS).
``process.cpu_seconds``
    Total CPU time consumed (user + system), a monotonically increasing
    counter — rendered as ``repro_process_cpu_seconds_total``.
``process.cpu_user_seconds`` / ``process.cpu_system_seconds``
    The split behind ``cpu_seconds``.
``process.tracemalloc_bytes`` / ``process.tracemalloc_peak_bytes``
    Python-heap bytes currently traced / the traced high-water mark —
    present only while :mod:`tracemalloc` is running (i.e. during a
    memory-profiled run; see :mod:`repro.obs.memprof`).

:func:`build_info` is the constant companion: identifying facts about
the running build (version, python, platform) that the serving layer
exposes as a ``service.info`` section and as a Prometheus
``repro_build_info`` gauge with the values as labels.
"""

from __future__ import annotations

import os
import platform as _platform
import sys
import tracemalloc
from typing import Dict

__all__ = ["build_info", "process_metrics"]


def _max_rss_bytes(ru_maxrss: int) -> float:
    # getrusage reports ru_maxrss in kilobytes on Linux (and most
    # Unixes) but in bytes on macOS.
    if sys.platform == "darwin":
        return float(ru_maxrss)
    return float(ru_maxrss) * 1024.0


def process_metrics() -> Dict[str, float]:
    """A point-in-time sample of this process' resource consumption."""
    out: Dict[str, float] = {}
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        out["max_rss_bytes"] = _max_rss_bytes(usage.ru_maxrss)
        out["cpu_user_seconds"] = float(usage.ru_utime)
        out["cpu_system_seconds"] = float(usage.ru_stime)
        out["cpu_seconds"] = float(usage.ru_utime + usage.ru_stime)
    except (ImportError, OSError):  # pragma: no cover - non-Unix
        times = os.times()
        out["cpu_user_seconds"] = float(times.user)
        out["cpu_system_seconds"] = float(times.system)
        out["cpu_seconds"] = float(times.user + times.system)
    rss = _current_rss_bytes()
    if rss is not None:
        out["rss_bytes"] = rss
    elif "max_rss_bytes" in out:
        out["rss_bytes"] = out["max_rss_bytes"]
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        out["tracemalloc_bytes"] = float(current)
        out["tracemalloc_peak_bytes"] = float(peak)
    return out


def build_info() -> Dict[str, str]:
    """Identifying facts about this build, for ``/metrics`` info gauges.

    All values are strings (they become Prometheus label values on a
    constant ``repro_build_info 1`` sample): the package version, the
    Python version and implementation, and the platform.
    """
    try:
        from importlib.metadata import version

        pkg_version = version("repro")
    except Exception:
        from .. import __version__ as pkg_version
    return {
        "version": pkg_version,
        "python": _platform.python_version(),
        "implementation": _platform.python_implementation(),
        "platform": sys.platform,
    }


def _current_rss_bytes() -> "float | None":
    """Current RSS from ``/proc`` (Linux); ``None`` when unavailable."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        pages = int(fields[1])
        return float(pages * os.sysconf("SC_PAGE_SIZE"))
    except (OSError, IndexError, ValueError):
        return None
