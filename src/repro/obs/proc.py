"""Always-on process resource gauges for ``/metrics``.

:func:`process_metrics` samples the current process' memory and CPU
consumption using only the standard library (``resource``, ``os``,
``/proc`` where available) — no psutil dependency.  The serving layer
includes the sample in every ``/metrics`` document (JSON and
Prometheus), and ``repro-loadgen`` records it into
``BENCH_serving.json`` so benchmark runs carry a memory/CPU footprint
alongside latency and throughput.

Fields (all floats; a field is omitted when the platform cannot
provide it rather than reported as a guess):

``process.rss_bytes``
    Current resident set size, read from ``/proc/self/statm`` on Linux.
    Falls back to the peak (``max_rss_bytes``) elsewhere — documented
    as a gauge either way because it is a point-in-time observation.
``process.max_rss_bytes``
    Peak resident set size (``getrusage``; the kernel reports KiB on
    Linux, bytes on macOS).
``process.cpu_seconds``
    Total CPU time consumed (user + system), a monotonically increasing
    counter — rendered as ``repro_process_cpu_seconds_total``.
``process.cpu_user_seconds`` / ``process.cpu_system_seconds``
    The split behind ``cpu_seconds``.
"""

from __future__ import annotations

import os
import sys
from typing import Dict

__all__ = ["process_metrics"]


def _max_rss_bytes(ru_maxrss: int) -> float:
    # getrusage reports ru_maxrss in kilobytes on Linux (and most
    # Unixes) but in bytes on macOS.
    if sys.platform == "darwin":
        return float(ru_maxrss)
    return float(ru_maxrss) * 1024.0


def process_metrics() -> Dict[str, float]:
    """A point-in-time sample of this process' resource consumption."""
    out: Dict[str, float] = {}
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        out["max_rss_bytes"] = _max_rss_bytes(usage.ru_maxrss)
        out["cpu_user_seconds"] = float(usage.ru_utime)
        out["cpu_system_seconds"] = float(usage.ru_stime)
        out["cpu_seconds"] = float(usage.ru_utime + usage.ru_stime)
    except (ImportError, OSError):  # pragma: no cover - non-Unix
        times = os.times()
        out["cpu_user_seconds"] = float(times.user)
        out["cpu_system_seconds"] = float(times.system)
        out["cpu_seconds"] = float(times.user + times.system)
    rss = _current_rss_bytes()
    if rss is not None:
        out["rss_bytes"] = rss
    elif "max_rss_bytes" in out:
        out["rss_bytes"] = out["max_rss_bytes"]
    return out


def _current_rss_bytes() -> "float | None":
    """Current RSS from ``/proc`` (Linux); ``None`` when unavailable."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        pages = int(fields[1])
        return float(pages * os.sysconf("SC_PAGE_SIZE"))
    except (OSError, IndexError, ValueError):
        return None
