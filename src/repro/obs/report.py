"""Human-readable summary of a profiled run: phase tree + counters.

:func:`phase_report` renders the collected span tree with durations,
aggregating repeated siblings of the same name (``×N``) so loops (per
coarsening level, per ordering) stay one line each.  Numeric attributes
of merged siblings are summed; non-numeric attributes are kept only
when every occurrence agrees.

:func:`flatten_totals` gives the same data as a flat ``name ->
(seconds, count)`` mapping — the machine-readable form the benchmark
suite stores in ``BENCH_obs.json``.  :func:`flatten_memory` does the
same for the ``mem_alloc_bytes`` / ``mem_peak_bytes`` attributes that
:mod:`repro.obs.memprof` attaches to spans.

Memory attributes are rendered as dedicated columns (``Δ`` net
allocation, ``^`` peak) rather than generic attrs, and merged siblings
combine them correctly: net allocation is additive, peak is a
watermark and merges by ``max``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .registry import STATE
from .span import SpanNode

__all__ = ["flatten_memory", "flatten_totals", "human_bytes", "phase_report"]

#: Watermark attributes: summing them over merged siblings would
#: overstate the high-water mark, so they merge by ``max`` instead.
_MAX_MERGED_ATTRS = frozenset({"mem_peak_bytes"})
_MEM_ATTRS = ("mem_alloc_bytes", "mem_peak_bytes")


def _merge_siblings(nodes: List[SpanNode]) -> List[SpanNode]:
    """Aggregate same-named siblings, preserving first-seen order."""
    merged: Dict[str, SpanNode] = {}
    order: List[str] = []
    for node in nodes:
        agg = merged.get(node.name)
        if agg is None:
            agg = SpanNode(node.name, node.attrs)
            agg.seconds = node.seconds
            agg.count = node.count
            agg.children = list(node.children)
            merged[node.name] = agg
            order.append(node.name)
            continue
        agg.seconds += node.seconds
        agg.count += node.count
        agg.children.extend(node.children)
        for key, value in node.attrs.items():
            if key not in agg.attrs:
                agg.attrs[key] = value
            elif isinstance(value, (int, float)) and not isinstance(
                value, bool
            ) and isinstance(agg.attrs[key], (int, float)):
                if key in _MAX_MERGED_ATTRS:
                    agg.attrs[key] = max(agg.attrs[key], value)
                else:
                    agg.attrs[key] = agg.attrs[key] + value
            elif agg.attrs[key] != value:
                del agg.attrs[key]
    return [merged[name] for name in order]


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        if key in _MEM_ATTRS:
            continue
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    if not parts:
        return ""
    return "  [" + " ".join(parts) + "]"


def human_bytes(value: float) -> str:
    """``1536`` → ``'1.5KiB'``; negatives keep their sign."""
    sign = "-" if value < 0 else ""
    magnitude = abs(float(value))
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if magnitude < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{sign}{int(magnitude)}B"
            return f"{sign}{magnitude:.1f}{unit}"
        magnitude /= 1024.0
    return f"{sign}{magnitude:.1f}TiB"  # pragma: no cover - unreachable


def _format_mem(attrs: Dict[str, Any]) -> str:
    if "mem_alloc_bytes" not in attrs and "mem_peak_bytes" not in attrs:
        return ""
    alloc = attrs.get("mem_alloc_bytes")
    peak = attrs.get("mem_peak_bytes")
    parts = []
    if alloc is not None:
        parts.append(f"Δ{human_bytes(alloc)}")
    if peak is not None:
        parts.append(f"^{human_bytes(peak)}")
    return "  " + " ".join(f"{p:>10}" for p in parts)


def _render(
    nodes: List[SpanNode], depth: int, lines: List[str], width: int
) -> None:
    for node in _merge_siblings(nodes):
        label = "  " * depth + node.name
        tally = f" ×{node.count}" if node.count > 1 else ""
        lines.append(
            f"{label:<{width}} {node.seconds:9.4f}s{tally}"
            f"{_format_mem(node.attrs)}"
            f"{_format_attrs(node.attrs)}"
        )
        _render(node.children, depth + 1, lines, width)


def _max_label(nodes: List[SpanNode], depth: int) -> int:
    widest = 0
    for node in nodes:
        widest = max(
            widest,
            2 * depth + len(node.name),
            _max_label(node.children, depth + 1),
        )
    return widest


def phase_report() -> str:
    """Render the collected spans and counters as an indented text tree."""
    lines: List[str] = []
    roots = STATE.roots
    if roots:
        if _has_mem_attrs(roots):
            lines.append("phase tree (seconds; Δ net alloc, ^ peak):")
        else:
            lines.append("phase tree (seconds):")
        width = max(24, _max_label(roots, 1) + 2)
        _render(roots, 1, lines, width)
    if STATE.counters:
        lines.append("counters:")
        width = max(24, max(len(k) for k in STATE.counters) + 4)
        for name in sorted(STATE.counters):
            value = STATE.counters[name]
            if isinstance(value, float) and not value.is_integer():
                rendered = f"{value:.6g}"
            else:
                rendered = f"{int(value)}"
            lines.append(f"  {name:<{width}} {rendered:>12}")
    if not lines:
        return "(no observability data collected)"
    return "\n".join(lines)


def _has_mem_attrs(nodes: List[SpanNode]) -> bool:
    stack = list(nodes)
    while stack:
        node = stack.pop()
        if "mem_alloc_bytes" in node.attrs or "mem_peak_bytes" in node.attrs:
            return True
        stack.extend(node.children)
    return False


def flatten_memory(
    nodes: Optional[List[SpanNode]] = None,
) -> Dict[str, Tuple[int, int]]:
    """Total ``(alloc_bytes, peak_bytes)`` per span name over the tree.

    Net allocation sums across occurrences; peak takes the maximum
    (it is a per-occurrence watermark).  Spans recorded without memory
    attribution are omitted — an empty mapping means memprof was off.
    """
    if nodes is None:
        nodes = STATE.roots
    totals: Dict[str, Tuple[int, int]] = {}
    stack = list(nodes)
    while stack:
        node = stack.pop()
        stack.extend(node.children)
        if (
            "mem_alloc_bytes" not in node.attrs
            and "mem_peak_bytes" not in node.attrs
        ):
            continue
        alloc, peak = totals.get(node.name, (0, 0))
        totals[node.name] = (
            alloc + int(node.attrs.get("mem_alloc_bytes", 0)),
            max(peak, int(node.attrs.get("mem_peak_bytes", 0))),
        )
    return totals


def flatten_totals(
    nodes: Optional[List[SpanNode]] = None,
) -> Dict[str, Tuple[float, int]]:
    """Total ``(seconds, count)`` per span name over the whole tree."""
    if nodes is None:
        nodes = STATE.roots
    totals: Dict[str, Tuple[float, int]] = {}
    stack = list(nodes)
    while stack:
        node = stack.pop()
        seconds, count = totals.get(node.name, (0.0, 0))
        totals[node.name] = (seconds + node.seconds, count + node.count)
        stack.extend(node.children)
    return totals
