"""Opt-in per-span memory attribution and RSS high-water sampling.

Two complementary views of where bytes go:

* **tracemalloc attribution** — :func:`enable_memprof` flips a per-state
  flag that makes every subsequent :func:`repro.obs.span` record two
  extra attributes at close:

  ``mem_alloc_bytes``
      Net Python-heap growth across the span (allocations minus frees,
      from ``tracemalloc.get_traced_memory()`` deltas).  Negative when a
      span frees more than it allocates.
  ``mem_peak_bytes``
      High-water mark of heap growth *above the span's starting point*
      while the span (or any descendant) was open.

  Attribution uses a peak-watermark stack: at each span boundary the
  interval peak since the last boundary is folded into the innermost
  open frame and ``tracemalloc.reset_peak()`` starts a fresh interval,
  so a child's peak is charged to the child *and* propagated to every
  ancestor — parents always report a peak at least as high as any
  child.  Frames carry their span node so spans opened before memprof
  was enabled are simply skipped.

  The flag rides the same :class:`~repro.obs.registry.ObsState` the rest
  of the package uses: when it is off (the default), spans pay one
  attribute load and a false branch — no tracemalloc import, no clock,
  no allocation.  Fully disabled instrumentation keeps the shared
  null-span path untouched.

* **RSS high-water sampling** — :class:`RssSampler` runs a daemon
  thread sampling resident-set size at a fixed interval and remembers
  the high-water mark.  tracemalloc only sees the Python heap; the
  sampler catches numpy buffers, arena overhead, and anything else the
  OS charges to the process.

Because the attribution lands in ordinary span *attributes*, it flows
through the existing machinery for free: span events (``--trace-json``),
fragment serialisation and cross-worker merges
(:func:`repro.obs.trace.merge_into_current`), ``/debug/slow``
exemplars, and ``BENCH_obs.json``.

tracemalloc ownership is reference-counted across nested enables
(e.g. a :class:`~repro.obs.trace.TraceCapture` inheriting the flag from
an enclosing profiled run): tracing stops only when the last enabler
disables, and never if something outside this module started it.
"""

from __future__ import annotations

import threading
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .proc import _current_rss_bytes, process_metrics
from .registry import current_state

__all__ = [
    "RssSampler",
    "disable_memprof",
    "enable_memprof",
    "memory_snapshot",
    "memprof_active",
    "memprof_enabled",
    "rss_sampling",
]

#: Span attribute names written by the attribution hooks.  ``ALLOC`` is
#: additive across merged siblings; ``PEAK`` is a watermark and merges
#: by ``max`` (see :mod:`repro.obs.report`).
MEM_ALLOC_ATTR = "mem_alloc_bytes"
MEM_PEAK_ATTR = "mem_peak_bytes"

_LOCK = threading.Lock()
_REFS = 0
_WE_STARTED_TRACING = False


def memprof_active() -> bool:
    """True when the calling context records per-span memory attrs."""
    return current_state().memprof


def enable_memprof() -> None:
    """Turn on per-span memory attribution for the current obs state.

    Starts ``tracemalloc`` if nothing else has (remembered, so the
    matching :func:`disable_memprof` stops it again).  Idempotent per
    state.  Cheap relative to the partitioner phases it measures, but
    tracemalloc itself slows allocation-heavy code noticeably — hence
    opt-in.
    """
    global _REFS, _WE_STARTED_TRACING
    state = current_state()
    if state.memprof:
        return
    with _LOCK:
        if _REFS == 0 and not tracemalloc.is_tracing():
            tracemalloc.start()
            _WE_STARTED_TRACING = True
        _REFS += 1
    state.memframes = []
    state.memprof = True


def disable_memprof() -> None:
    """Turn attribution off for the current state; settle open frames.

    Spans still open keep whatever was attributed so far: their frames
    are dropped, so they close without memory attrs rather than with
    garbage.  Stops ``tracemalloc`` when this was the last enabler and
    :func:`enable_memprof` originally started it.
    """
    global _REFS, _WE_STARTED_TRACING
    state = current_state()
    if not state.memprof:
        return
    state.memprof = False
    state.memframes = []
    with _LOCK:
        if _REFS > 0:
            _REFS -= 1
        if _REFS == 0 and _WE_STARTED_TRACING:
            if tracemalloc.is_tracing():
                tracemalloc.stop()
            _WE_STARTED_TRACING = False


@contextmanager
def memprof_enabled() -> Iterator[None]:
    """Scope :func:`enable_memprof` to a ``with`` block, exception-safe."""
    enable_memprof()
    try:
        yield
    finally:
        disable_memprof()


def on_span_enter(state: Any, node: Any) -> None:
    """Open a memory frame for ``node`` (called only when memprof is on).

    Folds the interval peak since the previous boundary into the
    innermost open frame, then starts a fresh interval for this span.
    """
    if not tracemalloc.is_tracing():  # stopped externally; degrade
        return
    current, peak = tracemalloc.get_traced_memory()
    frames = state.memframes
    if frames and peak > frames[-1][2]:
        frames[-1][2] = peak
    tracemalloc.reset_peak()
    frames.append([node, current, current])


def on_span_exit(state: Any, node: Any) -> None:
    """Close ``node``'s frame and write its memory attrs.

    Pops only when the top frame belongs to ``node`` — a span opened
    before memprof was enabled has no frame and is left untouched.
    """
    frames = state.memframes
    if not frames or frames[-1][0] is not node:
        return
    if not tracemalloc.is_tracing():
        frames.pop()
        return
    current, peak = tracemalloc.get_traced_memory()
    _, start, peak_abs = frames.pop()
    peak_abs = max(peak_abs, peak, current)
    node.attrs[MEM_ALLOC_ATTR] = int(current - start)
    node.attrs[MEM_PEAK_ATTR] = max(0, int(peak_abs - start))
    if frames and peak_abs > frames[-1][2]:
        frames[-1][2] = peak_abs
    tracemalloc.reset_peak()


def memory_snapshot() -> Dict[str, float]:
    """Point-in-time memory sample: process RSS plus tracemalloc, if on.

    Keys mirror the ``process.*`` gauge family: ``rss_bytes`` and
    ``max_rss_bytes`` always (platform permitting), plus
    ``traced_bytes`` / ``traced_peak_bytes`` while tracemalloc runs.
    """
    proc = process_metrics()
    out: Dict[str, float] = {}
    for key in ("rss_bytes", "max_rss_bytes"):
        if key in proc:
            out[key] = proc[key]
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        out["traced_bytes"] = float(current)
        out["traced_peak_bytes"] = float(peak)
    return out


class RssSampler:
    """Background resident-set-size sampler with a high-water mark.

    tracemalloc attributes Python-heap bytes to spans but is blind to
    numpy buffers and allocator overhead; the OS view of the process is
    what capacity planning cares about.  ``start()`` spawns a daemon
    thread reading RSS every ``interval_s``; ``stop()`` joins it and
    returns the high-water mark in bytes (also kept in
    ``high_water_bytes``).  Sample count is in ``samples``.  Zero when
    the platform exposes no RSS reading.
    """

    def __init__(self, interval_s: float = 0.05):
        self.interval_s = float(interval_s)
        self.high_water_bytes = 0.0
        self.samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _sample_once(self) -> None:
        rss = _current_rss_bytes()
        if rss is not None:
            self.samples += 1
            if rss > self.high_water_bytes:
                self.high_water_bytes = rss

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample_once()

    def start(self) -> "RssSampler":
        if self._thread is not None:
            return self
        self._sample_once()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-rss-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> float:
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
            self._thread = None
        self._sample_once()
        return self.high_water_bytes


@contextmanager
def rss_sampling(interval_s: float = 0.05) -> Iterator[RssSampler]:
    """Sample RSS for the duration of a ``with`` block."""
    sampler = RssSampler(interval_s=interval_s).start()
    try:
        yield sampler
    finally:
        sampler.stop()
