"""Fixed-bucket log-scale latency histograms with mergeable state.

A :class:`Histogram` counts observations into a fixed set of log-spaced
upper bucket boundaries (Prometheus ``le`` semantics: bucket *i* holds
values ``<= boundaries[i]``, with one implicit ``+Inf`` overflow
bucket).  Because the boundaries are fixed at construction and shared
by default, histogram state is **mergeable**: merging is element-wise
addition of bucket counts, so it is associative and commutative —
fragments recorded by different threads, processes, or time windows
fold into one distribution without loss.

Quantiles (:meth:`Histogram.quantile`, p50/p95/p99 via
:meth:`Histogram.percentiles`) are estimated by linear interpolation
inside the bucket containing the target rank — the same estimator
Prometheus' ``histogram_quantile`` uses — then clamped to the observed
``[min, max]`` so a single-sample histogram reports that sample
exactly.  The worst-case error is one bucket width, which the default
log-scale boundaries keep below ~78% relative anywhere in range.

:class:`HistogramSet` is the thread-safe, label-aware registry the
serving layer keeps **always on** (like the engine's ``/metrics``
tallies, independent of whether :mod:`repro.obs` tracing is enabled):
``set.observe("service.request.duration_seconds", dt, algorithm="fm")``
costs one lock acquisition and one bisect.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Histogram",
    "HistogramSet",
    "log_buckets",
]


def log_buckets(
    lo: float = 1e-4, hi: float = 100.0, per_decade: int = 4
) -> Tuple[float, ...]:
    """Log-spaced upper boundaries from ``lo`` to ``hi`` inclusive.

    ``per_decade`` boundaries per factor of ten, rounded to 4
    significant digits so the values are byte-stable across platforms
    and readable in ``/metrics`` output.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    boundaries: List[float] = []
    k = 0
    while True:
        value = float(f"{lo * 10 ** (k / per_decade):.4g}")
        if value > hi * (1 + 1e-9):
            break
        boundaries.append(value)
        k += 1
    return tuple(boundaries)


#: The shared default: 100 µs to 100 s at four buckets per decade.
#: Wide enough for a sub-millisecond cache hit and a minutes-scale
#: exact-partitioner run in the same series.
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-4, 100.0, per_decade=4)


class Histogram:
    """Counts in fixed ``le`` buckets, plus count/sum/min/max.

    Not synchronised — wrap access in a lock (or use
    :class:`HistogramSet`) when sharing across threads.
    """

    __slots__ = ("boundaries", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, boundaries: Optional[Iterable[float]] = None):
        bounds = (
            DEFAULT_LATENCY_BUCKETS
            if boundaries is None
            else tuple(float(b) for b in boundaries)
        )
        if not bounds:
            raise ValueError("need at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"boundaries must be strictly increasing: {bounds}"
            )
        self.boundaries = bounds
        #: Per-bucket (non-cumulative) tallies; the extra last slot is
        #: the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Count one observation (``le`` semantics: ties go low)."""
        value = float(value)
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into self (associative; same boundaries only)."""
        if other.boundaries != self.boundaries:
            raise ValueError(
                "cannot merge histograms with different boundaries"
            )
        for i, tally in enumerate(other.bucket_counts):
            self.bucket_counts[i] += tally
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def copy(self) -> "Histogram":
        dup = Histogram(self.boundaries)
        dup.bucket_counts = list(self.bucket_counts)
        dup.count = self.count
        dup.sum = self.sum
        dup.min = self.min
        dup.max = self.max
        return dup

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (0..1); ``None`` when empty.

        Linear interpolation inside the target bucket (lower edge 0 for
        the first bucket), clamped to the observed ``[min, max]``.  The
        overflow bucket reports the observed maximum — there is no
        upper edge to interpolate toward.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for i, tally in enumerate(self.bucket_counts):
            if tally == 0:
                continue
            cumulative += tally
            if cumulative >= target:
                if i == len(self.boundaries):
                    return self.max
                hi = self.boundaries[i]
                lo = self.boundaries[i - 1] if i > 0 else 0.0
                fraction = (target - (cumulative - tally)) / tally
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - loop always hits count

    def percentiles(self) -> Dict[str, Optional[float]]:
        """The standard latency trio: p50 / p95 / p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # ------------------------------------------------------------------
    def cumulative_buckets(self) -> List[Tuple[Any, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``("+Inf", n)``."""
        out: List[Tuple[Any, int]] = []
        cumulative = 0
        for boundary, tally in zip(self.boundaries, self.bucket_counts):
            cumulative += tally
            out.append((boundary, cumulative))
        out.append(("+Inf", self.count))
        return out

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe state: totals, quantiles, cumulative buckets."""
        doc: Dict[str, Any] = {
            "count": self.count,
            "sum": round(self.sum, 9),
        }
        if self.count:
            doc["min"] = self.min
            doc["max"] = self.max
            doc.update(
                (k, round(v, 9))
                for k, v in self.percentiles().items()
                if v is not None
            )
        doc["buckets"] = [
            [le, cum] for le, cum in self.cumulative_buckets()
        ]
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Histogram(count={self.count}, sum={self.sum:.6g}, "
            f"buckets={len(self.bucket_counts)})"
        )


LabelItems = Tuple[Tuple[str, str], ...]


class HistogramSet:
    """Thread-safe collection of named, labelled histograms.

    One series per ``(name, labels)`` pair, created on first
    observation.  All series in a set share the same boundaries, so any
    two sets (or any two label slices) can be merged.
    """

    def __init__(self, boundaries: Optional[Iterable[float]] = None):
        self.boundaries = (
            DEFAULT_LATENCY_BUCKETS
            if boundaries is None
            else tuple(float(b) for b in boundaries)
        )
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, LabelItems], Histogram] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, Any]) -> Tuple[str, LabelItems]:
        return name, tuple(
            sorted((k, str(v)) for k, v in labels.items())
        )

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` into the ``(name, labels)`` series."""
        key = self._key(name, labels)
        with self._lock:
            hist = self._series.get(key)
            if hist is None:
                hist = self._series[key] = Histogram(self.boundaries)
            hist.observe(value)

    def get(self, name: str, **labels: Any) -> Optional[Histogram]:
        """A copy of one series (or ``None``) — safe to read freely."""
        with self._lock:
            hist = self._series.get(self._key(name, labels))
            return None if hist is None else hist.copy()

    def merged(self, name: str) -> Optional[Histogram]:
        """All label slices of ``name`` merged into one distribution."""
        with self._lock:
            parts = [
                h.copy() for (n, _), h in self._series.items() if n == name
            ]
        if not parts:
            return None
        total = parts[0]
        for part in parts[1:]:
            total.merge(part)
        return total

    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """JSON-safe dump: name -> [{"labels": {...}, ...series}, ...].

        Series are sorted by label items so the output is deterministic
        regardless of observation order.
        """
        with self._lock:
            items = [
                (name, labels, hist.copy())
                for (name, labels), hist in self._series.items()
            ]
        doc: Dict[str, List[Dict[str, Any]]] = {}
        for name, labels, hist in sorted(items, key=lambda t: (t[0], t[1])):
            entry = {"labels": dict(labels)}
            entry.update(hist.snapshot())
            doc.setdefault(name, []).append(entry)
        return doc

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)
