"""Render traces, bench payloads, and diffs for humans.

Two output forms, both free of external assets:

* :func:`render_html` / :func:`render_trace_html` — a self-contained
  HTML report: per-circuit stat tables, a phase-tree flame view
  reconstructed from span ``depth``/``seq``, counters, and inline SVG
  convergence curves (Lanczos residual decay, ratio-cut-vs-split-index
  sweeps, FM pass gains).  Everything is inline CSS/SVG so the file can
  be archived as a CI artifact and opened anywhere.
* :func:`render_markdown` — a compact verdict summary of a
  :class:`repro.obs.diff.BenchDiff` for CI logs and PR comments.

The span-tree reconstruction relies on the event contract of
:mod:`repro.obs.events`: spans are emitted *at close* in ``seq`` order
with ``depth`` equal to the node's depth, so a parent always follows
its children and claims every pending node one level deeper.
"""

from __future__ import annotations

import html
import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .diff import BenchDiff, FieldDiff, GREW, REGRESSED, SLOWER, ScaleDiff

__all__ = [
    "load_jsonl",
    "render_html",
    "render_scale_html",
    "render_scale_markdown",
    "render_serving_html",
    "render_serving_markdown",
    "render_slow_html",
    "render_trace_html",
    "render_markdown",
    "span_tree_from_events",
]


# ----------------------------------------------------------------------
# Span-tree reconstruction (depth/seq -> nested dicts)


def span_tree_from_events(
    events: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Rebuild the phase tree from ``span`` events.

    Returns a list of root nodes ``{"name", "dur_s", "count", "attrs",
    "children"}``.  Events must be in ``seq`` order (as written);
    non-span events are ignored.
    """
    pending: Dict[int, List[Dict[str, Any]]] = {}
    reserved = {"type", "name", "dur_s", "depth", "seq", "count"}
    for event in events:
        if event.get("type") != "span":
            continue
        depth = int(event.get("depth", 0))
        node = {
            "name": event.get("name", "?"),
            "dur_s": float(event.get("dur_s", 0.0)),
            "count": int(event.get("count", 1)),
            "attrs": {
                k: v for k, v in event.items() if k not in reserved
            },
            "children": pending.pop(depth + 1, []),
        }
        pending.setdefault(depth, []).append(node)
    roots = pending.get(0, [])
    # Orphans (trace cut mid-run) surface as extra roots rather than
    # vanishing.
    for depth in sorted(k for k in pending if k > 0):
        roots.extend(pending[depth])
    return roots


# ----------------------------------------------------------------------
# Inline SVG curves

#: Known convergence curves: name -> (x field, y field, log-scale y).
_CURVE_FIELDS: Dict[str, Tuple[str, str, bool]] = {
    "spectral.lanczos.convergence": ("steps", "residuals", True),
    "splits.curve": ("ranks", "ratio_cuts", False),
    "igmatch.curve": ("ranks", "ratio_cuts", False),
    "fm.curve": ("passes", "cuts", False),
}


def _curve_series(
    event: Dict[str, Any],
) -> Optional[Tuple[List[float], List[float], bool]]:
    """Extract (xs, ys, log_y) from a curve point event, if it is one."""
    name = event.get("name", "")
    if name in _CURVE_FIELDS:
        x_field, y_field, log_y = _CURVE_FIELDS[name]
    else:
        lists = [
            k
            for k, v in event.items()
            if isinstance(v, list) and v
            and all(isinstance(e, (int, float)) for e in v)
        ]
        if len(lists) < 2:
            return None
        x_field, y_field, log_y = lists[0], lists[1], False
    xs = event.get(x_field)
    ys = event.get(y_field)
    if not isinstance(xs, list) or not isinstance(ys, list):
        return None
    n = min(len(xs), len(ys))
    if n < 2:
        return None
    return (
        [float(x) for x in xs[:n]],
        [float(y) for y in ys[:n]],
        log_y,
    )


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.4g}"


def _svg_curve(
    title: str, xs: List[float], ys: List[float], log_y: bool = False
) -> str:
    """One inline SVG line chart (340x180, no external assets)."""
    width, height = 340, 180
    left, right, top, bottom = 46, 8, 22, 22
    plot_w = width - left - right
    plot_h = height - top - bottom

    if log_y:
        floor = min((y for y in ys if y > 0), default=1e-16)
        ys_t = [math.log10(max(y, floor * 1e-2)) for y in ys]
    else:
        ys_t = list(ys)
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys_t), max(ys_t)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    def px(x: float) -> float:
        return left + (x - x_min) / (x_max - x_min) * plot_w

    def py(y: float) -> float:
        return top + (y_max - y) / (y_max - y_min) * plot_h

    points = " ".join(
        f"{px(x):.1f},{py(y):.1f}" for x, y in zip(xs, ys_t)
    )
    y_lo_label = _fmt(min(ys))
    y_hi_label = _fmt(max(ys))
    if log_y:
        y_lo_label = f"1e{y_min:.1f}"
        y_hi_label = f"1e{y_max:.1f}"
    best_i = min(range(len(ys)), key=lambda i: ys[i])
    return (
        f'<svg class="curve" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<text x="{left}" y="13" class="ct">{html.escape(title)}'
        f"{' (log y)' if log_y else ''}</text>"
        f'<rect x="{left}" y="{top}" width="{plot_w}" '
        f'height="{plot_h}" class="pf"/>'
        f'<polyline points="{points}" class="pl"/>'
        f'<circle cx="{px(xs[best_i]):.1f}" cy="{py(ys_t[best_i]):.1f}" '
        f'r="3" class="pb"/>'
        f'<text x="{left - 4}" y="{top + 8}" class="al" '
        f'text-anchor="end">{y_hi_label}</text>'
        f'<text x="{left - 4}" y="{top + plot_h}" class="al" '
        f'text-anchor="end">{y_lo_label}</text>'
        f'<text x="{left}" y="{height - 6}" class="al">{_fmt(x_min)}</text>'
        f'<text x="{width - right}" y="{height - 6}" class="al" '
        f'text-anchor="end">{_fmt(x_max)}</text>'
        f"</svg>"
    )


def _curves_html(point_events: Sequence[Dict[str, Any]]) -> str:
    charts = []
    for event in point_events:
        series = _curve_series(event)
        if series is None:
            continue
        xs, ys, log_y = series
        charts.append(_svg_curve(event.get("name", "?"), xs, ys, log_y))
    if not charts:
        return ""
    return '<div class="curves">' + "".join(charts) + "</div>"


# ----------------------------------------------------------------------
# Phase-tree flame view


def _flame_rows(
    nodes: Sequence[Dict[str, Any]],
    depth: int,
    total: float,
    rows: List[str],
) -> None:
    for node in nodes:
        pct = 100.0 * node["dur_s"] / total if total > 0 else 0.0
        tally = f" ×{node['count']}" if node["count"] > 1 else ""
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(node["attrs"].items())
        )
        rows.append(
            '<div class="frow">'
            f'<span class="fname" style="padding-left:{depth * 18}px" '
            f'title="{html.escape(attrs)}">'
            f"{html.escape(node['name'])}{tally}</span>"
            f'<span class="fsecs">{node["dur_s"]:.4f}s</span>'
            f'<span class="fbar"><span class="ffill" '
            f'style="width:{pct:.2f}%"></span></span>'
            "</div>"
        )
        _flame_rows(node["children"], depth + 1, total, rows)


def _flame_html(span_events: Sequence[Dict[str, Any]]) -> str:
    roots = span_tree_from_events(span_events)
    if not roots:
        return ""
    total = sum(node["dur_s"] for node in roots) or 1.0
    rows: List[str] = []
    _flame_rows(roots, 0, total, rows)
    return '<div class="flame">' + "".join(rows) + "</div>"


# ----------------------------------------------------------------------
# Tables


def _counters_html(counters: Dict[str, float]) -> str:
    if not counters:
        return ""
    rows = "".join(
        f"<tr><td>{html.escape(name)}</td>"
        f'<td class="num">{_fmt(float(value))}</td></tr>'
        for name, value in sorted(counters.items())
    )
    return (
        "<details><summary>counters</summary>"
        f"<table>{rows}</table></details>"
    )


_STATUS_CLASS = {
    REGRESSED: "bad",
    SLOWER: "warn",
    GREW: "warn",
    "improved": "good",
    "faster": "good",
    "shrank": "good",
    "new": "info",
    "missing": "info",
}


def _diff_rows(circuit_name: str, fields: Sequence[FieldDiff]) -> str:
    rows = []
    for f in fields:
        cls = _STATUS_CLASS.get(f.status, "")
        b = "—" if f.baseline is None else _fmt(float(f.baseline))
        c = "—" if f.current is None else _fmt(float(f.current))
        rows.append(
            f'<tr class="{cls}"><td>{html.escape(circuit_name)}</td>'
            f"<td>{html.escape(f.kind)}</td>"
            f"<td>{html.escape(f.name)}</td>"
            f'<td class="num">{b}</td><td class="num">{c}</td>'
            f"<td>{f.status}</td></tr>"
        )
    return "".join(rows)


def _diff_html(diff: BenchDiff) -> str:
    counts = diff.counts()
    badges = " ".join(
        f'<span class="badge {_STATUS_CLASS.get(status, "")}">'
        f"{counts[status]} {status}</span>"
        for status in sorted(counts)
    )
    warning = ""
    if diff.mismatched_config:
        pairs = ", ".join(
            f"{k}: {diff.baseline_meta.get(k)!r} → "
            f"{diff.current_meta.get(k)!r}"
            for k in diff.mismatched_config
        )
        warning = (
            f'<p class="bad">⚠ config mismatch between payloads '
            f"({html.escape(pairs)}) — verdicts below compare different "
            "runs.</p>"
        )
    interesting = []
    for circuit in diff.circuits:
        if circuit.status != "common":
            interesting.append(
                f'<tr class="info"><td>{html.escape(circuit.name)}</td>'
                f'<td>circuit</td><td>—</td><td class="num">—</td>'
                f'<td class="num">—</td><td>{circuit.status}</td></tr>'
            )
            continue
        shown = [f for f in circuit.fields if f.status != "unchanged"]
        interesting.append(_diff_rows(circuit.name, shown))
    body = "".join(interesting)
    if not body:
        body = (
            '<tr><td colspan="6">no changes — payloads agree on every '
            "deterministic field and every wall clock is within "
            "tolerance</td></tr>"
        )
    verdict = (
        '<p class="bad"><strong>✗ deterministic regression</strong> — '
        f"{len(diff.regressions)} field(s) regressed</p>"
        if diff.has_regressions
        else '<p class="good"><strong>✓ no deterministic '
        "regressions</strong></p>"
    )
    return (
        "<section><h2>Baseline comparison</h2>"
        f"{warning}{verdict}<p>{badges}</p>"
        "<table><tr><th>circuit</th><th>kind</th><th>field</th>"
        "<th>baseline</th><th>current</th><th>verdict</th></tr>"
        f"{body}</table></section>"
    )


_CSS = """
body{font:14px/1.45 -apple-system,'Segoe UI',Roboto,sans-serif;
  margin:24px auto;max-width:1060px;color:#1a1a2e;padding:0 16px}
h1{font-size:22px}h2{font-size:17px;margin:28px 0 8px;
  border-bottom:1px solid #d8d8e0;padding-bottom:4px}
h3{font-size:15px;margin:18px 0 6px}
table{border-collapse:collapse;margin:8px 0}
td,th{padding:3px 10px;border:1px solid #e2e2ea;text-align:left}
th{background:#f4f4f8}.num{text-align:right;
  font-variant-numeric:tabular-nums}
.meta{color:#555;font-size:13px}
.flame{margin:8px 0;border:1px solid #e2e2ea;border-radius:4px;
  padding:6px 8px}
.frow{display:flex;align-items:center;gap:8px;font-size:13px;
  padding:1px 0}
.fname{flex:0 0 340px;overflow:hidden;text-overflow:ellipsis;
  white-space:nowrap;font-family:ui-monospace,monospace}
.fsecs{flex:0 0 84px;text-align:right;
  font-variant-numeric:tabular-nums}
.fbar{flex:1;background:#f0f0f5;border-radius:2px;height:12px;
  overflow:hidden}
.ffill{display:block;height:100%;background:#5b7fd4;min-width:1px}
.curves{display:flex;flex-wrap:wrap;gap:10px;margin:8px 0}
.curve{border:1px solid #e2e2ea;border-radius:4px;background:#fff}
.ct{font-size:11px;font-weight:600;fill:#1a1a2e}
.al{font-size:10px;fill:#777}
.pf{fill:#fafafc;stroke:#e2e2ea}
.pl{fill:none;stroke:#5b7fd4;stroke-width:1.5}
.pb{fill:#d4605b}
.pp{fill:#5b7fd4}
.pfit{fill:none;stroke:#d4605b;stroke-width:1.2;
  stroke-dasharray:5 3}
.bad{color:#b02a2a}.bad td{background:#fdeaea}
.warn{color:#9a6b00}.warn td{background:#fdf6e3}
.good{color:#1d7a3d}.good td:last-child{background:#e8f7ee}
.info td{background:#eef3fb}
.badge{display:inline-block;padding:1px 8px;border-radius:10px;
  background:#f0f0f5;margin-right:4px;font-size:12px}
details summary{cursor:pointer;color:#555;font-size:13px}
"""


def _page(title: str, body: str) -> str:
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>{body}</body></html>"
    )


def _circuit_section(circuit: Dict[str, Any]) -> str:
    stats = (
        "<table><tr><th>modules</th><th>nets</th><th>nets cut</th>"
        "<th>ratio cut</th><th>seconds</th></tr>"
        f'<tr><td class="num">{circuit.get("modules", "—")}</td>'
        f'<td class="num">{circuit.get("nets", "—")}</td>'
        f'<td class="num">{circuit.get("nets_cut", "—")}</td>'
        f'<td class="num">{_fmt(float(circuit.get("ratio_cut", 0.0)))}'
        "</td>"
        f'<td class="num">{circuit.get("seconds", "—")}</td></tr>'
        "</table>"
    )
    flame = _flame_html(circuit.get("spans", []))
    curves = _curves_html(circuit.get("curves", []))
    counters = _counters_html(circuit.get("counters", {}))
    return (
        f"<section><h2>{html.escape(circuit['name'])}</h2>"
        f"{stats}{flame}{curves}{counters}</section>"
    )


def render_html(
    payload: Dict[str, Any],
    diff: Optional[BenchDiff] = None,
    title: str = "repro bench report",
) -> str:
    """Render a ``BENCH_obs.json`` payload (and optional diff) as HTML."""
    meta = (
        '<p class="meta">algorithm '
        f"<strong>{html.escape(str(payload.get('algorithm', '?')))}"
        f"</strong> · seed {payload.get('seed', '?')} · scale "
        f"{payload.get('scale', '?')} · schema "
        f"{payload.get('schema', '?')}</p>"
    )
    sections = [meta]
    if diff is not None:
        sections.append(_diff_html(diff))
    for circuit in payload.get("circuits", []):
        sections.append(_circuit_section(circuit))
    return _page(title, "".join(sections))


def render_trace_html(
    events: Sequence[Dict[str, Any]],
    title: str = "repro trace report",
) -> str:
    """Render a JSON-lines trace (list of event dicts) as HTML.

    Accepts the events of one profiled run — e.g.
    ``[json.loads(line) for line in open("trace.jsonl")]`` — and shows
    the phase-tree flame view, convergence curves, and final counters.
    """
    flame = _flame_html(list(events))
    points = [e for e in events if e.get("type") == "point"]
    curves = _curves_html(points)
    counters: Dict[str, float] = {}
    for event in events:
        if event.get("type") == "counters":
            counters = event.get("values", {})
    body = flame + curves + _counters_html(counters)
    if not body:
        body = "<p>(no events)</p>"
    return _page(title, body)


def _flame_from_nodes(nodes: Sequence[Dict[str, Any]]) -> str:
    """Flame view straight from span-node dicts (``seconds`` keyed),
    the shape :class:`repro.obs.trace.TraceCapture` stores."""

    def convert(node: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "name": node.get("name", "?"),
            "dur_s": float(node.get("seconds", 0.0)),
            "count": int(node.get("count", 1)),
            "attrs": dict(node.get("attrs", {})),
            "children": [
                convert(child) for child in node.get("children", [])
            ],
        }

    roots = [convert(node) for node in nodes]
    if not roots:
        return ""
    total = sum(node["dur_s"] for node in roots) or 1.0
    rows: List[str] = []
    _flame_rows(roots, 0, total, rows)
    return '<div class="flame">' + "".join(rows) + "</div>"


def render_slow_html(
    exemplars: Sequence[Dict[str, Any]],
    title: str = "repro slow requests",
) -> str:
    """Render ``GET /debug/slow`` exemplars as a self-contained report.

    Each exemplar (see :class:`repro.service.engine.SlowLog`) gets one
    section: the request's provenance line (trace id, algorithm, cache
    source, duration, capture time), the full phase-tree flame view of
    what the request actually computed, any convergence curves its
    point events carried, and its counter totals.  Newest first, same
    inline-CSS/SVG contract as every other obs report.
    """
    sections: List[str] = []
    for entry in exemplars:
        meta = (
            '<p class="meta">trace <strong>'
            f"{html.escape(str(entry.get('trace_id', '?')))}</strong>"
            f" · algorithm {html.escape(str(entry.get('algorithm', '?')))}"
            f" · source {html.escape(str(entry.get('source', '?')))}"
            f" · {float(entry.get('duration_s', 0.0)):.4f}s"
            f" · {html.escape(str(entry.get('time', '?')))}</p>"
        )
        flame = _flame_from_nodes(entry.get("spans", []))
        points = [
            e
            for e in entry.get("events", [])
            if e.get("type") == "point"
        ]
        curves = _curves_html(points)
        counters = _counters_html(entry.get("counters", {}))
        sections.append(
            "<section><h2>"
            f"{html.escape(str(entry.get('trace_id', '?')))}"
            f"</h2>{meta}{flame}{curves}{counters}</section>"
        )
    if not sections:
        sections.append("<p>(no slow requests recorded)</p>")
    return _page(title, "".join(sections))


# ----------------------------------------------------------------------
# Markdown summary (CI logs)


def render_markdown(diff: BenchDiff) -> str:
    """Compact verdict summary of a diff for CI logs / PR comments."""
    lines: List[str] = []
    counts = diff.counts()
    tally = ", ".join(
        f"{counts[status]} {status}" for status in sorted(counts)
    )
    if diff.mismatched_config:
        pairs = ", ".join(
            f"{k}={diff.baseline_meta.get(k)!r}→"
            f"{diff.current_meta.get(k)!r}"
            for k in diff.mismatched_config
        )
        lines.append(f"⚠ config mismatch: {pairs}")
    if diff.has_regressions:
        lines.append(
            f"✗ REGRESSED: {len(diff.regressions)} deterministic "
            f"field(s) ({tally or 'no fields compared'})"
        )
    else:
        lines.append(
            "✓ no deterministic regressions "
            f"({tally or 'no fields compared'})"
        )
    for circuit in diff.circuits:
        if circuit.status != "common":
            lines.append(f"- {circuit.name}: circuit {circuit.status}")
            continue
        changed = [f for f in circuit.fields if f.status != "unchanged"]
        for f in changed:
            b = "—" if f.baseline is None else _fmt(float(f.baseline))
            c = "—" if f.current is None else _fmt(float(f.current))
            marker = {
                REGRESSED: "✗",
                SLOWER: "~",
                GREW: "~",
                "improved": "✓",
                "faster": "~",
                "shrank": "~",
            }.get(f.status, "·")
            lines.append(
                f"- {marker} {circuit.name} {f.kind} {f.name}: "
                f"{b} → {c} ({f.status})"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Serving benchmark reports (BENCH_serving.json)

_SLO_VERDICT_CLASS = {
    "pass": "good",
    "pass-within-noise": "warn",
    "fail": "bad",
    "skipped": "info",
}

_CHECK_STATUS_CLASS = {
    "ok": "good",
    "mismatch": "bad",
    "indeterminate": "warn",
}

_SLO_VERDICT_MARK = {
    "pass": "✓",
    "pass-within-noise": "~",
    "fail": "✗",
    "skipped": "·",
}


def _serving_overview(payload: Dict[str, Any]) -> List[str]:
    """The headline facts of one serving run, as plain strings."""
    client = payload.get("client", {})
    workload = payload.get("workload", {})
    outcomes = client.get("outcomes", {})
    mix = ", ".join(
        f"{name}={weight:.2f}"
        for name, weight in sorted(workload.get("mix", {}).items())
    )
    model = workload.get("model", "?")
    shape = (
        f"concurrency {client.get('concurrency')}"
        if model == "closed"
        else f"rate {client.get('rate')}/s"
    )
    lines = [
        f"model {model} ({shape}) · mix {mix} · "
        f"zipf s={workload.get('zipf_s')} · seed {workload.get('seed')}",
        f"{client.get('requests', 0)} requests in "
        f"{float(client.get('elapsed_s', 0.0)):.2f}s — "
        + ", ".join(
            f"{outcomes.get(k, 0)} {k}"
            for k in ("ok", "rejected", "error", "refused", "transport")
            if outcomes.get(k)
        ),
    ]
    rps = client.get("rps")
    error_rate = client.get("error_rate")
    facts = []
    if rps is not None:
        facts.append(f"throughput {float(rps):.2f} ok/s")
    if error_rate is not None:
        facts.append(f"error rate {float(error_rate):.4f}")
    sources = client.get("by_source", {})
    if sources:
        facts.append(
            "sources "
            + ", ".join(
                f"{name}={sources[name]}" for name in sorted(sources)
            )
        )
    if facts:
        lines.append(" · ".join(facts))
    opportunity = payload.get("canonical_tier_opportunity", {})
    if opportunity.get("isomorph_requests"):
        lines.append(
            f"canonical-tier opportunity: "
            f"{opportunity.get('isomorph_computed', 0)} of "
            f"{opportunity['isomorph_requests']} isomorph requests "
            "recomputed (same canonical fingerprint as a cached base)"
        )
    return lines


def render_serving_markdown(payload: Dict[str, Any]) -> str:
    """Compact summary of a ``BENCH_serving.json`` payload for CI logs."""
    lines: List[str] = list(_serving_overview(payload))
    latency = payload.get("latency", {}).get("ok", {})
    if latency:
        lines.append(
            "ok latency: "
            + " · ".join(
                f"{q}={_fmt(float(latency[q]))}s"
                for q in ("p50", "p95", "p99")
                if latency.get(q) is not None
            )
        )
    slo = payload.get("slo", {})
    for row in slo.get("verdicts", []):
        mark = _SLO_VERDICT_MARK.get(row.get("verdict", ""), "·")
        observed = row.get("observed")
        shown = "—" if observed is None else _fmt(float(observed))
        lines.append(
            f"- {mark} SLO {row.get('objective')}: observed {shown} "
            f"vs target {_fmt(float(row.get('target', 0.0)))} "
            f"({row.get('verdict')})"
        )
    if slo.get("ok") is True:
        lines.append("✓ SLO: all objectives met")
    elif slo.get("ok") is False:
        lines.append("✗ SLO: objective(s) failed")
    cross = payload.get("crosscheck", {})
    mismatches = [
        row
        for row in cross.get("checks", [])
        if row.get("status") != "ok"
    ]
    if cross.get("ok"):
        lines.append(
            f"✓ cross-check: {len(cross.get('checks', []))} "
            "client/server accounting checks passed"
        )
    else:
        lines.append("✗ cross-check: client/server accounting disagrees")
        for row in mismatches:
            lines.append(
                f"- ✗ {row.get('check')}: expected "
                f"{row.get('expected')!r}, observed "
                f"{row.get('observed')!r} ({row.get('status')})"
            )
    return "\n".join(lines)


def render_serving_html(
    payload: Dict[str, Any],
    title: str = "repro serving benchmark",
) -> str:
    """Render a ``BENCH_serving.json`` payload as self-contained HTML."""
    overview = "".join(
        f'<p class="meta">{html.escape(line)}</p>'
        for line in _serving_overview(payload)
    )

    slo = payload.get("slo", {})
    slo_rows = []
    for row in slo.get("verdicts", []):
        cls = _SLO_VERDICT_CLASS.get(row.get("verdict", ""), "")
        observed = row.get("observed")
        shown = "—" if observed is None else _fmt(float(observed))
        slo_rows.append(
            f'<tr class="{cls}">'
            f"<td>{html.escape(str(row.get('objective')))}</td>"
            f'<td class="num">{_fmt(float(row.get("target", 0.0)))}</td>'
            f'<td class="num">{shown}</td>'
            f"<td>{html.escape(str(row.get('verdict')))}</td></tr>"
        )
    if slo_rows:
        headline = (
            '<p class="good"><strong>✓ all SLO objectives met</strong></p>'
            if slo.get("ok")
            else '<p class="bad"><strong>✗ SLO objective(s) failed'
            "</strong></p>"
        )
        slo_html = (
            "<section><h2>SLO verdicts</h2>" + headline +
            "<table><tr><th>objective</th><th>target</th>"
            "<th>observed</th><th>verdict</th></tr>"
            + "".join(slo_rows)
            + "</table></section>"
        )
    else:
        slo_html = (
            "<section><h2>SLO verdicts</h2>"
            "<p>(no SLO asserted)</p></section>"
        )

    cross = payload.get("crosscheck", {})
    check_rows = []
    for row in cross.get("checks", []):
        cls = _CHECK_STATUS_CLASS.get(row.get("status", ""), "")
        detail = row.get("detail", "")
        check_rows.append(
            f'<tr class="{cls}">'
            f"<td>{html.escape(str(row.get('check')))}</td>"
            f'<td class="num">{html.escape(str(row.get("expected")))}</td>'
            f'<td class="num">{html.escape(str(row.get("observed")))}</td>'
            f"<td>{html.escape(str(row.get('status')))}</td>"
            f"<td>{html.escape(str(detail))}</td></tr>"
        )
    cross_headline = (
        '<p class="good"><strong>✓ server metrics account for every '
        "client request</strong></p>"
        if cross.get("ok")
        else '<p class="bad"><strong>✗ client/server accounting '
        "disagrees</strong></p>"
    )
    cross_html = (
        "<section><h2>Client/server cross-check</h2>" + cross_headline +
        "<table><tr><th>check</th><th>expected</th><th>observed</th>"
        "<th>status</th><th>detail</th></tr>"
        + "".join(check_rows)
        + "</table></section>"
    )

    latency = payload.get("latency", {})
    latency_rows = []
    for label, block in (
        ("all requests", latency.get("all")),
        ("ok only", latency.get("ok")),
    ):
        if not block:
            continue
        latency_rows.append(
            f"<tr><td>{html.escape(label)}</td>"
            f'<td class="num">{block.get("count", 0)}</td>'
            + "".join(
                f'<td class="num">'
                f"{_fmt(float(block[q])) if block.get(q) is not None else '—'}"
                "</td>"
                for q in ("p50", "p95", "p99", "max")
            )
            + "</tr>"
        )
    for block in latency.get("ok_by_source", []):
        labels = block.get("labels", {})
        latency_rows.append(
            f"<tr><td>ok · source={html.escape(str(labels.get('source')))}"
            f'</td><td class="num">{block.get("count", 0)}</td>'
            + "".join(
                f'<td class="num">'
                f"{_fmt(float(block[q])) if block.get(q) is not None else '—'}"
                "</td>"
                for q in ("p50", "p95", "p99", "max")
            )
            + "</tr>"
        )
    latency_html = (
        "<section><h2>Client-observed latency</h2>"
        "<table><tr><th>slice</th><th>count</th><th>p50</th>"
        "<th>p95</th><th>p99</th><th>max</th></tr>"
        + ("".join(latency_rows) or '<tr><td colspan="6">(none)</td></tr>')
        + "</table></section>"
    )

    corpus = payload.get("corpus", {})
    corpus_html = (
        "<section><h2>Corpus</h2><p class='meta'>"
        f"{corpus.get('entries', 0)} entries "
        f"({corpus.get('bases', 0)} base, "
        f"{corpus.get('isomorphs', 0)} relabeled isomorph) · "
        f"{corpus.get('modules', 0)} modules, "
        f"{corpus.get('nets', 0)} nets total</p></section>"
    )

    return _page(
        title, overview + slo_html + cross_html + latency_html + corpus_html
    )


# ----------------------------------------------------------------------
# Scale-curve reports (BENCH_scale.json)


def _svg_loglog(
    title: str,
    xs: List[float],
    ys: List[float],
    exponent: Optional[float] = None,
    coeff: Optional[float] = None,
) -> str:
    """A log-log scatter of measured points with the fitted power law.

    ``exponent`` / ``coeff`` describe the least-squares fit
    ``y = coeff * x**exponent``; when given, it is drawn as a dashed
    line across the measured x range, so curvature away from the fit —
    the thing a single exponent number hides — is visible at a glance.
    """
    width, height = 340, 180
    left, right, top, bottom = 52, 10, 22, 22
    plot_w = width - left - right
    plot_h = height - top - bottom

    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        return ""
    lx = [math.log10(x) for x, _ in pairs]
    ly = [math.log10(y) for _, y in pairs]
    x_min, x_max = min(lx), max(lx)
    y_min, y_max = min(ly), max(ly)
    if exponent is not None and coeff is not None and coeff > 0:
        fit_lo = math.log10(coeff) + exponent * x_min
        fit_hi = math.log10(coeff) + exponent * x_max
        y_min = min(y_min, fit_lo, fit_hi)
        y_max = max(y_max, fit_lo, fit_hi)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    def px(x: float) -> float:
        return left + (x - x_min) / (x_max - x_min) * plot_w

    def py(y: float) -> float:
        return top + (y_max - y) / (y_max - y_min) * plot_h

    points = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in zip(lx, ly))
    dots = "".join(
        f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.5" class="pp"/>'
        for x, y in zip(lx, ly)
    )
    fit_line = ""
    label = title
    if exponent is not None and coeff is not None and coeff > 0:
        fit_lo = math.log10(coeff) + exponent * x_min
        fit_hi = math.log10(coeff) + exponent * x_max
        fit_line = (
            f'<polyline points="{px(x_min):.1f},{py(fit_lo):.1f} '
            f'{px(x_max):.1f},{py(fit_hi):.1f}" class="pfit"/>'
        )
        label = f"{title} ~ n^{exponent:.2f}"
    return (
        f'<svg class="curve" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<text x="{left}" y="13" class="ct">{html.escape(label)} '
        f"(log-log)</text>"
        f'<rect x="{left}" y="{top}" width="{plot_w}" '
        f'height="{plot_h}" class="pf"/>'
        f"{fit_line}"
        f'<polyline points="{points}" class="pl"/>'
        f"{dots}"
        f'<text x="{left - 4}" y="{top + 8}" class="al" '
        f'text-anchor="end">{_fmt(10 ** y_max)}</text>'
        f'<text x="{left - 4}" y="{top + plot_h}" class="al" '
        f'text-anchor="end">{_fmt(10 ** y_min)}</text>'
        f'<text x="{left}" y="{height - 6}" class="al">'
        f"{_fmt(10 ** x_min)}</text>"
        f'<text x="{width - right}" y="{height - 6}" class="al" '
        f'text-anchor="end">{_fmt(10 ** x_max)}</text>'
        f"</svg>"
    )


def _fit_label(fit: Optional[Dict[str, Any]]) -> str:
    if not fit or fit.get("exponent") is None:
        return "—"
    text = f"n^{float(fit['exponent']):.3f}"
    stderr = fit.get("stderr")
    if stderr is not None:
        text += f" ±{float(stderr):.3f}"
    r2 = fit.get("r2")
    if r2 is not None:
        text += f" (R²={float(r2):.3f})"
    return text


def _scale_meta_line(payload: Dict[str, Any]) -> str:
    scales = payload.get("scales", [])
    ladder = ", ".join(_fmt(float(s)) for s in scales)
    return (
        f"circuit {payload.get('circuit', '?')} · seed "
        f"{payload.get('seed', '?')} · ladder ×[{ladder}] · schema "
        f"{payload.get('schema', '?')}"
    )


def _scale_diff_section(diff: ScaleDiff) -> str:
    counts = diff.counts()
    badges = " ".join(
        f'<span class="badge {_STATUS_CLASS.get(status, "")}">'
        f"{counts[status]} {status}</span>"
        for status in sorted(counts)
    )
    warning = ""
    if diff.mismatched_config:
        pairs = ", ".join(
            f"{k}: {diff.baseline_meta.get(k)!r} → "
            f"{diff.current_meta.get(k)!r}"
            for k in diff.mismatched_config
        )
        warning = (
            f'<p class="bad">⚠ config mismatch between payloads '
            f"({html.escape(pairs)}) — exponents below compare different "
            "ladders.</p>"
        )
    verdict = (
        '<p class="bad"><strong>✗ complexity-exponent regression</strong>'
        f" — {len(diff.regressions)} fit(s) drifted beyond tolerance</p>"
        if diff.has_regressions
        else '<p class="good"><strong>✓ no exponent regressions'
        "</strong></p>"
    )
    rows = []
    for f in diff.fields:
        if f.status == "unchanged":
            continue
        cls = _STATUS_CLASS.get(f.status, "")
        b = "—" if f.baseline is None else _fmt(float(f.baseline))
        c = "—" if f.current is None else _fmt(float(f.current))
        rows.append(
            f'<tr class="{cls}"><td>{html.escape(f.kind)}</td>'
            f"<td>{html.escape(f.name)}</td>"
            f'<td class="num">{b}</td><td class="num">{c}</td>'
            f"<td>{f.status}</td></tr>"
        )
    body = "".join(rows) or (
        '<tr><td colspan="5">every fitted exponent is within '
        "tolerance of the baseline</td></tr>"
    )
    return (
        "<section><h2>Baseline comparison</h2>"
        f"{warning}{verdict}<p>{badges}</p>"
        "<table><tr><th>kind</th><th>field</th><th>baseline</th>"
        "<th>current</th><th>verdict</th></tr>"
        f"{body}</table></section>"
    )


def render_scale_html(
    payload: Dict[str, Any],
    diff: Optional[ScaleDiff] = None,
    title: str = "repro scale curves",
) -> str:
    """Render a ``BENCH_scale.json`` payload (and optional diff) as
    self-contained HTML: per-algorithm log-log plots of wall time and
    peak memory against instance size, the fitted power laws, and the
    raw measurement table."""
    sections = [
        f'<p class="meta">{html.escape(_scale_meta_line(payload))}</p>'
    ]
    if diff is not None:
        sections.append(_scale_diff_section(diff))
    for alg in payload.get("algorithms", []):
        points = alg.get("points", [])
        sizes = [float(p.get("modules", 0)) for p in points]
        walls = [float(p.get("wall_s", 0.0)) for p in points]
        peaks = [float(p.get("peak_mem_bytes") or 0) for p in points]
        fits = alg.get("fits", {})
        time_fit = fits.get("time") or {}
        mem_fit = fits.get("memory") or {}
        charts = _svg_loglog(
            "wall_s vs modules",
            sizes,
            walls,
            time_fit.get("exponent"),
            time_fit.get("coeff"),
        )
        if any(peaks):
            charts += _svg_loglog(
                "peak_mem vs modules",
                sizes,
                peaks,
                mem_fit.get("exponent"),
                mem_fit.get("coeff"),
            )
        fit_meta = (
            f'<p class="meta">time {_fit_label(time_fit)} · '
            f"memory {_fit_label(mem_fit)}</p>"
        )
        rows = "".join(
            f'<tr><td class="num">{_fmt(float(p.get("scale", 0)))}</td>'
            f'<td class="num">{p.get("modules", "—")}</td>'
            f'<td class="num">{p.get("nets", "—")}</td>'
            f'<td class="num">{float(p.get("wall_s", 0.0)):.4f}</td>'
            f'<td class="num">'
            f"{_fmt(float(p.get('peak_mem_bytes') or 0))}</td>"
            f'<td class="num">{p.get("nets_cut", "—")}</td></tr>'
            for p in points
        )
        table = (
            "<table><tr><th>scale</th><th>modules</th><th>nets</th>"
            "<th>wall_s</th><th>peak_mem_bytes</th><th>nets_cut</th></tr>"
            f"{rows}</table>"
        )
        sections.append(
            f"<section><h2>{html.escape(str(alg.get('algorithm', '?')))}"
            f"</h2>{fit_meta}"
            f'<div class="curves">{charts}</div>{table}</section>'
        )
    return _page(title, "".join(sections))


def render_scale_markdown(
    payload: Dict[str, Any], diff: Optional[ScaleDiff] = None
) -> str:
    """Compact summary of a scale-curve run (and optional diff) for CI
    logs: one line per algorithm with both fitted exponents, then the
    baseline verdicts."""
    lines = [_scale_meta_line(payload)]
    for alg in payload.get("algorithms", []):
        fits = alg.get("fits", {})
        points = alg.get("points", [])
        largest = points[-1] if points else {}
        lines.append(
            f"- {alg.get('algorithm', '?')}: time {_fit_label(fits.get('time'))}"
            f" · memory {_fit_label(fits.get('memory'))}"
            f" · largest {largest.get('modules', '—')} modules in "
            f"{float(largest.get('wall_s', 0.0)):.3f}s"
        )
    if diff is not None:
        counts = diff.counts()
        tally = ", ".join(
            f"{counts[status]} {status}" for status in sorted(counts)
        )
        if diff.mismatched_config:
            pairs = ", ".join(
                f"{k}={diff.baseline_meta.get(k)!r}→"
                f"{diff.current_meta.get(k)!r}"
                for k in diff.mismatched_config
            )
            lines.append(f"⚠ config mismatch: {pairs}")
        if diff.has_regressions:
            lines.append(
                f"✗ REGRESSED: {len(diff.regressions)} complexity "
                f"exponent(s) drifted ({tally})"
            )
        else:
            lines.append(f"✓ no exponent regressions ({tally})")
        for f in diff.fields:
            if f.status == "unchanged":
                continue
            b = "—" if f.baseline is None else _fmt(float(f.baseline))
            c = "—" if f.current is None else _fmt(float(f.current))
            marker = "✗" if f.is_regression else "~"
            lines.append(
                f"- {marker} {f.kind} {f.name}: {b} → {c} ({f.status})"
            )
    return "\n".join(lines)


def load_jsonl(path: Any) -> List[Dict[str, Any]]:
    """Read a JSON-lines trace file into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
