"""Prometheus text exposition: render ``/metrics``, validate scrapes.

:func:`render_prometheus` turns the serving layer's JSON metrics
document (:meth:`repro.service.engine.PartitionEngine.metrics`, with
its ``histograms`` section produced by
:meth:`repro.obs.hist.HistogramSet.snapshot`) into the Prometheus text
exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` comments,
``name{label="value"} value`` samples, and the
``_bucket``/``_sum``/``_count`` triplet per histogram series.  It is a
pure function of the JSON document, so the same bytes can be produced
from a live engine or from an archived snapshot.

:func:`parse_prometheus_text` is the matching **validator** — a small,
dependency-free parser that checks every line against the exposition
grammar and every histogram family for internal consistency
(monotonically non-decreasing cumulative buckets, a ``+Inf`` bucket
equal to ``_count``).  CI uses it to fail the build when ``/metrics``
stops being scrapeable; it is deliberately strict about what the
renderer emits rather than a full reimplementation of the Prometheus
parser.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["parse_prometheus_text", "render_prometheus"]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Keys in the ``cache`` / ``jobs`` metric sections that are point-in-
#: time observations (everything else in those sections is a lifetime
#: counter).
_GAUGE_KEYS = {
    "cache": {
        "memory_entries",
        "memory_used_bytes",
        "memory_budget_bytes",
        "disk_enabled",
    },
    # Session-store occupancy is point-in-time (entries and retained
    # bytes); evictions/hits/misses stay lifetime counters.
    "service": {
        "service.session.entries",
        "service.session.bytes",
    },
    "jobs": {"pending", "running", "cancelling"},
    # cpu_*_seconds are lifetime totals (counters); the RSS and
    # tracemalloc fields are point-in-time observations.
    "process": {
        "rss_bytes",
        "max_rss_bytes",
        "tracemalloc_bytes",
        "tracemalloc_peak_bytes",
    },
}


def _sanitize(name: str) -> str:
    """A dotted repro metric name as a legal Prometheus metric name."""
    sanitized = _SANITIZE_RE.sub("_", name)
    if not _NAME_RE.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _fmt_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return f"{number:.10g}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize(str(k))}="{_escape_label(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, labels: Dict[str, Any], value: Any
    ) -> None:
        self.lines.append(
            f"{name}{_labels_text(labels)} {_fmt_value(value)}"
        )


def _render_flat_section(
    writer: _Writer, section: str, values: Dict[str, Any]
) -> None:
    """One metrics sub-document of scalar values (counters + gauges)."""
    gauge_keys = _GAUGE_KEYS.get(section, set())
    for key in sorted(values):
        value = values[key]
        if not isinstance(value, (int, float, bool)):
            continue
        dotted = key if key.startswith(section) else f"{section}.{key}"
        base = "repro_" + _sanitize(dotted)
        if key in gauge_keys:
            writer.family(base, "gauge", f"Current value of {dotted}.")
            writer.sample(base, {}, value)
        else:
            writer.family(
                base + "_total", "counter", f"Total of {dotted}."
            )
            writer.sample(base + "_total", {}, value)


def _render_histograms(
    writer: _Writer, histograms: Dict[str, List[Dict[str, Any]]]
) -> None:
    for name in sorted(histograms):
        base = "repro_" + _sanitize(name)
        writer.family(
            base, "histogram", f"Distribution of {name}."
        )
        for series in histograms[name]:
            labels = dict(series.get("labels", {}))
            for le, cumulative in series.get("buckets", []):
                bucket_labels = dict(labels)
                bucket_labels["le"] = (
                    "+Inf" if le == "+Inf" else _fmt_value(le)
                )
                writer.sample(base + "_bucket", bucket_labels, cumulative)
            writer.sample(base + "_sum", labels, series.get("sum", 0.0))
            writer.sample(base + "_count", labels, series.get("count", 0))


def render_prometheus(doc: Dict[str, Any]) -> str:
    """The engine's JSON metrics document as Prometheus text format.

    Sections: ``info`` (constant ``repro_build_info`` gauge carrying
    the build identity as labels), ``service`` (dotted counters),
    ``cache`` and ``jobs``
    (counters with a few gauges, see ``_GAUGE_KEYS``), ``slow``
    (gauges), and ``histograms``
    (:meth:`~repro.obs.hist.HistogramSet.snapshot` form).  Unknown or
    non-numeric entries are skipped, never fatal — an old scraper must
    keep working against a newer server.
    """
    writer = _Writer()
    info = doc.get("info")
    if isinstance(info, dict):
        # The conventional "constant 1 with identifying labels" gauge:
        # joinable onto any other series in PromQL, never aggregated.
        labels = {
            k: v for k, v in sorted(info.items()) if isinstance(v, str)
        }
        writer.family(
            "repro_build_info",
            "gauge",
            "Constant 1; build identity in the labels.",
        )
        writer.sample("repro_build_info", labels, 1)
    service = doc.get("service")
    if isinstance(service, dict):
        _render_flat_section(writer, "service", service)
    cache = doc.get("cache")
    if isinstance(cache, dict):
        _render_flat_section(writer, "cache", cache)
    jobs = doc.get("jobs")
    if isinstance(jobs, dict):
        _render_flat_section(writer, "jobs", jobs)
    process = doc.get("process")
    if isinstance(process, dict):
        _render_flat_section(writer, "process", process)
    slow = doc.get("slow")
    if isinstance(slow, dict):
        for key in sorted(slow):
            value = slow[key]
            if not isinstance(value, (int, float, bool)):
                continue
            name = "repro_slow_requests_" + _sanitize(key)
            writer.family(
                name, "gauge", f"Slow-request log {key}."
            )
            writer.sample(name, {}, value)
    histograms = doc.get("histograms")
    if isinstance(histograms, dict):
        _render_histograms(writer, histograms)
    return "\n".join(writer.lines) + "\n"


# ----------------------------------------------------------------------
# Validation (the CI gate)

#: Label bodies may contain ``}`` inside quoted values (a route label
#: like ``/jobs/{id}``), so the group alternates between quoted strings
#: and any other non-quote, non-brace characters.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[^\"}]|\"(?:[^\"\\]|\\.)*\")*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)
_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)'
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

Sample = Tuple[Dict[str, str], float]


def _parse_labels(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    labels: Dict[str, str] = {}
    consumed = 0
    for match in _LABEL_RE.finditer(text):
        if match.start() != consumed:
            raise ValueError(f"malformed label pairs: {{{text}}}")
        raw = match.group(2)
        labels[match.group(1)] = (
            raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        consumed = match.end()
    if consumed != len(text):
        raise ValueError(f"malformed label pairs: {{{text}}}")
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"bad sample value {text!r}") from None


def _family_of(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_prometheus_text(text: str) -> Dict[str, List[Sample]]:
    """Parse (and thereby validate) Prometheus text exposition output.

    Returns ``{metric name: [(labels, value), ...]}`` in input order.
    Raises :class:`ValueError` with a line-numbered message on the
    first violation:

    * a sample line that does not match the exposition grammar,
    * a malformed ``# TYPE`` comment or unknown metric type,
    * a sample whose family never appeared in a ``# TYPE`` comment,
    * a histogram family whose cumulative buckets decrease, or whose
      ``+Inf`` bucket is missing or disagrees with ``_count``.
    """
    types: Dict[str, str] = {}
    samples: Dict[str, List[Sample]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    raise ValueError(
                        f"line {lineno}: malformed TYPE comment: {line!r}"
                    )
                if not _NAME_RE.match(parts[2]):
                    raise ValueError(
                        f"line {lineno}: bad metric name {parts[2]!r}"
                    )
                types[parts[2]] = parts[3]
            elif len(parts) >= 2 and parts[1] == "HELP":
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    raise ValueError(
                        f"line {lineno}: malformed HELP comment: {line!r}"
                    )
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(
                f"line {lineno}: not a valid sample line: {line!r}"
            )
        name = match.group("name")
        family = _family_of(name)
        if name not in types and family not in types:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        try:
            labels = _parse_labels(match.group("labels"))
            value = _parse_value(match.group("value"))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from None
        samples.setdefault(name, []).append((labels, value))
    _check_histograms(types, samples)
    return samples


def _check_histograms(
    types: Dict[str, str], samples: Dict[str, List[Sample]]
) -> None:
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = samples.get(family + "_bucket", [])
        counts = {
            tuple(sorted(labels.items())): value
            for labels, value in samples.get(family + "_count", [])
        }
        series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]]
        series = {}
        for labels, value in buckets:
            le = labels.get("le")
            if le is None:
                raise ValueError(
                    f"histogram {family}: bucket sample without le label"
                )
            rest = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            series.setdefault(rest, []).append((_parse_value(le), value))
        for rest, pairs in series.items():
            pairs.sort(key=lambda p: p[0])
            last = -1.0
            for le, cumulative in pairs:
                if cumulative < last:
                    raise ValueError(
                        f"histogram {family}{dict(rest)}: cumulative "
                        f"bucket count decreased at le={le}"
                    )
                last = cumulative
            if not pairs or not math.isinf(pairs[-1][0]):
                raise ValueError(
                    f"histogram {family}{dict(rest)}: missing +Inf bucket"
                )
            expected = counts.get(rest)
            if expected is not None and pairs[-1][1] != expected:
                raise ValueError(
                    f"histogram {family}{dict(rest)}: +Inf bucket "
                    f"{pairs[-1][1]} != _count {expected}"
                )
