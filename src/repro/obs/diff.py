"""Regression diffing of two ``BENCH_obs.json`` perf trajectories.

:func:`diff_payloads` compares a *baseline* benchmark payload (written
by :func:`repro.bench.run_observed_suite`) against a *current* one and
produces a structured verdict per circuit, per field:

* **Deterministic fields** — counters, phase ``count``s, ``nets_cut``,
  ``ratio_cut`` — are compared exactly (up to float round-trip noise).
  Any increase is a :data:`REGRESSED` verdict: more Lanczos iterations,
  more augmenting-search visits, or a worse cut under the same seed
  means the algorithm did more work or produced a worse answer.
* **Wall-clock fields** — circuit ``seconds`` and phase ``seconds`` —
  are compared with *noise-aware* thresholds: a relative tolerance plus
  an absolute floor, so micro-phases (a 2 ms eigensolve) cannot trip
  the gate on scheduler jitter.  Time verdicts are :data:`SLOWER` /
  :data:`FASTER` and are advisory by default — only deterministic
  regressions fail CI (wall clocks differ across machines; work
  counters do not).
* **Memory fields** — any ``*_bytes`` name (``process.rss_bytes``
  gauges, memprof's ``mem_alloc_bytes`` / ``mem_peak_bytes`` phase
  attributes) — are likewise noise-aware: resident-set size jitters
  with allocator arena reuse and OS page accounting, so exact-comparing
  it hard-fails healthy runs.  Memory verdicts are :data:`GREW` /
  :data:`SHRANK` under a relative band plus an absolute byte floor,
  and are advisory like time.

:func:`diff_scale_payloads` compares two ``BENCH_scale.json`` payloads
(:mod:`repro.bench.scale_curve`): the fitted log-log complexity
*exponents* for time and memory are the gating quantities — an
exponent is machine-independent in a way absolute seconds are not, so
exponent drift beyond the tolerance (widened by the fits' own standard
errors, the same noise-model philosophy as :class:`DiffThresholds`)
**does** fail CI.  Largest-instance wall time and peak memory are
compared as advisory extras.

The exit-code gate (`python -m repro.bench --compare BASELINE
--fail-on-regress`) and the renderers in :mod:`repro.obs.render`
consume the same :class:`BenchDiff` / :class:`ScaleDiff` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "DiffThresholds",
    "FieldDiff",
    "CircuitDiff",
    "BenchDiff",
    "ScaleDiff",
    "diff_payloads",
    "diff_scale_payloads",
    "UNCHANGED",
    "REGRESSED",
    "IMPROVED",
    "SLOWER",
    "FASTER",
    "GREW",
    "SHRANK",
    "NEW",
    "MISSING",
]

#: Verdict vocabulary.  Deterministic fields use UNCHANGED / REGRESSED /
#: IMPROVED / NEW / MISSING; wall-clock fields use UNCHANGED / SLOWER /
#: FASTER / NEW / MISSING; memory fields use UNCHANGED / GREW / SHRANK /
#: NEW / MISSING.
UNCHANGED = "unchanged"
REGRESSED = "regressed"
IMPROVED = "improved"
SLOWER = "slower"
FASTER = "faster"
GREW = "grew"
SHRANK = "shrank"
NEW = "new"
MISSING = "missing"

#: Relative equality slack for deterministic floats (``ratio_cut``):
#: wide enough to absorb JSON round-trip noise, far below any real
#: change in cut quality.
_FLOAT_EQ_RTOL = 1e-9


@dataclass(frozen=True)
class DiffThresholds:
    """Noise model for wall-clock comparisons.

    A time is *changed* only when it moves by more than
    ``rel_tol`` (fraction of the baseline) **and** by more than
    ``abs_floor_s`` seconds.  The floor dominates for micro-phases
    (including zero-second baselines), the relative band for long ones.

    Memory fields get the same two-sided model with their own knobs:
    ``mem_rel_tol`` (RSS and heap watermarks jitter less than wall
    clock, but allocator arena reuse still moves them run to run) and
    ``abs_floor_bytes`` (1 MiB — below that, page-accounting noise).
    """

    rel_tol: float = 0.25
    abs_floor_s: float = 0.02
    mem_rel_tol: float = 0.15
    abs_floor_bytes: float = float(1 << 20)

    def verdict(self, baseline_s: float, current_s: float) -> str:
        delta = current_s - baseline_s
        if abs(delta) <= self.abs_floor_s:
            return UNCHANGED
        if abs(delta) <= self.rel_tol * abs(baseline_s):
            return UNCHANGED
        return SLOWER if delta > 0 else FASTER

    def mem_verdict(self, baseline_b: float, current_b: float) -> str:
        delta = current_b - baseline_b
        if abs(delta) <= self.abs_floor_bytes:
            return UNCHANGED
        if abs(delta) <= self.mem_rel_tol * abs(baseline_b):
            return UNCHANGED
        return GREW if delta > 0 else SHRANK


@dataclass(frozen=True)
class FieldDiff:
    """One compared field of one circuit.

    ``kind`` names the field family (``"metric"``, ``"counter"``,
    ``"phase.seconds"``, ``"phase.count"``, ``"phase.mem"``,
    ``"time"``, ``"mem"``, ``"exponent"``); ``deterministic`` marks
    fields whose verdicts gate the exit code.
    """

    kind: str
    name: str
    baseline: Optional[float]
    current: Optional[float]
    status: str
    deterministic: bool

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def is_regression(self) -> bool:
        """A gate-worthy verdict: deterministic field got worse."""
        return self.deterministic and self.status == REGRESSED


@dataclass
class CircuitDiff:
    """All field verdicts for one circuit.

    ``status`` is ``"common"`` for circuits in both payloads, ``"new"``
    / ``"missing"`` when only one side has the circuit (those carry no
    field diffs).
    """

    name: str
    status: str
    fields: List[FieldDiff] = field(default_factory=list)

    @property
    def regressions(self) -> List[FieldDiff]:
        return [f for f in self.fields if f.is_regression]

    @property
    def time_regressions(self) -> List[FieldDiff]:
        return [f for f in self.fields if f.status == SLOWER]

    @property
    def memory_growths(self) -> List[FieldDiff]:
        return [f for f in self.fields if f.status == GREW]

    def by_status(self, status: str) -> List[FieldDiff]:
        return [f for f in self.fields if f.status == status]


@dataclass
class BenchDiff:
    """The full verdict of one baseline-vs-current comparison."""

    baseline_meta: Dict[str, Any]
    current_meta: Dict[str, Any]
    circuits: List[CircuitDiff] = field(default_factory=list)
    mismatched_config: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[FieldDiff]:
        return [f for c in self.circuits for f in c.regressions]

    @property
    def time_regressions(self) -> List[FieldDiff]:
        return [f for c in self.circuits for f in c.time_regressions]

    @property
    def memory_growths(self) -> List[FieldDiff]:
        return [f for c in self.circuits for f in c.memory_growths]

    @property
    def improvements(self) -> List[FieldDiff]:
        return [
            f
            for c in self.circuits
            for f in c.fields
            if f.deterministic and f.status == IMPROVED
        ]

    @property
    def has_regressions(self) -> bool:
        """True when any deterministic field regressed (the CI gate)."""
        return bool(self.regressions)

    def counts(self) -> Dict[str, int]:
        """Verdict tally over every compared field."""
        tally: Dict[str, int] = {}
        for circuit in self.circuits:
            for f in circuit.fields:
                tally[f.status] = tally.get(f.status, 0) + 1
        return tally


def _float_eq(a: float, b: float) -> bool:
    if a == b:
        return True
    scale = max(abs(a), abs(b))
    return abs(a - b) <= _FLOAT_EQ_RTOL * scale


def _deterministic_verdict(baseline: float, current: float) -> str:
    """Exact compare where *larger is worse* (work done / cut size)."""
    if _float_eq(baseline, current):
        return UNCHANGED
    return REGRESSED if current > baseline else IMPROVED


def _is_memory_field(name: str) -> bool:
    """Byte-sized observations: RSS gauges, heap watermarks, cache
    sizes.  Memory numbers jitter run to run, so they are compared
    through the noise model, never exactly."""
    return name.endswith("_bytes")


def _diff_mapping(
    kind: str,
    baseline: Dict[str, float],
    current: Dict[str, float],
    deterministic: bool,
    thresholds: DiffThresholds,
) -> List[FieldDiff]:
    """Per-key verdicts over two flat name->number mappings.

    ``*_bytes`` names override ``deterministic``: they are classified
    through :meth:`DiffThresholds.mem_verdict` and never gate — an RSS
    gauge that moved 2% is jitter, not a regression.
    """
    diffs: List[FieldDiff] = []
    for name in sorted(set(baseline) | set(current)):
        b = baseline.get(name)
        c = current.get(name)
        gates = deterministic
        if b is None:
            status = NEW
        elif c is None:
            status = MISSING
        elif _is_memory_field(name):
            status = thresholds.mem_verdict(b, c)
            gates = False
        elif deterministic:
            status = _deterministic_verdict(b, c)
        else:
            status = thresholds.verdict(b, c)
        diffs.append(
            FieldDiff(
                kind=kind,
                name=name,
                baseline=b,
                current=c,
                status=status,
                deterministic=gates,
            )
        )
    return diffs


def _diff_circuit(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    thresholds: DiffThresholds,
) -> CircuitDiff:
    circuit = CircuitDiff(name=current["name"], status="common")
    fields = circuit.fields

    # Cut-quality metrics: deterministic under a fixed seed.
    for metric in ("nets_cut", "ratio_cut"):
        b, c = baseline.get(metric), current.get(metric)
        if b is None and c is None:
            continue
        if b is None:
            status = NEW
        elif c is None:
            status = MISSING
        else:
            status = _deterministic_verdict(float(b), float(c))
        fields.append(
            FieldDiff("metric", metric, b, c, status, deterministic=True)
        )

    # Whole-circuit wall time: noise-aware.
    b_s, c_s = baseline.get("seconds"), current.get("seconds")
    if b_s is not None or c_s is not None:
        if b_s is None:
            status = NEW
        elif c_s is None:
            status = MISSING
        else:
            status = thresholds.verdict(float(b_s), float(c_s))
        fields.append(
            FieldDiff("time", "seconds", b_s, c_s, status, False)
        )

    # Counters: all deterministic work totals.
    fields.extend(
        _diff_mapping(
            "counter",
            baseline.get("counters", {}),
            current.get("counters", {}),
            deterministic=True,
            thresholds=thresholds,
        )
    )

    # Phases: the count is deterministic, the seconds are wall clock.
    b_phases = baseline.get("phases", {})
    c_phases = current.get("phases", {})
    fields.extend(
        _diff_mapping(
            "phase.count",
            {k: v["count"] for k, v in b_phases.items()},
            {k: v["count"] for k, v in c_phases.items()},
            deterministic=True,
            thresholds=thresholds,
        )
    )
    fields.extend(
        _diff_mapping(
            "phase.seconds",
            {k: v["seconds"] for k, v in b_phases.items()},
            {k: v["seconds"] for k, v in c_phases.items()},
            deterministic=False,
            thresholds=thresholds,
        )
    )

    # Per-phase memory attribution (present when the run was memory-
    # profiled) and the circuit-level memory rollup: noise-aware.
    def _phase_mem(phases: Dict[str, Any]) -> Dict[str, float]:
        flat: Dict[str, float] = {}
        for name, data in phases.items():
            for key in ("mem_alloc_bytes", "mem_peak_bytes"):
                if key in data:
                    flat[f"{name}.{key}"] = data[key]
        return flat

    fields.extend(
        _diff_mapping(
            "phase.mem",
            _phase_mem(b_phases),
            _phase_mem(c_phases),
            deterministic=False,
            thresholds=thresholds,
        )
    )
    fields.extend(
        _diff_mapping(
            "mem",
            baseline.get("mem", {}),
            current.get("mem", {}),
            deterministic=False,
            thresholds=thresholds,
        )
    )
    return circuit


def diff_payloads(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    thresholds: DiffThresholds = DiffThresholds(),
) -> BenchDiff:
    """Compare two benchmark payloads; see the module docstring.

    Circuits present on only one side are classified ``new`` /
    ``missing`` (a partial rerun against a full baseline is normal, so
    neither gates the exit code by itself).  Config keys that differ
    between the payloads (``algorithm``, ``seed``, ``scale``) are
    recorded in ``mismatched_config`` — verdicts are still produced,
    but a diff across configs is usually operator error and the
    renderers surface it prominently.
    """
    meta_keys = ("schema", "algorithm", "seed", "scale")
    diff = BenchDiff(
        baseline_meta={k: baseline.get(k) for k in meta_keys},
        current_meta={k: current.get(k) for k in meta_keys},
        mismatched_config=[
            k
            for k in ("algorithm", "seed", "scale")
            if baseline.get(k) != current.get(k)
        ],
    )
    b_circuits = {c["name"]: c for c in baseline.get("circuits", [])}
    c_circuits = {c["name"]: c for c in current.get("circuits", [])}
    for name in b_circuits:
        if name not in c_circuits:
            diff.circuits.append(CircuitDiff(name=name, status="missing"))
    for name, circuit in c_circuits.items():
        if name not in b_circuits:
            diff.circuits.append(CircuitDiff(name=name, status="new"))
            continue
        diff.circuits.append(
            _diff_circuit(b_circuits[name], circuit, thresholds)
        )
    return diff


# ----------------------------------------------------------------------
# Scale-curve payloads (BENCH_scale.json): exponent-drift gating.


@dataclass
class ScaleDiff:
    """The verdict of one scale-curve baseline-vs-current comparison.

    Fitted complexity exponents gate (kind ``"exponent"``,
    ``deterministic=True``): a time exponent moving from 1.1 to 1.5
    means the algorithm's growth *law* changed, which no amount of
    machine variance explains away once the fit tolerance (widened by
    the fits' standard errors) is exceeded.  Largest-instance wall
    time and peak memory ride along as advisory ``"time"`` / ``"mem"``
    fields using the ordinary noise model.
    """

    baseline_meta: Dict[str, Any]
    current_meta: Dict[str, Any]
    fields: List[FieldDiff] = field(default_factory=list)
    mismatched_config: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[FieldDiff]:
        return [f for f in self.fields if f.is_regression]

    @property
    def has_regressions(self) -> bool:
        """True when any fitted exponent regressed (the CI gate)."""
        return bool(self.regressions)

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for f in self.fields:
            tally[f.status] = tally.get(f.status, 0) + 1
        return tally


def _exponent_tolerance(
    base_fit: Dict[str, Any],
    cur_fit: Dict[str, Any],
    exponent_tol: float,
) -> float:
    """The drift band for one exponent pair.

    ``exponent_tol`` is the floor; when the least-squares fits carry a
    ``stderr``, the band widens to two combined standard errors — the
    same philosophy as :class:`DiffThresholds` (never flag what the
    measurement's own uncertainty can explain).
    """
    stderr = float(base_fit.get("stderr") or 0.0) + float(
        cur_fit.get("stderr") or 0.0
    )
    return max(exponent_tol, 2.0 * stderr)


def diff_scale_payloads(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    exponent_tol: float = 0.2,
    thresholds: DiffThresholds = DiffThresholds(),
) -> ScaleDiff:
    """Compare two ``BENCH_scale.json`` payloads; see :class:`ScaleDiff`.

    Field names are ``<algorithm>.<metric>_exponent`` for the gating
    exponents and ``<algorithm>.max_wall_s`` /
    ``<algorithm>.max_peak_mem_bytes`` for the advisory
    largest-instance comparisons.  Algorithms present on only one side
    are classified ``new`` / ``missing`` and do not gate.
    """
    meta_keys = ("schema", "kind", "circuit", "seed", "scales")
    diff = ScaleDiff(
        baseline_meta={k: baseline.get(k) for k in meta_keys},
        current_meta={k: current.get(k) for k in meta_keys},
        mismatched_config=[
            k
            for k in ("circuit", "seed", "scales")
            if baseline.get(k) != current.get(k)
        ],
    )
    b_algs = {a["algorithm"]: a for a in baseline.get("algorithms", [])}
    c_algs = {a["algorithm"]: a for a in current.get("algorithms", [])}
    for name in sorted(set(b_algs) | set(c_algs)):
        if name not in c_algs:
            diff.fields.append(
                FieldDiff("exponent", name, None, None, MISSING, False)
            )
            continue
        if name not in b_algs:
            diff.fields.append(
                FieldDiff("exponent", name, None, None, NEW, False)
            )
            continue
        b_alg, c_alg = b_algs[name], c_algs[name]
        for metric in ("time", "memory"):
            b_fit = b_alg.get("fits", {}).get(metric)
            c_fit = c_alg.get("fits", {}).get(metric)
            if not b_fit or not c_fit:
                continue
            b_exp = float(b_fit["exponent"])
            c_exp = float(c_fit["exponent"])
            tol = _exponent_tolerance(b_fit, c_fit, exponent_tol)
            if c_exp - b_exp > tol:
                status = REGRESSED
            elif b_exp - c_exp > tol:
                status = IMPROVED
            else:
                status = UNCHANGED
            diff.fields.append(
                FieldDiff(
                    kind="exponent",
                    name=f"{name}.{metric}_exponent",
                    baseline=b_exp,
                    current=c_exp,
                    status=status,
                    deterministic=True,
                )
            )
        b_points = b_alg.get("points", [])
        c_points = c_alg.get("points", [])
        if b_points and c_points:
            b_last, c_last = b_points[-1], c_points[-1]
            diff.fields.append(
                FieldDiff(
                    kind="time",
                    name=f"{name}.max_wall_s",
                    baseline=b_last.get("wall_s"),
                    current=c_last.get("wall_s"),
                    status=thresholds.verdict(
                        float(b_last.get("wall_s", 0.0)),
                        float(c_last.get("wall_s", 0.0)),
                    ),
                    deterministic=False,
                )
            )
            if (
                b_last.get("peak_mem_bytes") is not None
                and c_last.get("peak_mem_bytes") is not None
            ):
                diff.fields.append(
                    FieldDiff(
                        kind="mem",
                        name=f"{name}.max_peak_mem_bytes",
                        baseline=b_last["peak_mem_bytes"],
                        current=c_last["peak_mem_bytes"],
                        status=thresholds.mem_verdict(
                            float(b_last["peak_mem_bytes"]),
                            float(c_last["peak_mem_bytes"]),
                        ),
                        deterministic=False,
                    )
                )
    return diff
