"""Request-scoped tracing: trace ids and per-request span capture.

The serving layer attributes *every* span, counter, and event a request
produces to that request's ``trace_id``:

* :func:`new_trace_id` mints an id at HTTP ingress (or honours an
  inbound ``X-Trace-Id``); :func:`current_trace_id` reads the id bound
  to the calling context (a :class:`contextvars.ContextVar`, so
  concurrent requests on a threaded server never see each other's id).
* :class:`TraceCapture` wraps one request's compute.  It records into a
  **fresh, always-enabled** :class:`~repro.obs.registry.ObsState`
  (via the same ContextVar isolation the parallel executor uses), so
  the full phase tree — intersection build, eigensolves, matching
  sweeps — is captured for every request even when global tracing is
  off.  On exit the capture is stamped with the trace id and, when the
  surrounding context *does* have tracing enabled, merged back into it
  exactly like a parallel worker's fragment — ``--profile`` and
  ``BENCH_obs.json`` keep seeing one coherent tree.

Parallel fan-outs inside a captured request need no extra plumbing: the
executor captures per-worker fragments whenever the *submitting*
context is enabled (which a :class:`TraceCapture` scope always is) and
merges them in submission order, so worker spans land in the request's
capture regardless of thread/process backend.

:func:`merge_into_current` is the one shared implementation of
fragment folding — :mod:`repro.parallel.tracing` delegates here.
"""

from __future__ import annotations

import contextvars
import time
import uuid
from typing import Any, Dict, List, Optional

from .events import MemorySink, emit_raw
from .registry import current_state, disable, enable, isolated
from .span import SpanNode

__all__ = [
    "TraceCapture",
    "current_trace_id",
    "merge_into_current",
    "new_trace_id",
    "span_node_from_dict",
    "span_node_to_dict",
]

_TRACE_ID: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char request trace id."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> Optional[str]:
    """The trace id bound to the calling context, if any."""
    return _TRACE_ID.get()


# ----------------------------------------------------------------------
# Span-tree (de)serialisation — shared with repro.parallel.tracing.


def span_node_to_dict(node: SpanNode) -> Dict[str, Any]:
    """One span node (and its subtree) as a picklable plain dict."""
    return {
        "name": node.name,
        "attrs": dict(node.attrs),
        "seconds": node.seconds,
        "count": node.count,
        "children": [span_node_to_dict(child) for child in node.children],
    }


def span_node_from_dict(data: Dict[str, Any]) -> SpanNode:
    """Rebuild a :class:`SpanNode` tree from its dict form."""
    node = SpanNode(data["name"], data["attrs"])
    node.seconds = data["seconds"]
    node.count = data["count"]
    node.children = [
        span_node_from_dict(child) for child in data["children"]
    ]
    return node


def merge_into_current(fragment: Optional[Dict[str, Any]]) -> None:
    """Fold a trace fragment into the calling context's obs state.

    ``fragment`` is ``{"counters": {...}, "spans": [node dict, ...],
    "events": [event dict, ...]}``.  Counters are summed, span trees
    are grafted under the currently open span, and events are re-emitted
    with re-assigned sequence numbers and depth offsets.  No-op when
    ``fragment`` is ``None`` or the current state is not collecting.
    Call in deterministic (submission) order.
    """
    if fragment is None:
        return
    state = current_state()
    if not state.enabled:
        return
    for name, value in fragment["counters"].items():
        state.counters[name] = state.counters.get(name, 0) + value
    parent = state.stack[-1] if state.stack else None
    target: List[Any] = (
        parent.children if parent is not None else state.roots
    )
    for data in fragment["spans"]:
        target.append(span_node_from_dict(data))
    if state.sinks:
        depth_offset = len(state.stack)
        for event in fragment["events"]:
            merged = dict(event)
            if isinstance(merged.get("depth"), int):
                merged["depth"] = merged["depth"] + depth_offset
            merged["seq"] = state.next_seq()
            emit_raw(merged)


# ----------------------------------------------------------------------


class TraceCapture:
    """Capture everything one request records, stamped with a trace id.

    ::

        capture = TraceCapture()           # or TraceCapture("6f2a...")
        with capture:
            ... serve the request ...
        capture.duration_s                 # wall-clock of the block
        capture.spans                      # span tree (root node dicts)
        capture.events                     # raw span/point events
        capture.counters                   # counter totals

    Inside the block, instrumentation is **always on** and records into
    a private state; :func:`current_trace_id` returns the capture's id.
    On exit (including on exceptions — a failing request's partial
    trace is still attributed) the capture is merged into the enclosing
    obs state when that state is enabled, so global profiling sessions
    see served requests exactly as before, now with ``trace_id`` on
    every span and event.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        memprof: Optional[bool] = None,
    ):
        self.trace_id = trace_id or new_trace_id()
        self.duration_s = 0.0
        self.spans: List[Dict[str, Any]] = []
        self.events: List[Dict[str, Any]] = []
        self.counters: Dict[str, float] = {}
        #: ``True``/``False`` force per-span memory attribution on/off
        #: for the capture; ``None`` (default) inherits the enclosing
        #: state's memprof flag, so a memory-profiled session sees
        #: served requests with memory attribution too.
        self.memprof = memprof
        #: Memory snapshot taken at capture exit, while the capture's
        #: tracemalloc session (if any) is still live — so it carries
        #: ``traced_peak_bytes`` for the request.  ``None`` until exit.
        self.mem: Optional[Dict[str, float]] = None

    def __enter__(self) -> "TraceCapture":
        want_memprof = self.memprof
        if want_memprof is None:
            want_memprof = current_state().memprof
        self._iso = isolated()
        self._state = self._iso.__enter__()
        self._sink = MemorySink()
        enable(sink=self._sink)
        if want_memprof:
            from .memprof import enable_memprof

            enable_memprof()
        self._trace_token = _TRACE_ID.set(self.trace_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.duration_s = time.perf_counter() - self._start
        state = self._state
        try:
            from .memprof import memory_snapshot

            self.mem = memory_snapshot()
            self.counters = dict(state.counters)
            self.spans = [span_node_to_dict(node) for node in state.roots]
            disable()
        finally:
            _TRACE_ID.reset(self._trace_token)
            self._iso.__exit__(None, None, None)
        for node in self.spans:
            node["attrs"]["trace_id"] = self.trace_id
        # The trailing {"type": "counters"} event disable() flushed is
        # dropped — the enclosing session emits its own merged totals.
        self.events = [
            dict(event, trace_id=self.trace_id)
            for event in self._sink.events
            if event.get("type") != "counters"
        ]
        merge_into_current(
            {
                "counters": self.counters,
                "spans": self.spans,
                "events": self.events,
            }
        )
        return False

    def fragment(self) -> Dict[str, Any]:
        """The captured data in the standard fragment shape."""
        return {
            "counters": dict(self.counters),
            "spans": list(self.spans),
            "events": list(self.events),
        }

    def span_names(self) -> List[str]:
        """Every span name in the capture, in tree order (for tests)."""
        names: List[str] = []

        def walk(nodes: List[Dict[str, Any]]) -> None:
            for node in nodes:
                names.append(node["name"])
                walk(node["children"])

        walk(self.spans)
        return names
