"""Analysis utilities: cut statistics, sparsity, stability, bounds.

The statistical machinery behind the paper's Table 1 (cut probability vs
net size), its sparsity argument for the intersection graph, its
stability argument for deterministic spectral methods, and the Theorem 1
ratio-cut lower bound.
"""

from .bounds import (
    RatioCutBound,
    bisection_width_lower_bound,
    check_bound,
    ratio_cut_lower_bound,
)
from .cutstats import (
    CutStatsRow,
    cut_stats_by_size,
    is_cut_probability_monotone,
    random_cut_probability,
)
from .sparsity import SparsityComparison, compare_sparsity
from .spectra import (
    CheegerBounds,
    cheeger_bounds,
    conductance,
    normalized_fiedler_value,
    normalized_laplacian,
    sweep_conductance,
)
from .stability import StabilityReport, stability_analysis
from .wireability import RentFit, rent_analysis, rent_samples

__all__ = [
    "CheegerBounds",
    "CutStatsRow",
    "RatioCutBound",
    "RentFit",
    "SparsityComparison",
    "StabilityReport",
    "bisection_width_lower_bound",
    "check_bound",
    "cheeger_bounds",
    "compare_sparsity",
    "conductance",
    "cut_stats_by_size",
    "is_cut_probability_monotone",
    "normalized_fiedler_value",
    "normalized_laplacian",
    "random_cut_probability",
    "ratio_cut_lower_bound",
    "rent_analysis",
    "rent_samples",
    "stability_analysis",
    "sweep_conductance",
]
