"""Graph-spectra utilities: conductance and the Cheeger bounds.

Section 1.1 of the paper grounds spectral partitioning in "the
relatively recent subfield of graph theory dealing with graph spectra"
[4].  The tightest classical link between the Fiedler value and cut
quality is Cheeger's inequality for the *normalised* Laplacian
``L = I - D^{-1/2} A D^{-1/2}``:

.. math::

    \\lambda_2 / 2 \\;\\le\\; h(G) \\;\\le\\; \\sqrt{2 \\lambda_2}

where ``h(G)`` is the conductance (the volume-normalised sibling of the
ratio cut).  These helpers compute conductance, the normalised
spectrum, and both Cheeger bounds — used by the tests as independent
sanity checks on the spectral engine, and useful for diagnosing *why* a
circuit partitions well or badly (small spectral gap ⇒ a good natural
cut exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import SpectralError
from ..graph import Graph, adjacency_matrix, connected_components

__all__ = [
    "CheegerBounds",
    "conductance",
    "normalized_laplacian",
    "normalized_fiedler_value",
    "cheeger_bounds",
    "sweep_conductance",
]


def conductance(g: Graph, subset: Sequence[int]) -> float:
    """Conductance of a vertex subset S.

    ``h(S) = cut(S, V-S) / min(vol(S), vol(V-S))`` with volumes the sums
    of weighted degrees.  Raises for empty or full subsets.
    """
    members = set(int(v) for v in subset)
    if not members or len(members) >= g.num_vertices:
        raise SpectralError(
            "conductance needs a proper non-empty vertex subset"
        )
    cut = 0.0
    for u, v, w in g.edges():
        if (u in members) != (v in members):
            cut += w
    degrees = g.degrees()
    vol_s = sum(degrees[v] for v in members)
    vol_rest = sum(degrees) - vol_s
    denominator = min(vol_s, vol_rest)
    if denominator == 0:
        return float("inf")
    return cut / denominator


def normalized_laplacian(g: Graph) -> sp.csr_matrix:
    """``L = I - D^{-1/2} A D^{-1/2}`` (isolated vertices kept, with
    zero coupling)."""
    adjacency = adjacency_matrix(g)
    degrees = np.asarray(g.degrees(), dtype=float)
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
    scaling = sp.diags(inv_sqrt)
    n = g.num_vertices
    return (
        sp.identity(n, format="csr") - scaling @ adjacency @ scaling
    ).tocsr()


def normalized_fiedler_value(g: Graph) -> float:
    """The second-smallest eigenvalue of the normalised Laplacian.

    Requires a connected graph with at least 2 vertices.  Computed
    densely — the diagnostic is intended for analysis, not inner loops.
    """
    if g.num_vertices < 2:
        raise SpectralError("need at least 2 vertices")
    if len(connected_components(g)) != 1:
        raise SpectralError("normalised Fiedler value needs connectivity")
    values = np.linalg.eigvalsh(normalized_laplacian(g).toarray())
    return float(values[1])


@dataclass(frozen=True)
class CheegerBounds:
    """``lambda_2/2 <= h(G) <= sqrt(2*lambda_2)`` for one graph."""

    lambda_2: float
    lower: float
    upper: float

    def contains(self, value: float, tolerance: float = 1e-9) -> bool:
        return self.lower - tolerance <= value <= self.upper + tolerance


def cheeger_bounds(g: Graph) -> CheegerBounds:
    """Cheeger's inequality bounds on the conductance of ``g``."""
    lam = normalized_fiedler_value(g)
    lam = max(0.0, lam)
    return CheegerBounds(
        lambda_2=lam, lower=lam / 2.0, upper=float(np.sqrt(2.0 * lam))
    )


def sweep_conductance(g: Graph, order: Sequence[int]) -> float:
    """Best conductance over all prefixes of a vertex ordering.

    The classical *sweep cut*: with ``order`` the sorted normalised
    Fiedler vector, the best prefix is guaranteed to satisfy the Cheeger
    upper bound — which makes this the constructive half of the theorem
    and a cheap conductance partitioner in its own right.
    """
    n = g.num_vertices
    if sorted(order) != list(range(n)):
        raise SpectralError("order must be a permutation of the vertices")
    if n < 2:
        raise SpectralError("need at least 2 vertices")
    members = set()
    degrees = g.degrees()
    total_volume = sum(degrees)
    cut = 0.0
    vol = 0.0
    best = float("inf")
    order = list(order)
    for v in order[:-1]:
        members.add(v)
        vol += degrees[v]
        for u, w in g.neighbor_weights(v):
            cut += w if u not in members else -w
        denominator = min(vol, total_volume - vol)
        if denominator > 0:
            best = min(best, cut / denominator)
    return best
