"""Spectral lower bounds on the ratio cut (Theorem 1).

Hagen–Kahng: for a netlist graph with Laplacian ``Q = D - A`` on ``n``
vertices, the second-smallest eigenvalue ``lambda_2`` bounds the optimal
ratio cut cost: ``c_opt >= lambda_2 / n``.  These helpers evaluate the
bound and check partitions against it — a useful sanity invariant for
both the eigensolvers and the graph-cut metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SpectralError
from ..graph import Graph
from ..partitioning.metrics import graph_edge_cut
from ..spectral import fiedler_vector

__all__ = [
    "RatioCutBound",
    "bisection_width_lower_bound",
    "check_bound",
    "ratio_cut_lower_bound",
]


@dataclass(frozen=True)
class RatioCutBound:
    """Theorem 1's bound for one graph."""

    lambda_2: float
    num_vertices: int

    @property
    def bound(self) -> float:
        return self.lambda_2 / self.num_vertices


def ratio_cut_lower_bound(
    g: Graph, backend: str = "scipy", seed: int = 0
) -> RatioCutBound:
    """Compute ``lambda_2 / n`` for a connected graph ``g``."""
    result = fiedler_vector(g, backend=backend, seed=seed)
    return RatioCutBound(
        lambda_2=result.eigenvalue, num_vertices=g.num_vertices
    )


def bisection_width_lower_bound(
    g: Graph, backend: str = "scipy", seed: int = 0
) -> float:
    """The classical spectral bound on the bisection width.

    For an exact bisection ``|U| = |W| = n/2`` the cut weight satisfies
    ``e(U, W) >= n * lambda_2 / 4`` — the Donath–Hoffman-family bound
    (paper refs [5], [6]; it is Theorem 1 specialised to the bisection
    denominator ``(n/2)^2 = n^2/4``).
    """
    result = fiedler_vector(g, backend=backend, seed=seed)
    return g.num_vertices * result.eigenvalue / 4.0


def check_bound(
    g: Graph, sides, backend: str = "scipy", tolerance: float = 1e-8
) -> bool:
    """Verify a partition's (graph) ratio cut respects Theorem 1.

    The ratio cut here is the *edge-weighted* cut over ``|U|*|W|`` — the
    graph-theoretic quantity the theorem bounds.  Returns True when the
    bound holds within ``tolerance``.
    """
    u = sum(1 for s in sides if s == 0)
    w = len(sides) - u
    if u == 0 or w == 0:
        raise SpectralError("both sides must be non-empty")
    cost = graph_edge_cut(g, sides) / (u * w)
    bound = ratio_cut_lower_bound(g, backend=backend).bound
    return cost >= bound - tolerance
