"""Cut statistics by net size (the machinery behind Table 1).

Table 1 of the paper tabulates, for an optimised ratio-cut partition of
Primary2, the number of k-pin nets and how many of each size were cut —
demonstrating that cut probability is *not* monotone in net size on
hierarchically organised circuits (contrary to the random-partition
intuition of roughly ``1 - O(2^-k)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..partitioning import Partition

__all__ = ["CutStatsRow", "cut_stats_by_size", "is_cut_probability_monotone",
           "random_cut_probability"]


@dataclass(frozen=True)
class CutStatsRow:
    """One row of a Table 1-style report."""

    net_size: int
    num_nets: int
    num_cut: int

    @property
    def cut_fraction(self) -> float:
        return self.num_cut / self.num_nets if self.num_nets else 0.0


def cut_stats_by_size(partition: Partition) -> List[CutStatsRow]:
    """Tabulate nets and cut nets per net size for ``partition``.

    Rows are sorted by net size, one row per occurring size — the exact
    format of the paper's Table 1.
    """
    h = partition.hypergraph
    totals: Dict[int, int] = {}
    cuts: Dict[int, int] = {}
    cut_set = set(partition.cut_nets)
    for net in range(h.num_nets):
        size = h.net_size(net)
        totals[size] = totals.get(size, 0) + 1
        if net in cut_set:
            cuts[size] = cuts.get(size, 0) + 1
    return [
        CutStatsRow(net_size=size, num_nets=totals[size],
                    num_cut=cuts.get(size, 0))
        for size in sorted(totals)
    ]


def is_cut_probability_monotone(rows: Sequence[CutStatsRow]) -> bool:
    """Whether cut fraction increases (weakly) with net size.

    Only sizes with at least one net are considered.  The paper's point
    is that this returns ``False`` for optimised partitions of real
    hierarchical circuits.
    """
    fractions = [row.cut_fraction for row in rows if row.num_nets > 0]
    return all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))


def random_cut_probability(net_size: int, fraction: float = 0.5) -> float:
    """Probability a k-pin net is cut by a random partition.

    Under independent uniform side assignment with U-probability
    ``fraction``: ``1 - f^k - (1-f)^k`` — the ``1 - O(2^-k)`` intuition
    the paper's thought experiment starts from.
    """
    if net_size < 2:
        return 0.0
    return 1.0 - fraction**net_size - (1.0 - fraction) ** net_size
