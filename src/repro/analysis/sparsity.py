"""Sparsity accounting: clique model vs intersection graph.

The paper's numerical argument for the dual representation (Sections 1.2
and 5): the Test05 intersection graph has 19 935 adjacency nonzeros
versus 219 811 for the standard clique model — over 10x sparser, which
directly accelerates the Lanczos computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hypergraph import Hypergraph
from ..intersection import intersection_nonzeros
from ..netmodels import get_model

__all__ = ["SparsityComparison", "compare_sparsity"]


@dataclass(frozen=True)
class SparsityComparison:
    """Adjacency nonzero counts under both representations."""

    circuit: str
    num_modules: int
    num_nets: int
    clique_nonzeros: int
    intersection_nonzeros: int

    @property
    def sparsity_ratio(self) -> float:
        """clique nonzeros / intersection nonzeros (>1 means IG sparser)."""
        if self.intersection_nonzeros == 0:
            return float("inf")
        return self.clique_nonzeros / self.intersection_nonzeros

    def __str__(self) -> str:
        return (
            f"{self.circuit}: clique {self.clique_nonzeros} nz, "
            f"intersection {self.intersection_nonzeros} nz "
            f"({self.sparsity_ratio:.1f}x sparser)"
        )


def compare_sparsity(h: Hypergraph) -> SparsityComparison:
    """Count adjacency nonzeros of ``h`` under clique vs intersection.

    The clique count uses the actual merged adjacency (overlapping nets
    share entries), matching how a real solver would store the matrix.
    """
    clique_graph = get_model("clique").to_graph(h)
    return SparsityComparison(
        circuit=h.name or "(unnamed)",
        num_modules=h.num_modules,
        num_nets=h.num_nets,
        clique_nonzeros=clique_graph.num_nonzeros,
        intersection_nonzeros=intersection_nonzeros(h),
    )
