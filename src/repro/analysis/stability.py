"""Stability analysis: result variance across random seeds.

One of the paper's practical arguments (Sections 1.1 and 5): iterative
methods need many random starting configurations "to adequately search
the solution space and give predictable performance, or 'stability'",
while the spectral approach "derives its output from a single,
deterministic execution".  This module quantifies that: run an algorithm
across seeds and summarise the spread of its ratio cuts.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..hypergraph import Hypergraph
from ..partitioning import PartitionResult

__all__ = ["StabilityReport", "stability_analysis"]

SeededAlgorithm = Callable[[Hypergraph, int], PartitionResult]


@dataclass(frozen=True)
class StabilityReport:
    """Ratio-cut spread of one algorithm across seeds."""

    algorithm: str
    ratio_cuts: List[float]

    @property
    def best(self) -> float:
        return min(self.ratio_cuts)

    @property
    def worst(self) -> float:
        return max(self.ratio_cuts)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.ratio_cuts)

    @property
    def stdev(self) -> float:
        if len(self.ratio_cuts) < 2:
            return 0.0
        return statistics.stdev(self.ratio_cuts)

    @property
    def relative_spread(self) -> float:
        """(worst - best) / best; 0.0 for a deterministic algorithm."""
        if self.best == 0:
            return 0.0
        return (self.worst - self.best) / self.best

    @property
    def is_deterministic(self) -> bool:
        return self.worst - self.best < 1e-15

    def __str__(self) -> str:
        return (
            f"{self.algorithm}: best {self.best:.4g}, "
            f"mean {self.mean:.4g}, worst {self.worst:.4g} "
            f"(spread {100 * self.relative_spread:.1f}%)"
        )


def stability_analysis(
    h: Hypergraph,
    algorithm: SeededAlgorithm,
    name: str,
    seeds: Sequence[int] = tuple(range(8)),
) -> StabilityReport:
    """Run ``algorithm(h, seed)`` for every seed and report the spread."""
    ratio_cuts = [algorithm(h, seed).ratio_cut for seed in seeds]
    return StabilityReport(algorithm=name, ratio_cuts=ratio_cuts)
