"""Wireability analysis via Rent's rule.

Section 1 of the paper lists "wireability analysis in synthesis" among
the CAD applications of partitioning.  The classical tool is **Rent's
rule**: recursively partitioning a well-designed circuit yields blocks
whose terminal count T scales with block size B as ``T = t * B^p``; the
exponent ``p`` (typically 0.5–0.75 for logic) predicts wiring demand,
and the prefactor ``t`` approximates average pins per module.

:func:`rent_analysis` drives a recursive ratio-cut bipartition,
collects (block size, external-net count) samples at every tree node,
and fits the exponent by least squares in log-log space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import PartitionError, ReproError
from ..hypergraph import Hypergraph, induced_subhypergraph
from ..partitioning import PartitionResult
from ..partitioning.multiway import _default_bipartitioner

__all__ = ["RentFit", "rent_samples", "rent_analysis"]


@dataclass(frozen=True)
class RentFit:
    """A fitted Rent's rule ``T = t * B^p``.

    ``samples`` holds the (block_size, terminal_count) points used.
    ``r_squared`` is the goodness of fit in log-log space.
    """

    exponent: float
    prefactor: float
    samples: List[Tuple[int, int]]
    r_squared: float

    def predicted_terminals(self, block_size: int) -> float:
        """``t * B^p`` for a block of the given size."""
        return self.prefactor * block_size**self.exponent

    def __str__(self) -> str:
        return (
            f"Rent fit: T = {self.prefactor:.2f} * B^{self.exponent:.3f}"
            f" (R^2 = {self.r_squared:.3f}, "
            f"{len(self.samples)} samples)"
        )


def _external_nets(h: Hypergraph, members: List[int]) -> int:
    """Nets with a pin inside ``members`` and a pin outside."""
    inside = set(members)
    count = 0
    for _, pins in h.iter_nets():
        pins_inside = sum(1 for p in pins if p in inside)
        if 0 < pins_inside < len(pins):
            count += 1
    return count


def rent_samples(
    h: Hypergraph,
    min_block: int = 8,
    bipartitioner: Optional[
        Callable[[Hypergraph], PartitionResult]
    ] = None,
) -> List[Tuple[int, int]]:
    """Collect (block size, external nets) samples by recursive
    bipartition down to ``min_block`` modules.

    The root block (the whole circuit, with 0 external nets) is not
    sampled; every proper sub-block of at least 2 modules is.
    """
    if bipartitioner is None:
        bipartitioner = _default_bipartitioner
    samples: List[Tuple[int, int]] = []

    def recurse(members: List[int]) -> None:
        if len(members) < max(2, min_block):
            return
        sub, module_map, _ = induced_subhypergraph(h, members)
        if sub.num_nets < 2:
            return
        try:
            result = bipartitioner(sub)
        except PartitionError:
            return
        for side in (0, 1):
            block = [
                module_map[v]
                for v in range(sub.num_modules)
                if result.partition.side(v) == side
            ]
            if len(block) >= 2:
                samples.append((len(block), _external_nets(h, block)))
                recurse(block)

    recurse(list(range(h.num_modules)))
    return samples


def rent_analysis(
    h: Hypergraph,
    min_block: int = 8,
    max_block_fraction: float = 0.25,
    bipartitioner: Optional[
        Callable[[Hypergraph], PartitionResult]
    ] = None,
) -> RentFit:
    """Fit Rent's rule to a circuit via recursive ratio-cut bisection.

    Only "region I" samples — blocks of at most ``max_block_fraction``
    of the circuit — enter the fit: near the top of the hierarchy the
    terminal count saturates (Rent's region II) and would flatten the
    exponent.  All samples are still returned in ``RentFit.samples``.
    """
    samples = rent_samples(h, min_block=min_block,
                           bipartitioner=bipartitioner)
    cutoff = max(min_block, max_block_fraction * h.num_modules)
    usable = [(b, t) for b, t in samples if t > 0 and b <= cutoff]
    if len(usable) < 3:
        raise ReproError(
            f"only {len(usable)} usable Rent samples; circuit too small "
            "or too loosely connected for a fit"
        )
    xs = [math.log(b) for b, _ in usable]
    ys = [math.log(t) for _, t in usable]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ReproError("all Rent samples have the same block size")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 - (ss_res / ss_tot if ss_tot > 0 else 0.0)
    return RentFit(
        exponent=slope,
        prefactor=math.exp(intercept),
        samples=samples,
        r_squared=r_squared,
    )
