"""Warm-started partitioning across a netlist delta.

The ECO serving core: given a base hypergraph, the artifacts saved when
the base was partitioned (its intersection edge state, the best split
rank and matching for IG-Match, the gain structures for FM), and a
validated :class:`~repro.delta.model.DeltaApplication`, produce the
edited hypergraph's partition while reusing everything the delta did
not touch:

* **IG-Match** — the intersection graph is patched, not rebuilt
  (:func:`~repro.delta.igraph.updated_edge_state`); the eigen ordering
  is re-solved on the patched graph (cheap relative to the sweep, and
  bitwise what a cold build would order); the split sweep is restricted
  to a window around the previous best rank, jump-starting the
  incremental matcher from the previous matching
  (:class:`~repro.partitioning.SweepWarmStart`).  Every evaluation
  inside the window is identical to the cold sweep's at the same rank.
* **FM** — the previous sides map through the delta (new modules join
  the lighter side), and the engine's pin counts and gains are patched
  for touched nets/modules only (:meth:`FMEngine.from_state
  <repro.partitioning.FMEngine.from_state>`) before the normal pass
  loop refines.
* anything else falls back to a cold
  :func:`~repro.service.run_partitioner` run on the edited hypergraph.

:func:`warm_partition` returns the result together with the refreshed
:class:`SessionArtifacts` for the edited hypergraph, so a serving
session can chain deltas indefinitely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core import csr_active
from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..intersection import (
    EdgeState,
    graph_from_edge_state,
    intersection_edge_state,
)
from ..obs import incr, span
from ..parallel import ParallelConfig
from ..partitioning import (
    FMConfig,
    FMEngine,
    IGMatchConfig,
    Partition,
    PartitionResult,
    SweepWarmStart,
    ig_match_sweep,
)
from ..partitioning.fm import fm_refine_engine
from ..spectral import spectral_ordering
from .igraph import updated_edge_state
from .model import DeltaApplication

__all__ = [
    "SessionArtifacts",
    "seed_artifacts",
    "warm_partition",
]

#: Half-width of the warm sweep window, as evaluated split ranks on
#: each side of the previous best rank.  Small ECO edits move the best
#: split by a handful of ranks at most; the floor keeps tiny netlists
#: sweeping everything (where warm == cold exactly).
WARM_WINDOW = 64


@dataclass
class SessionArtifacts:
    """Everything a serving session stores to warm-start the next delta.

    ``payload`` is the served result payload (the session's prior
    answer, returned verbatim on a no-op delta).  The remaining fields
    are algorithm-specific warm state; any of them may be ``None`` when
    the session was seeded from a cache hit (payload only) — the warm
    path then degrades gracefully to partial reuse.
    """

    payload: Dict[str, Any]
    #: Canonical intersection edge state of the session's hypergraph
    #: (IG-Match; lets the next delta patch instead of rebuild).
    edge_state: Optional[EdgeState] = None
    #: Intersection weighting the edge state was built with.
    weighting: str = "paper"
    #: Best split rank of the previous sweep (window centre).
    best_rank: Optional[int] = None
    #: Matching pairs ``(net, net)`` at the previous best split.
    matching: Tuple[Tuple[int, int], ...] = ()
    #: FM gain structures of the previous answer: per-net pin counts,
    #: net cut, per-module gains (pure functions of (h, sides)).
    fm_pin_count: Optional[List[List[int]]] = None
    fm_cut: Optional[int] = None
    fm_gains: Optional[List[int]] = None

    def estimated_bytes(self) -> int:
        """Rough retained size, for the session store's accounting."""
        total = 256
        sides = self.payload.get("sides")
        if sides is not None:
            total += 8 * len(sides)
        if self.edge_state is not None:
            total += sum(
                a.nbytes
                for a in (
                    self.edge_state.edge_a,
                    self.edge_state.edge_b,
                    self.edge_state.weights,
                    self.edge_state.first_mod,
                )
            )
        total += 16 * len(self.matching)
        if self.fm_pin_count is not None:
            total += 16 * len(self.fm_pin_count)
        if self.fm_gains is not None:
            total += 8 * len(self.fm_gains)
        return total


def seed_artifacts(
    h: Hypergraph,
    payload: Dict[str, Any],
    algorithm: str,
    capture: Optional[Dict[str, Any]] = None,
) -> SessionArtifacts:
    """Build full session artifacts after a cold compute.

    ``capture`` is the dict filled by ``ig_match(..., capture=...)``
    (best rank and matching pairs).  For FM the gain structures are
    rebuilt once from the final sides — O(pins), amortised across every
    delta the session will serve.
    """
    artifacts = SessionArtifacts(payload=payload)
    if algorithm == "ig-match":
        artifacts.edge_state = intersection_edge_state(h)
        if capture:
            artifacts.best_rank = capture.get("best_rank")
            artifacts.matching = tuple(capture.get("matching", ()))
    elif algorithm == "fm":
        engine = FMEngine(h, payload["sides"])
        artifacts.fm_pin_count = engine.pin_count
        artifacts.fm_cut = engine.cut
        artifacts.fm_gains = engine.gains
    return artifacts


def _map_matching(
    matching: Tuple[Tuple[int, int], ...],
    application: DeltaApplication,
) -> Tuple[Tuple[int, int], ...]:
    """Previous matching pairs in edited-net indices (dropping pairs
    that touch a removed net; the jump-start repair re-grows those)."""
    net_map = application.net_map
    mapped = []
    for u, v in matching:
        mu, mv = net_map[u], net_map[v]
        if mu is not None and mv is not None:
            mapped.append((mu, mv))
    return tuple(mapped)


def _map_sides(
    sides: List[int],
    application: DeltaApplication,
) -> List[int]:
    """Previous sides in edited-module indices; each added module joins
    the side with less mapped area (deterministic, ascending index)."""
    edited = application.hypergraph
    mapped = [0] * edited.num_modules
    side_area = [0.0, 0.0]
    for v, target in enumerate(application.module_map):
        if target is not None:
            s = sides[v]
            mapped[target] = s
            side_area[s] += edited.module_area(target)
    for v in application.added_modules:
        lighter = 0 if side_area[0] <= side_area[1] else 1
        mapped[v] = lighter
        side_area[lighter] += edited.module_area(v)
    return mapped


def _touched_for_fm(
    base: Hypergraph, application: DeltaApplication
) -> Tuple[set, set]:
    """(touched edited-net set, touched edited-module set) whose FM
    state cannot be copied across the delta."""
    edited = application.hypergraph
    changed_final = {
        application.net_map[k] for k in application.changed_nets
    }
    touched_nets = changed_final | set(application.added_nets)
    touched_mods = set(application.added_modules)
    for e in touched_nets:
        touched_mods.update(edited.pins(e))
    changed_base = set(application.changed_nets)
    for k, target in enumerate(application.net_map):
        if target is None or k in changed_base:
            for p in base.pins(k):
                mapped = application.module_map[p]
                if mapped is not None:
                    touched_mods.add(mapped)
    return touched_nets, touched_mods


def _warm_ig_match(
    base: Hypergraph,
    artifacts: SessionArtifacts,
    application: DeltaApplication,
    seed: int,
    split_stride: int,
) -> Tuple[PartitionResult, SessionArtifacts]:
    h2 = application.hypergraph
    config = IGMatchConfig(seed=seed, split_stride=split_stride)
    start = time.perf_counter()
    with span(
        "delta.warm.igmatch", modules=h2.num_modules, nets=h2.num_nets
    ) as sp:
        if artifacts.edge_state is not None:
            state = updated_edge_state(
                base, artifacts.edge_state, application,
                weighting=artifacts.weighting,
            )
        else:
            state = intersection_edge_state(h2, artifacts.weighting)
        graph = graph_from_edge_state(
            h2.num_nets, state, set_csr=csr_active()
        )
        order = spectral_ordering(
            graph, backend=config.backend, seed=config.seed
        )

        warm: Optional[SweepWarmStart] = None
        if artifacts.best_rank is not None:
            centre = min(artifacts.best_rank, h2.num_nets - 1)
            lo = max(1, centre - WARM_WINDOW)
            hi = min(h2.num_nets - 1, centre + WARM_WINDOW)
            warm = SweepWarmStart(
                lo=lo,
                hi=hi,
                matching_seed=_map_matching(
                    artifacts.matching, application
                ),
            )
        capture: Dict[str, Any] = {}
        evaluations, partition = ig_match_sweep(
            h2, config, order=order, graph=graph,
            warm=warm, capture=capture,
        )
        if partition is None:
            raise PartitionError(
                "warm IG-Match found no feasible completion in the "
                "sweep window"
            )
        best = min(evaluations, key=lambda e: (e.ratio_cut, e.rank))
        sp.set(
            window_lo=warm.lo if warm else None,
            window_hi=warm.hi if warm else None,
            best_rank=best.rank,
        )
    elapsed = time.perf_counter() - start
    result = PartitionResult(
        algorithm="IG-Match",
        partition=partition,
        elapsed_seconds=elapsed,
        details={
            "best_rank": best.rank,
            "matching_bound": best.matching_size,
            "splits_evaluated": len(evaluations),
            "weighting": config.weighting,
            "backend": config.backend,
            "recursive_depth": 0,
            "orderings_tried": 1,
            "best_ordering": 0,
            "warm": True,
            "window_lo": warm.lo if warm else 0,
            "window_hi": warm.hi if warm else 0,
        },
    )
    incr("delta.warm.igmatch")
    fresh = SessionArtifacts(
        payload={},  # caller installs the served payload
        edge_state=state,
        weighting=artifacts.weighting,
        best_rank=capture.get("best_rank"),
        matching=tuple(capture.get("matching", ())),
    )
    return result, fresh


def _warm_fm(
    base: Hypergraph,
    artifacts: SessionArtifacts,
    application: DeltaApplication,
    seed: int,
) -> Tuple[PartitionResult, SessionArtifacts]:
    h2 = application.hypergraph
    config = FMConfig(seed=seed)
    start = time.perf_counter()
    with span(
        "delta.warm.fm", modules=h2.num_modules, nets=h2.num_nets
    ) as sp:
        sides2 = _map_sides(list(artifacts.payload["sides"]), application)
        if (
            artifacts.fm_pin_count is not None
            and artifacts.fm_gains is not None
        ):
            touched_nets, touched_mods = _touched_for_fm(
                base, application
            )
            pin_count: List[Optional[List[int]]] = [None] * h2.num_nets
            for k, target in enumerate(application.net_map):
                if target is not None and target not in touched_nets:
                    pin_count[target] = list(artifacts.fm_pin_count[k])
            for e in sorted(touched_nets):
                counts = [0, 0]
                for p in h2.pins(e):
                    counts[sides2[p]] += 1
                pin_count[e] = counts
            cut = sum(
                1 for c in pin_count if c[0] > 0 and c[1] > 0
            )
            gains = [0] * h2.num_modules
            for v, target in enumerate(application.module_map):
                if target is not None and target not in touched_mods:
                    gains[target] = artifacts.fm_gains[v]
            engine = FMEngine.from_state(
                h2, sides2, pin_count, cut, gains,
                recompute_gains=sorted(touched_mods),
            )
            sp.set(
                patched=True,
                touched_nets=len(touched_nets),
                touched_modules=len(touched_mods),
            )
        else:
            engine = FMEngine(h2, sides2)
            sp.set(patched=False)
        final_sides, cut, passes = fm_refine_engine(engine, config)
    elapsed = time.perf_counter() - start
    result = PartitionResult(
        algorithm="FM",
        partition=Partition(h2, final_sides),
        elapsed_seconds=elapsed,
        details={
            "passes": passes,
            "balance_tolerance": config.balance_tolerance,
            "seed": config.seed,
            "lookahead": config.lookahead,
            "starts": 1,
            "warm": True,
        },
    )
    incr("delta.warm.fm")
    fresh = SessionArtifacts(
        payload={},
        fm_pin_count=engine.pin_count,
        fm_cut=engine.cut,
        fm_gains=engine.gains,
    )
    return result, fresh


def warm_partition(
    base: Hypergraph,
    artifacts: SessionArtifacts,
    application: DeltaApplication,
    request: Any,
    parallel: Optional[ParallelConfig] = None,
) -> Tuple[PartitionResult, SessionArtifacts, bool]:
    """Partition the edited hypergraph, reusing the session's artifacts.

    Returns ``(result, fresh_artifacts, warm)`` where ``warm`` records
    whether a warm engine path actually ran (``False`` means the
    algorithm fell back to a cold run on the edited hypergraph).  The
    returned artifacts describe the *edited* hypergraph; the caller
    installs the served payload into them and stores them under the
    edited fingerprint.
    """
    h2 = application.hypergraph
    viable = h2.num_modules >= 2 and h2.num_nets >= 2
    if viable and request.algorithm == "ig-match":
        result, fresh = _warm_ig_match(
            base, artifacts, application,
            seed=request.seed, split_stride=request.split_stride,
        )
        return result, fresh, True
    if viable and request.algorithm == "fm":
        result, fresh = _warm_fm(
            base, artifacts, application, seed=request.seed
        )
        return result, fresh, True

    from ..service.engine import run_partitioner

    result = run_partitioner(h2, request, parallel=parallel)
    return result, SessionArtifacts(payload={}), False
