"""Incremental (ECO) partitioning: netlist deltas and warm starts.

An engineering change order arrives as a :class:`NetlistDelta` — a
value object describing module/net additions, removals, and edits
against a base hypergraph, with a canonical JSON wire format
(:data:`DELTA_FORMAT`).  Applying a delta yields the edited hypergraph
plus the index maps (:class:`DeltaApplication`) that let every
downstream structure be *patched* instead of rebuilt:

* the CSR twin (:mod:`repro.delta.csrpatch`),
* the intersection graph (:mod:`repro.delta.igraph`),
* the IG-Match sweep and FM gain structures (:mod:`repro.delta.warm`).

The serving integration (``POST /partition/delta``) lives in
:mod:`repro.service`; the measurement harness in ``repro.bench
--eco-scenario``.
"""

from .igraph import affected_nets, updated_edge_state
from .model import (
    DELTA_FORMAT,
    DeltaApplication,
    ModuleAdd,
    NetAdd,
    NetlistDelta,
    delta_from_maps,
    dumps_delta,
    load_delta,
    loads_delta,
    random_delta,
    save_delta,
)
from .warm import (
    WARM_WINDOW,
    SessionArtifacts,
    seed_artifacts,
    warm_partition,
)

__all__ = [
    "DELTA_FORMAT",
    "DeltaApplication",
    "ModuleAdd",
    "NetAdd",
    "NetlistDelta",
    "SessionArtifacts",
    "WARM_WINDOW",
    "affected_nets",
    "delta_from_maps",
    "dumps_delta",
    "load_delta",
    "loads_delta",
    "random_delta",
    "save_delta",
    "seed_artifacts",
    "updated_edge_state",
    "warm_partition",
]
