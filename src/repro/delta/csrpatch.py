"""Patch a base hypergraph's CSR twin into its edited successor.

``CsrHypergraph.from_hypergraph`` walks every pin through Python
iterators; for a small ECO edit against a large netlist that cold
rebuild is almost entirely redundant work.  :func:`patched_csr` instead
splices the base twin's flat arrays: every net row the delta did not
touch is copied across with one vectorised gather/scatter (pin values
remapped through the survivor lookup table when modules moved), and only
the edited rows are materialised from Python pin lists.  The transpose
direction is re-derived with a vectorised sort rather than a Python pass.

The output is **exactly** equal (``CsrHypergraph.__eq__``, array for
array) to a cold ``from_hypergraph`` of the edited hypergraph — the
differential tests enforce this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..hypergraph.csr import CsrHypergraph

if TYPE_CHECKING:  # pragma: no cover
    from ..hypergraph import Hypergraph
    from .model import DeltaApplication

__all__ = ["patched_csr"]


def _segment_gather(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat indices covering ``[starts[i], starts[i]+lengths[i])`` rows."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    exclusive = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=exclusive[1:])
    return np.repeat(starts - exclusive, lengths) + np.arange(
        total, dtype=np.int64
    )


def patched_csr(
    base: "Hypergraph", application: "DeltaApplication"
) -> CsrHypergraph:
    """The edited hypergraph's CSR twin, spliced from the base twin."""
    edited = application.hypergraph
    base_csr = base.csr
    m2 = edited.num_nets
    pins2 = edited._pins

    sizes2 = np.fromiter((len(p) for p in pins2), dtype=np.int64, count=m2)
    net_indptr = np.zeros(m2 + 1, dtype=np.int64)
    np.cumsum(sizes2, out=net_indptr[1:])
    net_indices = np.empty(int(net_indptr[-1]), dtype=np.int64)

    # Survivor pin-value remap: identity unless modules were removed or
    # inserted before survivors.
    module_map = application.module_map
    identity_modules = (
        len(module_map) == edited.num_modules
        and all(t == v for v, t in enumerate(module_map))
    )
    lut = None
    if not identity_modules:
        lut = np.full(max(len(module_map), 1), -1, dtype=np.int64)
        for v, target in enumerate(module_map):
            if target is not None:
                lut[v] = target

    changed = set(application.changed_nets)
    kept_base = np.fromiter(
        (
            k
            for k, target in enumerate(application.net_map)
            if target is not None and k not in changed
        ),
        dtype=np.int64,
    )
    if kept_base.size:
        kept_final = np.fromiter(
            (application.net_map[int(k)] for k in kept_base),
            dtype=np.int64,
            count=kept_base.size,
        )
        src_starts = base_csr.net_indptr[kept_base]
        lengths = base_csr.net_indptr[kept_base + 1] - src_starts
        src = _segment_gather(src_starts, lengths)
        dest = _segment_gather(net_indptr[kept_final], lengths)
        values = base_csr.net_indices[src]
        if lut is not None:
            values = lut[values]
        net_indices[dest] = values
    untouched_final = (
        set()
        if not kept_base.size
        else {application.net_map[int(k)] for k in kept_base}
    )
    for e in range(m2):
        if e in untouched_final:
            continue
        net_indices[net_indptr[e]:net_indptr[e + 1]] = pins2[e]

    # Transpose direction, derived with one vectorised stable sort:
    # group pins by module, nets ascending within each module row.
    n2 = edited.num_modules
    pin_nets = np.repeat(np.arange(m2, dtype=np.int64), sizes2)
    order = np.lexsort((pin_nets, net_indices))
    module_indices = pin_nets[order]
    counts = np.bincount(net_indices, minlength=n2).astype(np.int64)
    module_indptr = np.zeros(n2 + 1, dtype=np.int64)
    np.cumsum(counts, out=module_indptr[1:])

    return CsrHypergraph(
        net_indptr,
        net_indices,
        module_indptr,
        module_indices,
        module_areas=edited.module_areas,
        net_weights=edited._net_weights,
        module_names=edited._module_names,
        net_names=edited._net_names,
        name=edited.name,
        validate=False,
    )
