"""Incremental intersection-graph maintenance under a netlist delta.

A small ECO edit invalidates only a sliver of the intersection graph:
an edge ``(a, b)`` changes exactly when the pin set of ``a`` or ``b``
changed, or when a shared module's degree changed (degrees enter the
paper weighting).  :func:`updated_edge_state` takes the base graph's
canonical :class:`~repro.intersection.build.EdgeState`, keeps every
untouched edge verbatim (indices remapped through the delta's survivor
maps — weights stay bitwise identical), recomputes edges incident to
the affected nets with the reference per-edge weighting, and re-sorts
into canonical order.  The result is **exactly** the edge state a cold
:func:`~repro.intersection.intersection_graph` build of the edited
hypergraph would produce — adjacency order, weights, and all — which
the differential tests enforce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set

import numpy as np

from ..intersection.build import EdgeState
from ..intersection.weights import get_weighting
from ..obs import incr, span

if TYPE_CHECKING:  # pragma: no cover
    from ..hypergraph import Hypergraph
    from .model import DeltaApplication

__all__ = ["affected_nets", "updated_edge_state"]


def affected_nets(
    base: "Hypergraph", application: "DeltaApplication"
) -> Set[int]:
    """Edited-hypergraph nets whose intersection edges need recomputing.

    A net is affected when its own pin set changed (rewired, stripped,
    or newly added) or when any incident module's degree changed — the
    paper weighting divides by ``d_k - 1``, so a module gaining or
    losing a net silently re-weights every edge through it.
    """
    edited = application.hypergraph
    changed_final = {
        application.net_map[k] for k in application.changed_nets
    }
    new_final = set(application.added_nets)

    dirty_modules = set(application.added_modules)
    for e in changed_final | new_final:
        dirty_modules.update(edited.pins(e))
    for k in application.changed_nets:
        for p in base.pins(k):
            mapped = application.module_map[p]
            if mapped is not None:
                dirty_modules.add(mapped)
    for k, target in enumerate(application.net_map):
        if target is None:  # removed net: its pins all lose a degree
            for p in base.pins(k):
                mapped = application.module_map[p]
                if mapped is not None:
                    dirty_modules.add(mapped)

    affected = changed_final | new_final
    for v in dirty_modules:
        affected.update(edited.nets_of(v))
    return affected


def updated_edge_state(
    base: "Hypergraph",
    base_state: EdgeState,
    application: "DeltaApplication",
    weighting: str = "paper",
) -> EdgeState:
    """Patch ``base``'s edge state into the edited hypergraph's.

    Cost is O(preserved edges) vectorised remapping plus reference-path
    work proportional to the affected neighbourhood only.
    """
    edited = application.hypergraph
    weight_fn = get_weighting(weighting)
    with span(
        "delta.igraph.update",
        base_edges=base_state.num_edges,
        nets=edited.num_nets,
    ) as sp:
        affected = affected_nets(base, application)

        # --- preserved edges: both endpoints untouched ------------------
        affected_base = np.zeros(max(base.num_nets, 1), dtype=bool)
        for k, target in enumerate(application.net_map):
            if target is None or target in affected:
                affected_base[k] = True
        keep = ~(
            affected_base[base_state.edge_a]
            | affected_base[base_state.edge_b]
        )
        net_lut = np.full(max(base.num_nets, 1), -1, dtype=np.int64)
        for k, target in enumerate(application.net_map):
            if target is not None:
                net_lut[k] = target
        module_lut = np.full(
            max(base.num_modules, 1), -1, dtype=np.int64
        )
        for v, target in enumerate(application.module_map):
            if target is not None:
                module_lut[v] = target
        kept_a = net_lut[base_state.edge_a[keep]]
        kept_b = net_lut[base_state.edge_b[keep]]
        kept_w = base_state.weights[keep]
        kept_fm = module_lut[base_state.first_mod[keep]]

        # --- recomputed edges: any edge touching an affected net --------
        pairs = set()
        for e in affected:
            seen = set()
            for v in edited.pins(e):
                for f in edited.nets_of(v):
                    if f != e:
                        seen.add(f)
            for f in seen:
                pairs.add((e, f) if e < f else (f, e))
        new_a, new_b, new_w, new_fm = [], [], [], []
        for x, y in pairs:
            shared = sorted(set(edited.pins(x)) & set(edited.pins(y)))
            if not shared:  # pragma: no cover - pairs share by discovery
                continue
            w = weight_fn(edited, x, y, shared)
            if w > 0:
                new_a.append(x)
                new_b.append(y)
                new_w.append(w)
                new_fm.append(shared[0])

        edge_a = np.concatenate(
            [kept_a, np.asarray(new_a, dtype=np.int64)]
        )
        edge_b = np.concatenate(
            [kept_b, np.asarray(new_b, dtype=np.int64)]
        )
        weights = np.concatenate(
            [kept_w, np.asarray(new_w, dtype=np.float64)]
        )
        first_mod = np.concatenate(
            [kept_fm, np.asarray(new_fm, dtype=np.int64)]
        )
        order = np.lexsort((edge_b, edge_a, first_mod))
        state = EdgeState(
            edge_a[order], edge_b[order], weights[order], first_mod[order]
        )
        sp.set(
            edges=state.num_edges,
            recomputed=len(new_a),
            preserved=int(keep.sum()),
        )
        incr("delta.igraph.updates")
        incr("delta.igraph.recomputed_edges", len(new_a))
    return state
