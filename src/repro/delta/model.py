"""Netlist deltas: first-class ECO edits against a base hypergraph.

An engineering change order (ECO) rarely rewrites a netlist — it adds a
few cells, reroutes a handful of signals, tweaks an area.  This module
models such an edit as an immutable :class:`NetlistDelta` value that can
be validated against its base hypergraph, applied to produce the edited
hypergraph (with the CSR twin patched incrementally rather than rebuilt),
inverted, and composed.  A canonical JSON wire format
(``repro-netlist-delta-v1``) makes deltas portable across the CLI and the
HTTP API.

Index conventions
-----------------
*Removals and edits* (``remove_modules``, ``remove_nets``, ``set_pins``,
``set_net_weights``, ``set_module_areas``) address entities by their
**base** index — the numbering of the hypergraph the delta is written
against.  *Pins* (inside ``add_nets`` entries and ``set_pins`` values)
and explicit insertion ``index`` positions are expressed in the **final**
numbering of the edited hypergraph, because they describe the result.
Added entities without an explicit ``index`` append after the survivors,
which keep their relative order.

Pins of removed modules are stripped from every surviving net
automatically; a net edited via ``set_pins`` is replaced wholesale.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import DeltaError
from ..hypergraph import Hypergraph

__all__ = [
    "DELTA_FORMAT",
    "DeltaApplication",
    "ModuleAdd",
    "NetAdd",
    "NetlistDelta",
    "delta_from_maps",
    "dumps_delta",
    "load_delta",
    "loads_delta",
    "random_delta",
    "save_delta",
]

PathLike = Union[str, Path]

DELTA_FORMAT = "repro-netlist-delta-v1"


@dataclass(frozen=True)
class ModuleAdd:
    """One module added by a delta.

    ``index`` is the module's position in the final numbering; ``None``
    appends it after the surviving modules.
    """

    name: Optional[str] = None
    area: float = 1.0
    index: Optional[int] = None

    def to_doc(self) -> dict:
        doc: dict = {}
        if self.name is not None:
            doc["name"] = self.name
        if self.area != 1.0:
            doc["area"] = self.area
        if self.index is not None:
            doc["index"] = self.index
        return doc

    @classmethod
    def from_doc(cls, doc: Mapping) -> "ModuleAdd":
        if not isinstance(doc, Mapping):
            raise DeltaError(f"add_modules entry must be an object: {doc!r}")
        unknown = set(doc) - {"name", "area", "index"}
        if unknown:
            raise DeltaError(
                f"unknown add_modules fields: {sorted(unknown)}"
            )
        return cls(
            name=doc.get("name"),
            area=float(doc.get("area", 1.0)),
            index=None if doc.get("index") is None else int(doc["index"]),
        )


@dataclass(frozen=True)
class NetAdd:
    """One net added by a delta; ``pins`` use final module indices."""

    pins: Tuple[int, ...] = ()
    name: Optional[str] = None
    weight: Optional[float] = None
    index: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(
            self, "pins", tuple(int(p) for p in self.pins)
        )

    def to_doc(self) -> dict:
        doc: dict = {"pins": list(self.pins)}
        if self.name is not None:
            doc["name"] = self.name
        if self.weight is not None:
            doc["weight"] = self.weight
        if self.index is not None:
            doc["index"] = self.index
        return doc

    @classmethod
    def from_doc(cls, doc: Mapping) -> "NetAdd":
        if not isinstance(doc, Mapping):
            raise DeltaError(f"add_nets entry must be an object: {doc!r}")
        unknown = set(doc) - {"pins", "name", "weight", "index"}
        if unknown:
            raise DeltaError(f"unknown add_nets fields: {sorted(unknown)}")
        if "pins" not in doc:
            raise DeltaError("add_nets entry missing 'pins'")
        return cls(
            pins=tuple(int(p) for p in doc["pins"]),
            name=doc.get("name"),
            weight=None if doc.get("weight") is None else float(doc["weight"]),
            index=None if doc.get("index") is None else int(doc["index"]),
        )


@dataclass(frozen=True)
class DeltaApplication:
    """Everything :meth:`NetlistDelta.apply_detailed` learned.

    ``module_map`` / ``net_map`` map base indices to final indices
    (``None`` for removed entities).  ``changed_nets`` are the *base*
    indices of surviving nets whose pin membership changed (rewired via
    ``set_pins`` or stripped of removed-module pins); ``added_nets`` and
    ``added_modules`` are **final** positions.  The warm-start machinery
    consumes these to bound its rebuild work.
    """

    hypergraph: Hypergraph
    module_map: Tuple[Optional[int], ...]
    net_map: Tuple[Optional[int], ...]
    added_modules: Tuple[int, ...]
    added_nets: Tuple[int, ...]
    changed_nets: Tuple[int, ...]


def _arrange(survivors: List[int], adds: Sequence, kind: str):
    """Interleave survivors and added entries into final positions.

    Returns a list of ``("old", base_index)`` / ``("add", add_pos)``
    pairs indexed by final position.  Entries with an explicit ``index``
    claim that slot; survivors (in base order) then implicit adds (in
    listed order) fill the remaining slots left to right — so with no
    explicit indices, adds append at the end.
    """
    final_count = len(survivors) + len(adds)
    slots: List[Optional[tuple]] = [None] * final_count
    for pos, entry in enumerate(adds):
        if entry.index is None:
            continue
        if not 0 <= entry.index < final_count:
            raise DeltaError(
                f"add_{kind}s insertion index {entry.index} out of range "
                f"(final {kind} count {final_count})"
            )
        if slots[entry.index] is not None:
            raise DeltaError(
                f"duplicate add_{kind}s insertion index {entry.index}"
            )
        slots[entry.index] = ("add", pos)
    fill = iter(
        [("old", b) for b in survivors]
        + [
            ("add", pos)
            for pos, entry in enumerate(adds)
            if entry.index is None
        ]
    )
    for i in range(final_count):
        if slots[i] is None:
            slots[i] = next(fill)
    return slots


def _check_indices(
    indices, limit: int, what: str, removed: Optional[set] = None
) -> None:
    for idx in indices:
        if not 0 <= idx < limit:
            raise DeltaError(f"{what} index {idx} out of range (0..{limit - 1})")
        if removed is not None and idx in removed:
            raise DeltaError(f"{what} index {idx} is also being removed")


@dataclass(frozen=True)
class NetlistDelta:
    """An immutable edit script against a base hypergraph.

    See the module docstring for the index conventions.  Instances are
    normalised on construction: removal lists are sorted and de-duplicated,
    edit mappings keyed by ``int``.
    """

    remove_modules: Tuple[int, ...] = ()
    add_modules: Tuple[ModuleAdd, ...] = ()
    set_module_areas: Mapping[int, float] = field(default_factory=dict)
    remove_nets: Tuple[int, ...] = ()
    add_nets: Tuple[NetAdd, ...] = ()
    set_pins: Mapping[int, Tuple[int, ...]] = field(default_factory=dict)
    set_net_weights: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(
            self,
            "remove_modules",
            tuple(sorted({int(v) for v in self.remove_modules})),
        )
        object.__setattr__(
            self,
            "remove_nets",
            tuple(sorted({int(e) for e in self.remove_nets})),
        )
        object.__setattr__(self, "add_modules", tuple(self.add_modules))
        object.__setattr__(self, "add_nets", tuple(self.add_nets))
        object.__setattr__(
            self,
            "set_module_areas",
            {int(k): float(v) for k, v in dict(self.set_module_areas).items()},
        )
        object.__setattr__(
            self,
            "set_pins",
            {
                int(k): tuple(int(p) for p in v)
                for k, v in dict(self.set_pins).items()
            },
        )
        object.__setattr__(
            self,
            "set_net_weights",
            {int(k): float(v) for k, v in dict(self.set_net_weights).items()},
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the delta edits nothing at all."""
        return not (
            self.remove_modules
            or self.add_modules
            or self.set_module_areas
            or self.remove_nets
            or self.add_nets
            or self.set_pins
            or self.set_net_weights
        )

    def summary(self) -> Dict[str, int]:
        """Edit counts by kind (for logs and metrics labels)."""
        return {
            "remove_modules": len(self.remove_modules),
            "add_modules": len(self.add_modules),
            "set_module_areas": len(self.set_module_areas),
            "remove_nets": len(self.remove_nets),
            "add_nets": len(self.add_nets),
            "set_pins": len(self.set_pins),
            "set_net_weights": len(self.set_net_weights),
        }

    # ------------------------------------------------------------------
    # Validation and application
    # ------------------------------------------------------------------
    def validate(self, base: Hypergraph) -> None:
        """Raise :class:`DeltaError` unless ``self`` applies to ``base``."""
        n, m = base.num_modules, base.num_nets
        removed_m = set(self.remove_modules)
        removed_e = set(self.remove_nets)
        _check_indices(self.remove_modules, n, "remove_modules")
        _check_indices(self.remove_nets, m, "remove_nets")
        _check_indices(
            self.set_module_areas, n, "set_module_areas", removed_m
        )
        _check_indices(self.set_pins, m, "set_pins", removed_e)
        _check_indices(
            self.set_net_weights, m, "set_net_weights", removed_e
        )
        final_n = n - len(removed_m) + len(self.add_modules)
        final_m = m - len(removed_e) + len(self.add_nets)
        if final_n < 0 or final_m < 0:  # pragma: no cover - sets forbid
            raise DeltaError("delta removes more entities than exist")
        for area in self.set_module_areas.values():
            if area < 0:
                raise DeltaError(f"module area must be non-negative: {area}")
        for weight in self.set_net_weights.values():
            if weight < 0:
                raise DeltaError(f"net weight must be non-negative: {weight}")
        for entry in self.add_modules:
            if entry.area < 0:
                raise DeltaError(
                    f"added module area must be non-negative: {entry.area}"
                )
        for entry in self.add_nets:
            if entry.weight is not None and entry.weight < 0:
                raise DeltaError(
                    f"added net weight must be non-negative: {entry.weight}"
                )
            _check_indices(entry.pins, final_n, "add_nets pin")
        for pins in self.set_pins.values():
            _check_indices(pins, final_n, "set_pins pin")
        # _arrange validates insertion indices (range + duplicates).
        _arrange(
            [v for v in range(n) if v not in removed_m],
            self.add_modules,
            "module",
        )
        _arrange(
            [e for e in range(m) if e not in removed_e],
            self.add_nets,
            "net",
        )

    def apply_detailed(self, base: Hypergraph) -> DeltaApplication:
        """Apply to ``base``, returning the result plus the index maps."""
        self.validate(base)
        removed_m = set(self.remove_modules)
        module_slots = _arrange(
            [v for v in range(base.num_modules) if v not in removed_m],
            self.add_modules,
            "module",
        )
        final_n = len(module_slots)
        module_map: List[Optional[int]] = [None] * base.num_modules
        added_modules: List[int] = [0] * len(self.add_modules)
        areas: List[float] = [1.0] * final_n
        want_module_names = base.has_module_names or any(
            entry.name is not None for entry in self.add_modules
        )
        module_names: Optional[List[str]] = (
            [""] * final_n if want_module_names else None
        )
        for final_idx, (tag, ref) in enumerate(module_slots):
            if tag == "old":
                module_map[ref] = final_idx
                areas[final_idx] = self.set_module_areas.get(
                    ref, base.module_area(ref)
                )
                if module_names is not None:
                    module_names[final_idx] = base.module_name(ref)
            else:
                entry = self.add_modules[ref]
                added_modules[ref] = final_idx
                areas[final_idx] = entry.area
                if module_names is not None:
                    module_names[final_idx] = (
                        entry.name
                        if entry.name is not None
                        else f"m{final_idx}"
                    )

        removed_e = set(self.remove_nets)
        net_slots = _arrange(
            [e for e in range(base.num_nets) if e not in removed_e],
            self.add_nets,
            "net",
        )
        final_m = len(net_slots)
        net_map: List[Optional[int]] = [None] * base.num_nets
        added_nets: List[int] = [0] * len(self.add_nets)
        changed: set = set()
        nets: List[Sequence[int]] = [()] * final_m
        want_weights = (
            base.has_net_weights
            or bool(self.set_net_weights)
            or any(entry.weight is not None for entry in self.add_nets)
        )
        weights: Optional[List[float]] = (
            [1.0] * final_m if want_weights else None
        )
        want_net_names = base.has_net_names or any(
            entry.name is not None for entry in self.add_nets
        )
        net_names: Optional[List[str]] = (
            [""] * final_m if want_net_names else None
        )
        for final_idx, (tag, ref) in enumerate(net_slots):
            if tag == "old":
                net_map[ref] = final_idx
                if ref in self.set_pins:
                    nets[final_idx] = self.set_pins[ref]
                    changed.add(ref)
                else:
                    base_pins = base.pins(ref)
                    pins = [
                        module_map[p]
                        for p in base_pins
                        if module_map[p] is not None
                    ]
                    if len(pins) != len(base_pins):
                        changed.add(ref)
                    nets[final_idx] = pins
                if weights is not None:
                    weights[final_idx] = self.set_net_weights.get(
                        ref, base.net_weight(ref)
                    )
                if net_names is not None:
                    net_names[final_idx] = base.net_name(ref)
            else:
                entry = self.add_nets[ref]
                added_nets[ref] = final_idx
                nets[final_idx] = entry.pins
                if weights is not None and entry.weight is not None:
                    weights[final_idx] = entry.weight
                if net_names is not None:
                    net_names[final_idx] = (
                        entry.name
                        if entry.name is not None
                        else f"n{final_idx}"
                    )

        edited = Hypergraph(
            nets,
            num_modules=final_n,
            module_names=module_names,
            net_names=net_names,
            module_areas=areas,
            net_weights=weights,
            name=base.name,
        )
        application = DeltaApplication(
            hypergraph=edited,
            module_map=tuple(module_map),
            net_map=tuple(net_map),
            added_modules=tuple(added_modules),
            added_nets=tuple(added_nets),
            changed_nets=tuple(sorted(changed)),
        )
        _maybe_patch_csr(base, application)
        return application

    def apply(self, base: Hypergraph) -> Hypergraph:
        """Apply to ``base`` and return the edited hypergraph."""
        return self.apply_detailed(base).hypergraph

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def invert(self, base: Hypergraph) -> "NetlistDelta":
        """The delta that undoes ``self``: applying it to
        ``self.apply(base)`` reconstructs ``base`` (up to the usual
        weight-defaulting equivalence)."""
        app = self.apply_detailed(base)
        edited = app.hypergraph
        inverse_mmap: List[Optional[int]] = [None] * edited.num_modules
        for v, target in enumerate(app.module_map):
            if target is not None:
                inverse_mmap[target] = v
        inverse_nmap: List[Optional[int]] = [None] * edited.num_nets
        for e, target in enumerate(app.net_map):
            if target is not None:
                inverse_nmap[target] = e
        return delta_from_maps(edited, base, inverse_mmap, inverse_nmap)

    def compose(self, other: "NetlistDelta", base: Hypergraph) -> "NetlistDelta":
        """One delta equivalent to applying ``self`` then ``other``."""
        app1 = self.apply_detailed(base)
        app2 = other.apply_detailed(app1.hypergraph)
        module_map = [
            None if t is None else app2.module_map[t]
            for t in app1.module_map
        ]
        net_map = [
            None if t is None else app2.net_map[t] for t in app1.net_map
        ]
        return delta_from_maps(base, app2.hypergraph, module_map, net_map)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_doc(self) -> dict:
        """Serialise to the canonical JSON-compatible document."""
        doc: dict = {"format": DELTA_FORMAT}
        if self.remove_modules:
            doc["remove_modules"] = list(self.remove_modules)
        if self.add_modules:
            doc["add_modules"] = [e.to_doc() for e in self.add_modules]
        if self.set_module_areas:
            doc["set_module_areas"] = {
                str(k): self.set_module_areas[k]
                for k in sorted(self.set_module_areas)
            }
        if self.remove_nets:
            doc["remove_nets"] = list(self.remove_nets)
        if self.add_nets:
            doc["add_nets"] = [e.to_doc() for e in self.add_nets]
        if self.set_pins:
            doc["set_pins"] = {
                str(k): list(self.set_pins[k]) for k in sorted(self.set_pins)
            }
        if self.set_net_weights:
            doc["set_net_weights"] = {
                str(k): self.set_net_weights[k]
                for k in sorted(self.set_net_weights)
            }
        return doc

    @classmethod
    def from_doc(cls, doc: Mapping) -> "NetlistDelta":
        """Parse a document produced by :meth:`to_doc`."""
        if not isinstance(doc, Mapping):
            raise DeltaError("delta document must be a JSON object")
        if doc.get("format") != DELTA_FORMAT:
            raise DeltaError(
                f"unrecognised delta format tag {doc.get('format')!r}; "
                f"expected {DELTA_FORMAT!r}"
            )
        unknown = set(doc) - {
            "format",
            "remove_modules",
            "add_modules",
            "set_module_areas",
            "remove_nets",
            "add_nets",
            "set_pins",
            "set_net_weights",
        }
        if unknown:
            raise DeltaError(f"unknown delta fields: {sorted(unknown)}")

        def _int_keyed(name):
            mapping = doc.get(name, {})
            if not isinstance(mapping, Mapping):
                raise DeltaError(f"{name} must be an object")
            try:
                return {int(k): v for k, v in mapping.items()}
            except (TypeError, ValueError):
                raise DeltaError(
                    f"{name} keys must be integer indices"
                ) from None

        try:
            return cls(
                remove_modules=tuple(doc.get("remove_modules", ())),
                add_modules=tuple(
                    ModuleAdd.from_doc(e) for e in doc.get("add_modules", ())
                ),
                set_module_areas=_int_keyed("set_module_areas"),
                remove_nets=tuple(doc.get("remove_nets", ())),
                add_nets=tuple(
                    NetAdd.from_doc(e) for e in doc.get("add_nets", ())
                ),
                set_pins=_int_keyed("set_pins"),
                set_net_weights=_int_keyed("set_net_weights"),
            )
        except (TypeError, ValueError) as exc:
            raise DeltaError(f"malformed delta document: {exc}") from None


def _maybe_patch_csr(base: Hypergraph, application: DeltaApplication) -> None:
    """Install the edited hypergraph's CSR twin by patching the base's.

    Only when the base twin is already materialised (or the CSR core is
    active, which would materialise it on first touch anyway): unchanged
    net rows are spliced across with vectorised gathers, so Python-level
    row assembly is paid only for the nets the delta actually touched.
    """
    from ..core import csr_active

    if base._csr is None and not csr_active():
        return
    from .csrpatch import patched_csr

    application.hypergraph._csr = patched_csr(base, application)


def delta_from_maps(
    base: Hypergraph,
    target: Hypergraph,
    module_map: Sequence[Optional[int]],
    net_map: Sequence[Optional[int]],
) -> NetlistDelta:
    """Derive the delta that rewrites ``base`` into ``target``.

    ``module_map`` / ``net_map`` give each base entity's index in
    ``target`` (``None`` = removed); both maps must be order-preserving
    on the survivors.  This is the shared engine behind
    :meth:`NetlistDelta.invert` and :meth:`NetlistDelta.compose` — and a
    public diffing primitive in its own right.
    """
    remove_modules = tuple(
        v for v in range(base.num_modules) if module_map[v] is None
    )
    mapped_modules = {t for t in module_map if t is not None}
    add_modules = tuple(
        ModuleAdd(
            name=target.module_name(i) if target.has_module_names else None,
            area=target.module_area(i),
            index=i,
        )
        for i in range(target.num_modules)
        if i not in mapped_modules
    )
    set_module_areas = {
        v: target.module_area(module_map[v])
        for v in range(base.num_modules)
        if module_map[v] is not None
        and target.module_area(module_map[v]) != base.module_area(v)
    }
    remove_nets = tuple(
        e for e in range(base.num_nets) if net_map[e] is None
    )
    mapped_nets = {t for t in net_map if t is not None}
    add_nets = tuple(
        NetAdd(
            pins=target.pins(i),
            name=target.net_name(i) if target.has_net_names else None,
            weight=target.net_weight(i) if target.net_weight(i) != 1.0 else None,
            index=i,
        )
        for i in range(target.num_nets)
        if i not in mapped_nets
    )
    set_pins = {}
    set_net_weights = {}
    for e in range(base.num_nets):
        t = net_map[e]
        if t is None:
            continue
        expected = tuple(
            sorted(
                {
                    module_map[p]
                    for p in base.pins(e)
                    if module_map[p] is not None
                }
            )
        )
        if expected != target.pins(t):
            set_pins[e] = target.pins(t)
        if target.net_weight(t) != base.net_weight(e):
            set_net_weights[e] = target.net_weight(t)
    return NetlistDelta(
        remove_modules=remove_modules,
        add_modules=add_modules,
        set_module_areas=set_module_areas,
        remove_nets=remove_nets,
        add_nets=add_nets,
        set_pins=set_pins,
        set_net_weights=set_net_weights,
    )


# ----------------------------------------------------------------------
# JSON convenience wrappers
# ----------------------------------------------------------------------
def dumps_delta(delta: NetlistDelta) -> str:
    """Canonical JSON text for ``delta`` (sorted keys, stable)."""
    return json.dumps(delta.to_doc(), sort_keys=True)


def loads_delta(text: str) -> NetlistDelta:
    """Parse delta JSON text."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DeltaError(f"invalid delta JSON: {exc}") from None
    return NetlistDelta.from_doc(doc)


def save_delta(delta: NetlistDelta, path: PathLike) -> None:
    """Write ``delta`` as JSON to ``path``."""
    Path(path).write_text(dumps_delta(delta) + "\n", encoding="utf-8")


def load_delta(path: PathLike) -> NetlistDelta:
    """Read a delta from a JSON file written by :func:`save_delta`."""
    return loads_delta(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Random ECO edits (bench scenarios and fuzzing)
# ----------------------------------------------------------------------
def random_delta(
    h: Hypergraph,
    rng,
    max_net_removes: int = 2,
    max_net_adds: int = 2,
    max_rewires: int = 2,
    max_pins: int = 5,
    module_churn: bool = True,
) -> NetlistDelta:
    """A small random ECO edit valid against ``h``.

    Draws a handful of net removals, additions, and rewires (plus the
    occasional module add / area tweak) sized like a realistic change
    order — a fixed number of edits regardless of netlist size, which is
    exactly the regime incremental partitioning is built for.  Keeps the
    result partitionable: at least 4 modules, 2 nets, and every touched
    net with >= 2 pins.
    """
    n, m = h.num_modules, h.num_nets

    def _sample_pins(count_modules):
        size = rng.randint(2, min(max_pins, count_modules))
        return rng.sample(range(count_modules), size)

    removable = max(0, m - 2)
    remove_nets = sorted(
        rng.sample(range(m), min(rng.randint(0, max_net_removes), removable))
    )
    add_module = bool(module_churn and n >= 4 and rng.random() < 0.5)
    final_n = n + (1 if add_module else 0)
    add_modules = ()
    if add_module:
        add_modules = (ModuleAdd(area=float(rng.randint(1, 4))),)
    removed = set(remove_nets)
    editable = [e for e in range(m) if e not in removed]
    rewires = rng.sample(
        editable, min(rng.randint(0, max_rewires), len(editable))
    )
    set_pins = {e: tuple(sorted(_sample_pins(final_n))) for e in rewires}
    add_nets = tuple(
        NetAdd(pins=tuple(sorted(_sample_pins(final_n))))
        for _ in range(rng.randint(0, max_net_adds))
    )
    set_module_areas = {}
    if module_churn and rng.random() < 0.3:
        victim = rng.randrange(n)
        set_module_areas[victim] = float(rng.randint(1, 4))
    return NetlistDelta(
        add_modules=add_modules,
        set_module_areas=set_module_areas,
        remove_nets=remove_nets,
        add_nets=add_nets,
        set_pins=set_pins,
    )
