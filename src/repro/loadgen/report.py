"""The serving benchmark report: schema, cross-check, validation.

One load run produces one ``BENCH_serving.json`` payload
(:func:`build_payload`, schema version :data:`SERVING_SCHEMA`,
validated by :func:`validate_payload`) holding the workload/corpus
configuration, client-side latency summaries, per-objective SLO
verdicts, and — the part that makes the numbers trustworthy — the
**client/server cross-check** (:func:`crosscheck`): the server's
``/metrics`` snapshot from before the run is subtracted from the one
after, and the deltas must account for exactly the requests the client
sent:

* the ``http.request.duration_seconds{method=POST,route=/partition}``
  histogram ``_count`` grew by exactly the number of HTTP responses
  the client received (ok + rejected + error — refused/transport
  requests never produced a server-side response);
* ``service.rejected`` grew by exactly the client's 429 count
  (backpressure is accounted separately from errors, and 503 draining
  rejections are not 429 backpressure);
* ``service.requests`` grew by exactly the requests that reached the
  engine (the client's 200s; non-2xx errors may fail before or after
  engine dispatch, so with errors present the check becomes a range);
* engine-internal conservation: ``cache.hit + cache.miss ==
  requests``, and the ``service.request.duration_seconds`` histogram
  count matches the counter;
* cache provenance: the client's per-``source`` tallies (computed /
  memory / disk / inflight, read from response bodies) equal the
  server's counter and cache-stat deltas.

A cross-check row that cannot be decided (mixed errors, missing
sections) is reported ``indeterminate`` rather than silently passed.

All functions here are pure — scraping and polling live in
:mod:`repro.loadgen.client` / :mod:`repro.loadgen.scenario`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import ReproError
from .client import LoadResult
from .corpus import Corpus
from .slo import SLOSpec, evaluate_slo, slo_ok
from .workload import Workload

__all__ = [
    "SERVING_SCHEMA",
    "build_payload",
    "crosscheck",
    "hist_count",
    "validate_payload",
]

#: Version of the ``BENCH_serving.json`` payload shape.
SERVING_SCHEMA = 1

_REQUIRED_KEYS = (
    "schema",
    "kind",
    "workload",
    "corpus",
    "client",
    "latency",
    "slo",
    "crosscheck",
    "server",
)


def hist_count(
    metrics: Optional[Dict[str, Any]],
    name: str,
    **labels: str,
) -> Optional[int]:
    """Total ``count`` across a histogram's series matching ``labels``.

    ``labels`` is a subset match (a series matches when every given
    label equals).  ``None`` when the metrics doc has no histogram
    section; 0 when the section exists but no series matches (a
    before-scrape of a fresh server legitimately has no series yet).
    """
    if not metrics:
        return None
    series = metrics.get("histograms", {})
    if not isinstance(series, dict):
        return None
    total = 0
    for entry in series.get(name, []):
        entry_labels = entry.get("labels", {})
        if all(entry_labels.get(k) == v for k, v in labels.items()):
            total += int(entry.get("count", 0))
    return total


def _counter(
    metrics: Optional[Dict[str, Any]], section: str, name: str
) -> Optional[int]:
    if not metrics:
        return None
    block = metrics.get(section)
    if not isinstance(block, dict) or name not in block:
        return None
    return int(block[name])


def _delta(
    before: Optional[int], after: Optional[int]
) -> Optional[int]:
    if before is None and after is None:
        return None
    # A fresh server's before-scrape may predate a section (no jobs
    # scheduler yet, no histogram series): treat absent-before as 0.
    return (after or 0) - (before or 0)


def crosscheck(
    before: Dict[str, Any],
    after: Dict[str, Any],
    result: LoadResult,
) -> List[Dict[str, Any]]:
    """Account for every client request in the server's metric deltas.

    Returns one row per check: ``{"check", "expected", "observed",
    "status", "detail"}`` with status ``"ok"`` / ``"mismatch"`` /
    ``"indeterminate"``.  Callers gate on
    ``all(r["status"] == "ok" for r in rows)``.
    """
    rows: List[Dict[str, Any]] = []

    ok = result.count("ok")
    errors = result.count("error")
    rejected_429 = sum(1 for r in result.records if r.status == 429)
    responses = result.responses

    def check(
        name: str,
        expected: Optional[int],
        observed: Optional[int],
        detail: str = "",
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ) -> None:
        """One row; a (lo, hi) range overrides exact equality."""
        if observed is None:
            status = "indeterminate"
            detail = detail or "metric absent from scrape"
        elif lo is not None and hi is not None:
            status = "ok" if lo <= observed <= hi else "mismatch"
        else:
            status = "ok" if observed == expected else "mismatch"
        rows.append(
            {
                "check": name,
                "expected": expected,
                "observed": observed,
                "status": status,
                "detail": detail,
            }
        )

    # 1. Every HTTP response the client got is one observation in the
    #    server's POST /partition latency histogram — no more, no less.
    http_delta = _delta(
        hist_count(
            before,
            "http.request.duration_seconds",
            method="POST",
            route="/partition",
        ),
        hist_count(
            after,
            "http.request.duration_seconds",
            method="POST",
            route="/partition",
        ),
    )
    check(
        "http.request.duration_seconds count delta == client responses",
        responses,
        http_delta,
        f"client saw {responses} responses "
        f"(ok={ok} rejected={result.count('rejected')} errors={errors})",
    )

    # 2. Backpressure is accounted separately: the 429 counter moved by
    #    exactly the client's 429s (503 draining is not backpressure).
    rejected_delta = _delta(
        _counter(before, "service", "service.rejected"),
        _counter(after, "service", "service.rejected"),
    )
    check(
        "service.rejected delta == client 429s",
        rejected_429,
        rejected_delta,
    )

    # 3. Requests that reached the engine.  Errors can fail either side
    #    of engine dispatch, so with errors present the exact count is
    #    undecidable and the check degrades to a range.
    requests_delta = _delta(
        _counter(before, "service", "service.requests"),
        _counter(after, "service", "service.requests"),
    )
    if errors:
        check(
            "service.requests delta in [ok, ok + errors]",
            ok,
            requests_delta,
            f"{errors} client error(s) may or may not have reached "
            "the engine",
            lo=ok,
            hi=ok + errors,
        )
    else:
        check(
            "service.requests delta == client 200s",
            ok,
            requests_delta,
        )

    # 4. Engine conservation: every engine request is a hit or a miss.
    hit_delta = _delta(
        _counter(before, "service", "service.cache.hit"),
        _counter(after, "service", "service.cache.hit"),
    )
    miss_delta = _delta(
        _counter(before, "service", "service.cache.miss"),
        _counter(after, "service", "service.cache.miss"),
    )
    if (
        hit_delta is None
        or miss_delta is None
        or requests_delta is None
    ):
        check("cache.hit + cache.miss == service.requests", None, None)
    else:
        check(
            "cache.hit + cache.miss == service.requests",
            requests_delta,
            hit_delta + miss_delta,
        )

    # 5. The engine's own request histogram agrees with its counter.
    engine_hist_delta = _delta(
        hist_count(before, "service.request.duration_seconds"),
        hist_count(after, "service.request.duration_seconds"),
    )
    check(
        "service.request.duration_seconds count delta == "
        "service.requests delta",
        requests_delta,
        engine_hist_delta,
    )

    # 6. Cache provenance: the client's response bodies tell the same
    #    story as the server's counters, source by source.
    sources = result.by_source()
    computed_delta = _delta(
        _counter(before, "service", "service.computed"),
        _counter(after, "service", "service.computed"),
    )
    check(
        "service.computed delta == client source=computed",
        sources.get("computed", 0),
        computed_delta,
    )
    check(
        "service.cache.hit delta == client cached sources",
        sources.get("memory", 0)
        + sources.get("disk", 0)
        + sources.get("inflight", 0),
        hit_delta,
    )
    inflight_delta = _delta(
        _counter(before, "service", "service.cache.hit.inflight"),
        _counter(after, "service", "service.cache.hit.inflight"),
    )
    check(
        "service.cache.hit.inflight delta == client source=inflight",
        sources.get("inflight", 0),
        inflight_delta,
    )
    memory_delta = _delta(
        _counter(before, "cache", "memory_hits"),
        _counter(after, "cache", "memory_hits"),
    )
    check(
        "cache memory_hits delta == client source=memory",
        sources.get("memory", 0),
        memory_delta,
        "cache section absent (server running without a cache)"
        if memory_delta is None
        else "",
    )
    disk_delta = _delta(
        _counter(before, "cache", "disk_hits"),
        _counter(after, "cache", "disk_hits"),
    )
    check(
        "cache disk_hits delta == client source=disk",
        sources.get("disk", 0),
        disk_delta,
        "cache section absent (server running without a cache)"
        if disk_delta is None
        else "",
    )
    return rows


def _latency_summary(result: LoadResult) -> Dict[str, Any]:
    """Client-observed latency: overall + ok-only quantiles, by source."""
    doc: Dict[str, Any] = {}
    overall = result.hists.merged("loadgen.request.duration_seconds")
    if overall is not None and overall.count:
        doc["all"] = overall.snapshot()
    ok_only: Dict[str, Any] = {}
    merged_ok = None
    for record_algorithm in sorted(
        {r.algorithm for r in result.records}
    ):
        hist = result.hists.get(
            "loadgen.request.duration_seconds",
            algorithm=record_algorithm,
            outcome="ok",
        )
        if hist is None or not hist.count:
            continue
        ok_only[record_algorithm] = hist.snapshot()
        merged_ok = hist if merged_ok is None else merged_ok.merge(hist)
    if merged_ok is not None:
        doc["ok"] = merged_ok.snapshot()
    if ok_only:
        doc["ok_by_algorithm"] = ok_only
    by_source = result.hists.snapshot().get(
        "loadgen.serve.duration_seconds", []
    )
    if by_source:
        doc["ok_by_source"] = by_source
    return doc


def ok_quantiles(result: LoadResult) -> Dict[str, Optional[float]]:
    """p50/p95/p99 of successful requests (``None`` s when no 200s)."""
    merged = None
    for algorithm in {r.algorithm for r in result.records}:
        hist = result.hists.get(
            "loadgen.request.duration_seconds",
            algorithm=algorithm,
            outcome="ok",
        )
        if hist is None:
            continue
        merged = hist if merged is None else merged.merge(hist)
    if merged is None or not merged.count:
        return {"p50": None, "p95": None, "p99": None}
    return merged.percentiles()


def build_payload(
    result: LoadResult,
    workload: Workload,
    corpus: Corpus,
    slo: Optional[SLOSpec],
    checks: List[Dict[str, Any]],
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the full ``BENCH_serving.json`` document."""
    ok = result.count("ok")
    rejected = result.count("rejected")
    errors = result.count("error")
    non_rejected = ok + errors
    error_rate = (errors / non_rejected) if non_rejected else None
    rps = ok / result.elapsed_s if result.elapsed_s > 0 else None
    quantiles = ok_quantiles(result)

    slo_rows: List[Dict[str, Any]] = []
    if slo is not None:
        slo_rows = evaluate_slo(slo, quantiles, error_rate, rps)

    # Isomorph traffic that missed the exact-fingerprint cache is the
    # measured win a canonical-fingerprint tier (ROADMAP item 2) would
    # capture: same canonical fingerprint as a base, different exact key.
    iso_requests = sum(
        1 for r in result.records if r.kind == "isomorph"
    )
    iso_computed = sum(
        1
        for r in result.records
        if r.kind == "isomorph"
        and r.outcome == "ok"
        and r.source == "computed"
    )

    payload: Dict[str, Any] = {
        "schema": SERVING_SCHEMA,
        "kind": "serving",
        "workload": dict(workload.describe(), model=result.model),
        "corpus": corpus.describe(),
        "client": {
            "requests": len(result.records),
            "elapsed_s": round(result.elapsed_s, 6),
            "outcomes": {
                outcome: result.count(outcome)
                for outcome in (
                    "ok",
                    "rejected",
                    "error",
                    "refused",
                    "transport",
                )
            },
            "rejected_429": sum(
                1 for r in result.records if r.status == 429
            ),
            "by_source": result.by_source(),
            "error_rate": error_rate,
            "rps": round(rps, 6) if rps is not None else None,
            "concurrency": result.concurrency,
            "rate": result.rate,
            "behind_schedule": result.behind_schedule,
        },
        "latency": _latency_summary(result),
        "slo": {
            "spec": slo.describe() if slo is not None else None,
            "verdicts": slo_rows,
            "ok": slo_ok(slo_rows) if slo is not None else None,
        },
        "crosscheck": {
            "checks": checks,
            "ok": all(c["status"] == "ok" for c in checks),
        },
        "canonical_tier_opportunity": {
            "isomorph_requests": iso_requests,
            "isomorph_computed": iso_computed,
        },
        "server": {
            "before": _server_summary(result.metrics_before),
            "after": _server_summary(result.metrics_after),
        },
    }
    if result.model == "closed":
        payload["workload"]["concurrency"] = result.concurrency
    else:
        payload["workload"]["rate"] = result.rate
    if extra:
        payload.update(extra)
    return payload


def _server_summary(
    metrics: Optional[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Compact slice of one ``/metrics`` scrape for the report."""
    if not metrics:
        return None
    doc: Dict[str, Any] = {}
    for section in ("service", "cache", "jobs", "process"):
        block = metrics.get(section)
        if isinstance(block, dict):
            doc[section] = {
                k: v
                for k, v in block.items()
                if isinstance(v, (int, float, bool))
            }
    doc["http_partition_count"] = hist_count(
        metrics,
        "http.request.duration_seconds",
        method="POST",
        route="/partition",
    )
    return doc


def validate_payload(payload: Dict[str, Any]) -> None:
    """Raise :class:`ReproError` unless ``payload`` is a well-formed
    schema-:data:`SERVING_SCHEMA` serving benchmark document."""
    if not isinstance(payload, dict):
        raise ReproError("serving payload must be a JSON object")
    if payload.get("schema") != SERVING_SCHEMA:
        raise ReproError(
            f"unknown serving payload schema {payload.get('schema')!r} "
            f"(expected {SERVING_SCHEMA})"
        )
    if payload.get("kind") != "serving":
        raise ReproError(
            f"payload kind {payload.get('kind')!r} is not 'serving'"
        )
    missing = [k for k in _REQUIRED_KEYS if k not in payload]
    if missing:
        raise ReproError(
            f"serving payload missing key(s): {', '.join(missing)}"
        )
    client = payload["client"]
    if not isinstance(client, dict) or "outcomes" not in client:
        raise ReproError("serving payload client block malformed")
    outcomes = client["outcomes"]
    if not isinstance(outcomes, dict) or not all(
        isinstance(v, int) and v >= 0 for v in outcomes.values()
    ):
        raise ReproError(
            "client outcomes must map outcome -> non-negative int"
        )
    if sum(outcomes.values()) != client.get("requests"):
        raise ReproError(
            "client outcome counts do not sum to client requests"
        )
    slo = payload["slo"]
    if not isinstance(slo, dict) or "verdicts" not in slo:
        raise ReproError("serving payload slo block malformed")
    for row in slo["verdicts"]:
        if not {"objective", "target", "observed", "verdict"} <= set(row):
            raise ReproError(f"malformed SLO verdict row: {row!r}")
    cross = payload["crosscheck"]
    if not isinstance(cross, dict) or "checks" not in cross:
        raise ReproError("serving payload crosscheck block malformed")
    for row in cross["checks"]:
        if not {"check", "expected", "observed", "status"} <= set(row):
            raise ReproError(f"malformed crosscheck row: {row!r}")
        if row["status"] not in ("ok", "mismatch", "indeterminate"):
            raise ReproError(
                f"unknown crosscheck status {row['status']!r}"
            )
