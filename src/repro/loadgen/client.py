"""Threaded stdlib HTTP client: send the schedule, record everything.

:class:`LoadClient` drives a :class:`repro.loadgen.workload.Workload`
against a running ``repro-serve`` instance using only
``urllib.request`` and threads.  Every request records a
:class:`RequestRecord` — latency, HTTP status, the server-echoed
``X-Trace-Id``, and cache provenance (``source``/``cached`` from the
response body) — and lands in client-side
:class:`repro.obs.HistogramSet` histograms
(``loadgen.request.duration_seconds{algorithm,outcome}``), the same
mergeable log-bucket machinery the server keeps, so client and server
distributions are directly comparable.

Outcome vocabulary (disjoint; every request gets exactly one):

``ok``
    HTTP 200 with a parsed result body.
``rejected``
    HTTP 429 (ingress backpressure) or 503 (draining) — flow-control
    shedding, **not** an error: the server answered honestly that it
    would not take the work.  Excluded from the SLO error rate.
``error``
    Any other HTTP status (a 400/404/500 means the client or server is
    actually wrong).
``refused``
    The TCP connection was refused, or reset/closed before any
    response byte arrived — the request never reached the
    application (normal once a drain closes the listener), so it
    appears in no server-side count.
``transport``
    Any other network failure (timeout, malformed response): possibly
    a lost accepted request, which the graceful-drain guarantee says
    must never happen.  The cross-check catches losses this taxonomy
    cannot see client-side: a request the server logged but the
    client never counted as a response shows up as a count mismatch.

:func:`scrape_metrics` fetches ``/metrics`` in both content types and
**validates** the Prometheus exposition with
:func:`repro.obs.parse_prometheus_text` before anyone trusts it.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.error
import urllib.request
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs import HistogramSet, parse_prometheus_text
from .corpus import Corpus
from .workload import RequestSpec, Workload

__all__ = ["LoadClient", "LoadResult", "RequestRecord", "scrape_metrics"]

OUTCOMES = ("ok", "rejected", "error", "refused", "transport")

#: Failures proving the request never reached the application: refused
#: outright, or reset/closed before a single response byte
#: (``RemoteDisconnected`` subclasses ``ConnectionResetError``).
_NEVER_REACHED = (
    ConnectionRefusedError,
    ConnectionResetError,
    BrokenPipeError,
)


@dataclass
class RequestRecord:
    """Everything observed about one sent request."""

    index: int
    algorithm: str
    entry: str
    kind: str  # corpus entry kind: "base" | "isomorph"
    outcome: str
    latency_s: float
    status: Optional[int] = None
    trace_id: str = ""
    source: str = ""  # computed | memory | disk | inflight ("" if n/a)
    cached: Optional[bool] = None
    error: Optional[str] = None
    sent_at_s: float = 0.0  # offset from run start

    def row(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "index": self.index,
            "algorithm": self.algorithm,
            "entry": self.entry,
            "kind": self.kind,
            "outcome": self.outcome,
            "latency_s": round(self.latency_s, 6),
        }
        if self.status is not None:
            doc["status"] = self.status
        if self.trace_id:
            doc["trace_id"] = self.trace_id
        if self.source:
            doc["source"] = self.source
        if self.error:
            doc["error"] = self.error
        return doc


@dataclass
class LoadResult:
    """One finished load run: records, client histograms, wall clock."""

    records: List[RequestRecord]
    hists: HistogramSet
    elapsed_s: float
    model: str  # "closed" | "open"
    concurrency: int = 0
    rate: float = 0.0
    behind_schedule: int = 0  # open loop: sends that missed their slot
    metrics_before: Optional[Dict[str, Any]] = None
    metrics_after: Optional[Dict[str, Any]] = None
    prom_before: Dict[str, List[Any]] = field(default_factory=dict)
    prom_after: Dict[str, List[Any]] = field(default_factory=dict)

    def count(self, outcome: str) -> int:
        return sum(1 for r in self.records if r.outcome == outcome)

    def by_source(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.records:
            if r.outcome == "ok" and r.source:
                out[r.source] = out.get(r.source, 0) + 1
        return out

    @property
    def responses(self) -> int:
        """Requests that received *any* HTTP response from the server."""
        return sum(1 for r in self.records if r.status is not None)


def _normalise_url(url: str) -> str:
    url = url.rstrip("/")
    if not url.startswith(("http://", "https://")):
        url = "http://" + url
    return url


def scrape_metrics(
    base_url: str, timeout_s: float = 30.0
) -> Tuple[Dict[str, Any], Dict[str, List[Any]]]:
    """``(json_doc, prometheus_samples)`` from one ``/metrics`` scrape.

    The Prometheus text form is validated with
    :func:`repro.obs.parse_prometheus_text` — a malformed exposition is
    a :class:`ReproError` here, not a silently skipped cross-check.
    """
    base = _normalise_url(base_url)
    try:
        with urllib.request.urlopen(
            base + "/metrics", timeout=timeout_s
        ) as response:
            doc = json.loads(response.read())
        with urllib.request.urlopen(
            base + "/metrics?format=prometheus", timeout=timeout_s
        ) as response:
            text = response.read().decode("utf-8")
    except (OSError, urllib.error.URLError, ValueError) as exc:
        raise ReproError(f"cannot scrape {base}/metrics: {exc}") from None
    try:
        samples = parse_prometheus_text(text)
    except ValueError as exc:
        raise ReproError(
            f"{base}/metrics?format=prometheus is not valid Prometheus "
            f"exposition: {exc}"
        ) from None
    return doc, samples


class LoadClient:
    """Drives a workload at a server and records per-request telemetry."""

    def __init__(
        self,
        base_url: str,
        corpus: Corpus,
        workload: Workload,
        timeout_s: float = 120.0,
        hists: Optional[HistogramSet] = None,
    ):
        if len(corpus) != workload.corpus_size:
            raise ReproError(
                f"workload was built for a corpus of "
                f"{workload.corpus_size}, got {len(corpus)} entries"
            )
        self.base_url = _normalise_url(base_url)
        self.corpus = corpus
        self.workload = workload
        self.timeout_s = float(timeout_s)
        self.hists = hists if hists is not None else HistogramSet()
        self._run_nonce = uuid.uuid4().hex[:8]
        self._lock = threading.Lock()
        self._records: List[RequestRecord] = []
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def _trace_id(self, index: int) -> str:
        return f"loadgen-{self._run_nonce}-{index:06d}"

    def _send_one(self, spec: RequestSpec, run_start: float) -> RequestRecord:
        entry = self.corpus[spec.entry_index]
        body = json.dumps(
            {
                "netlist": entry.netlist,
                "algorithm": spec.algorithm,
                "seed": spec.seed,
            }
        ).encode("utf-8")
        trace_id = self._trace_id(spec.index)
        request = urllib.request.Request(
            self.base_url + "/partition",
            data=body,
            headers={
                "Content-Type": "application/json",
                "X-Trace-Id": trace_id,
            },
        )
        record = RequestRecord(
            index=spec.index,
            algorithm=spec.algorithm,
            entry=entry.name,
            kind=entry.kind,
            outcome="transport",
            latency_s=0.0,
            trace_id=trace_id,
            sent_at_s=time.perf_counter() - run_start,
        )
        start = time.perf_counter()
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                payload = json.loads(response.read())
            record.status = 200
            record.outcome = "ok"
            record.source = str(payload.get("source", ""))
            cached = payload.get("cached")
            record.cached = bool(cached) if cached is not None else None
        except urllib.error.HTTPError as exc:
            record.status = exc.code
            try:
                detail = json.loads(exc.read()).get("error", "")
            except (ValueError, OSError):
                detail = ""
            record.error = detail or f"HTTP {exc.code}"
            record.outcome = (
                "rejected" if exc.code in (429, 503) else "error"
            )
        except urllib.error.URLError as exc:
            reason = getattr(exc, "reason", exc)
            record.outcome = (
                "refused" if isinstance(reason, _NEVER_REACHED) else "transport"
            )
            record.error = f"{type(reason).__name__}: {reason}"
        except _NEVER_REACHED as exc:
            # Reset/closed with no response byte: the server never took
            # the request (e.g. it sat in the listen backlog when a
            # drain closed the socket).
            record.outcome = "refused"
            record.error = f"{type(exc).__name__}: {exc}"
        except (
            OSError, socket.timeout, ValueError, http.client.HTTPException
        ) as exc:
            record.outcome = "transport"
            record.error = f"{type(exc).__name__}: {exc}"
        record.latency_s = time.perf_counter() - start
        self.hists.observe(
            "loadgen.request.duration_seconds",
            record.latency_s,
            algorithm=record.algorithm,
            outcome=record.outcome,
        )
        if record.outcome == "ok" and record.source:
            self.hists.observe(
                "loadgen.serve.duration_seconds",
                record.latency_s,
                source=record.source,
            )
        with self._lock:
            self._records.append(record)
        return record

    # ------------------------------------------------------------------
    def run_closed(
        self, duration_s: float, concurrency: int
    ) -> LoadResult:
        """Closed loop: ``concurrency`` workers, back-to-back requests.

        Workers share one global schedule cursor, so the *sequence* of
        request specs is the workload's deterministic schedule even
        though which worker sends which request is timing-dependent.
        """
        if concurrency < 1:
            raise ReproError(
                f"concurrency must be >= 1, got {concurrency}"
            )
        if duration_s <= 0:
            raise ReproError(
                f"duration must be > 0 seconds, got {duration_s}"
            )
        self._stop.clear()
        cursor = iter(range(1 << 62))
        cursor_lock = threading.Lock()
        run_start = time.perf_counter()
        deadline = run_start + duration_s

        def worker() -> None:
            while not self._stop.is_set():
                if time.perf_counter() >= deadline:
                    return
                with cursor_lock:
                    index = next(cursor)
                record = self._send_one(
                    self.workload.spec(index), run_start
                )
                if record.outcome == "refused":
                    return  # listener is gone; stop offering load

        threads = [
            threading.Thread(target=worker, daemon=True, name=f"loadgen-{i}")
            for i in range(concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(duration_s + self.timeout_s + 30.0)
        elapsed = time.perf_counter() - run_start
        with self._lock:
            records = sorted(self._records, key=lambda r: r.index)
            self._records = []
        return LoadResult(
            records=records,
            hists=self.hists,
            elapsed_s=elapsed,
            model="closed",
            concurrency=concurrency,
        )

    def run_open(
        self,
        duration_s: float,
        rate: float,
        max_inflight: int = 64,
    ) -> LoadResult:
        """Open loop: requests launch at their scheduled Poisson arrival
        times whether or not earlier ones have finished (bounded by
        ``max_inflight`` worker threads; a send that cannot start by
        its slot is counted in ``behind_schedule``)."""
        schedule = self.workload.open_loop_schedule(duration_s, rate)
        self._stop.clear()
        behind = [0]
        cursor = [0]
        cursor_lock = threading.Lock()
        run_start = time.perf_counter()

        def worker() -> None:
            while not self._stop.is_set():
                with cursor_lock:
                    position = cursor[0]
                    if position >= len(schedule):
                        return
                    cursor[0] = position + 1
                spec = schedule[position]
                assert spec.arrival_s is not None
                slot = run_start + spec.arrival_s
                delay = slot - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                elif delay < -0.05:
                    with cursor_lock:
                        behind[0] += 1
                record = self._send_one(spec, run_start)
                if record.outcome == "refused":
                    return

        workers = min(max_inflight, max(1, len(schedule)))
        threads = [
            threading.Thread(target=worker, daemon=True, name=f"loadgen-{i}")
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(duration_s + self.timeout_s + 30.0)
        elapsed = time.perf_counter() - run_start
        with self._lock:
            records = sorted(self._records, key=lambda r: r.index)
            self._records = []
        return LoadResult(
            records=records,
            hists=self.hists,
            elapsed_s=elapsed,
            model="open",
            rate=rate,
            behind_schedule=behind[0],
        )

    def stop(self) -> None:
        """Ask workers to stop after their current request."""
        self._stop.set()
