"""``repro-loadgen`` — drive a workload at a server and gate on SLOs.

Example (the gated serving benchmark, against a locally running
``repro-serve``)::

    repro-loadgen --duration 10 --concurrency 8 \\
        --mix igmatch=0.5,fm=0.3,eig1=0.2 --zipf 1.1 \\
        --slo p99=2.0,error_rate=0.01

Exit codes: 0 — run completed, every cross-check passed and no SLO
objective hard-failed; 1 — an SLO objective failed or the client/server
cross-check found unaccounted requests; 2 — usage error or the server
could not be reached at all.

Writes ``BENCH_serving.json`` (schema-validated before writing, see
:mod:`repro.loadgen.report`), prints the markdown verdict summary, and
optionally renders the self-contained HTML report (``--html``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..errors import ReproError
from ..obs import render_serving_html, render_serving_markdown
from .scenario import DEFAULT_MIX, run_serving_scenario
from .slo import parse_slo

__all__ = ["main"]

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_USAGE = 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Workload-model load generation against repro-serve: "
        "deterministic schedules, SLO verdicts, and a client/server "
        "metrics cross-check.",
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8377",
        help="base URL of the server under test "
        "(default http://127.0.0.1:8377)",
    )
    parser.add_argument(
        "--self-serve", action="store_true",
        help="ignore --url and boot a private in-process server on an "
        "ephemeral port for the duration of the run",
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, metavar="SECONDS",
        help="how long to offer load (default 10)",
    )
    parser.add_argument(
        "--model", choices=("closed", "open"), default="closed",
        help="closed = fixed-concurrency loop, open = Poisson arrivals "
        "(default closed)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=8, metavar="N",
        help="closed-loop worker count (default 8)",
    )
    parser.add_argument(
        "--rate", type=float, default=10.0, metavar="RPS",
        help="open-loop Poisson arrival rate per second (default 10)",
    )
    parser.add_argument(
        "--mix", default=DEFAULT_MIX, metavar="ALG=W,...",
        help=f"algorithm traffic mix (default {DEFAULT_MIX})",
    )
    parser.add_argument(
        "--zipf", type=float, default=1.1, metavar="S",
        help="zipf exponent for corpus repetition (default 1.1; "
        "0 = uniform)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload/corpus schedule seed (default 0)",
    )
    parser.add_argument(
        "--slo", default=None, metavar="OBJ=TARGET,...",
        help="SLO objectives, e.g. p99=2.0,error_rate=0.01,rps=5 "
        "(p50/p95/p99 in seconds; no SLO asserted when omitted)",
    )
    parser.add_argument(
        "--distinct", type=int, default=3, metavar="N",
        help="distinct base netlists in the corpus (default 3)",
    )
    parser.add_argument(
        "--isomorphs", type=int, default=2, metavar="N",
        help="relabeled isomorphic duplicates in the corpus (default 2)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.15,
        help="corpus circuit size scale factor (default 0.15)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="per-request HTTP timeout (default 120)",
    )
    parser.add_argument(
        "--settle-timeout", type=float, default=10.0, metavar="SECONDS",
        help="how long to wait for server-side counts to settle before "
        "the cross-check (default 10)",
    )
    parser.add_argument(
        "--output", "-o", default="BENCH_serving.json", metavar="PATH",
        help="where to write the benchmark payload "
        "(default BENCH_serving.json; '-' = stdout only)",
    )
    parser.add_argument(
        "--html", default=None, metavar="PATH",
        help="also render the self-contained HTML report here",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress the markdown summary on stdout",
    )
    args = parser.parse_args(argv)

    try:
        slo = parse_slo(args.slo) if args.slo else None
    except ReproError as exc:
        print(f"repro-loadgen: {exc}", file=sys.stderr)
        return EXIT_USAGE

    try:
        payload, _result = run_serving_scenario(
            base_url=None if args.self_serve else args.url,
            duration_s=args.duration,
            model=args.model,
            concurrency=args.concurrency,
            rate=args.rate,
            mix=args.mix,
            zipf_s=args.zipf,
            seed=args.seed,
            slo=slo,
            distinct=args.distinct,
            isomorphs=args.isomorphs,
            scale=args.scale,
            timeout_s=args.timeout,
            settle_timeout_s=args.settle_timeout,
        )
    except ReproError as exc:
        print(f"repro-loadgen: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_serving_html(payload))
    if not args.quiet:
        print(render_serving_markdown(payload))
        if args.output and args.output != "-":
            print(f"\nwrote {args.output}")
        if args.html:
            print(f"wrote {args.html}")

    slo_failed = payload["slo"]["ok"] is False
    cross_failed = not payload["crosscheck"]["ok"]
    if slo_failed or cross_failed:
        return EXIT_FAILED
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
