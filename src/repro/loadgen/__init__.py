"""repro.loadgen — workload-model load generation for the serving layer.

The measurement harness that makes the serving stack's throughput
claims falsifiable.  A load run is built from four deterministic
pieces plus one honest clock:

* a **corpus** (:mod:`repro.loadgen.corpus`) of generated netlists —
  distinct base circuits plus *relabeled isomorphic duplicates* (same
  :func:`repro.service.canonical_fingerprint`, different exact
  fingerprint), so runs quantify how much a canonical-fingerprint
  cache tier would save;
* a **workload model** (:mod:`repro.loadgen.workload`) — closed-loop
  fixed-concurrency or open-loop Poisson arrivals — whose request
  schedule (algorithm mix, zipf-repeated corpus draws, arrival times)
  is a pure function of a seed via
  :func:`repro.parallel.spawn_seeds`;
* a threaded stdlib **HTTP client** (:mod:`repro.loadgen.client`)
  recording per-request latency/status/trace-id/cache-provenance into
  client-side :class:`repro.obs.HistogramSet` histograms;
* a declarative **SLO spec** (:mod:`repro.loadgen.slo`) evaluated
  with the noise-aware verdict thresholds from :mod:`repro.obs.diff`;
* a **server cross-check** and schema'd report
  (:mod:`repro.loadgen.report`): ``/metrics`` is scraped (and
  validated with :func:`repro.obs.parse_prometheus_text`) before and
  after the run, and the server-side histogram ``_count`` deltas and
  cache hit/miss counters must account for exactly the requests the
  client sent — 429 backpressure rejections accounted separately.

``repro-loadgen`` (:mod:`repro.loadgen.__main__`) drives a run end to
end and writes ``BENCH_serving.json`` plus markdown/HTML reports via
:mod:`repro.obs.render`.  See ``docs/loadtest.md``.
"""

from .client import LoadClient, LoadResult, RequestRecord, scrape_metrics
from .corpus import Corpus, CorpusEntry, build_corpus
from .report import (
    SERVING_SCHEMA,
    build_payload,
    crosscheck,
    validate_payload,
)
from .scenario import run_serving_scenario
from .slo import SLOSpec, evaluate_slo, parse_slo, slo_ok
from .workload import (
    ALGORITHM_ALIASES,
    RequestSpec,
    Workload,
    parse_mix,
    zipf_weights,
)

__all__ = [
    "ALGORITHM_ALIASES",
    "Corpus",
    "CorpusEntry",
    "LoadClient",
    "LoadResult",
    "RequestRecord",
    "RequestSpec",
    "SERVING_SCHEMA",
    "SLOSpec",
    "Workload",
    "build_corpus",
    "build_payload",
    "crosscheck",
    "evaluate_slo",
    "parse_mix",
    "parse_slo",
    "run_serving_scenario",
    "scrape_metrics",
    "slo_ok",
    "validate_payload",
    "zipf_weights",
]
