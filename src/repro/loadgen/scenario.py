"""End-to-end load scenario: scrape, drive, settle, cross-check.

:func:`run_serving_scenario` is the shared driver behind both the
``repro-loadgen`` CLI and ``python -m repro.bench --serving-scenario``:
it scrapes ``/metrics`` before the run, drives the workload
(closed-loop or open-loop), **settles** (the server observes its
request histogram and writes its access-log line *after* the response
bytes leave the socket, so the after-scrape polls until the server's
POST ``/partition`` count stops moving rather than trusting the first
read), scrapes again, cross-checks the deltas against the client's
records, evaluates the SLO, and returns the full schema'd payload
(already validated).

When no ``base_url`` is given the scenario boots a private in-process
server on an ephemeral port (memory-only cache, quiet access log) and
tears it down afterwards — that is what the bench gate uses, so it has
no external dependencies.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError
from ..service.cache import ResultCache
from ..service.engine import PartitionEngine
from ..service.http import create_server
from .client import LoadClient, LoadResult, scrape_metrics
from .corpus import Corpus, build_corpus
from .report import build_payload, crosscheck, hist_count, validate_payload
from .slo import SLOSpec
from .workload import Workload, parse_mix

__all__ = ["run_serving_scenario", "settle_metrics"]

DEFAULT_MIX = "igmatch=0.5,fm=0.3,eig1=0.2"


def settle_metrics(
    base_url: str,
    expected_responses: int,
    timeout_s: float = 10.0,
    poll_s: float = 0.05,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Scrape ``/metrics`` until the POST ``/partition`` count settles.

    Returns ``(json_doc, prometheus_samples)`` of the final scrape.
    Settled means the count reached ``expected_responses`` *and* two
    consecutive scrapes agree (the server records its histogram
    observation and access-log entry after the response is on the wire,
    so an immediate scrape can under-count).  Times out to the last
    scrape rather than raising — the cross-check will then report the
    mismatch with real numbers instead of this helper guessing.
    """
    deadline = time.monotonic() + timeout_s
    doc, samples = scrape_metrics(base_url)
    last = hist_count(
        doc,
        "http.request.duration_seconds",
        method="POST",
        route="/partition",
    )
    while time.monotonic() < deadline:
        time.sleep(poll_s)
        doc, samples = scrape_metrics(base_url)
        now = hist_count(
            doc,
            "http.request.duration_seconds",
            method="POST",
            route="/partition",
        )
        if now == last and (now or 0) >= expected_responses:
            break
        last = now
    return doc, samples


class _LocalServer:
    """A private in-process server for self-contained scenarios."""

    def __init__(self, ready_queue_bound: int = 64):
        self.engine = PartitionEngine(
            cache=ResultCache(use_disk=False)
        )
        self.server = create_server(
            engine=self.engine,
            port=0,
            quiet=True,
            ready_queue_bound=ready_queue_bound,
        )
        host, port = self.server.server_address[:2]
        self.base_url = f"http://{host}:{port}"
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name="loadgen-scenario-server",
        )

    def __enter__(self) -> "_LocalServer":
        self._thread.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(timeout=10.0)


def run_serving_scenario(
    base_url: Optional[str] = None,
    duration_s: float = 3.0,
    model: str = "closed",
    concurrency: int = 4,
    rate: float = 10.0,
    mix: str = DEFAULT_MIX,
    zipf_s: float = 1.1,
    seed: int = 0,
    slo: Optional[SLOSpec] = None,
    corpus: Optional[Corpus] = None,
    distinct: int = 3,
    isomorphs: int = 2,
    scale: float = 0.15,
    timeout_s: float = 120.0,
    settle_timeout_s: float = 10.0,
    extra: Optional[Dict[str, Any]] = None,
) -> Tuple[Dict[str, Any], LoadResult]:
    """One full load run; returns ``(payload, result)``.

    The payload is schema-validated before it is returned — a scenario
    that produced a malformed report raises instead of writing it.
    """
    if model not in ("closed", "open"):
        raise ReproError(
            f"workload model must be 'closed' or 'open', got {model!r}"
        )
    if corpus is None:
        corpus = build_corpus(
            distinct=distinct,
            isomorphs=isomorphs,
            seed=seed,
            scale=scale,
        )
    workload = Workload(
        mix=parse_mix(mix),
        corpus_size=len(corpus),
        zipf_s=zipf_s,
        seed=seed,
    )

    local: Optional[_LocalServer] = None
    if base_url is None:
        local = _LocalServer()
        base_url = local.base_url
    try:
        if local is not None:
            local.__enter__()
        client = LoadClient(
            base_url, corpus, workload, timeout_s=timeout_s
        )
        before_doc, before_prom = scrape_metrics(base_url)
        if model == "closed":
            result = client.run_closed(duration_s, concurrency)
        else:
            result = client.run_open(duration_s, rate)
        after_doc, after_prom = settle_metrics(
            base_url, result.responses, timeout_s=settle_timeout_s
        )
    finally:
        if local is not None:
            local.__exit__()
    result.metrics_before = before_doc
    result.metrics_after = after_doc
    result.prom_before = before_prom
    result.prom_after = after_prom

    checks = crosscheck(before_doc, after_doc, result)
    payload = build_payload(
        result, workload, corpus, slo, checks, extra=extra
    )
    validate_payload(payload)
    return payload, result
