"""Declarative SLOs with noise-aware verdicts.

An :class:`SLOSpec` is a set of service-level objectives over one load
run: latency quantile ceilings (``p50``/``p95``/``p99`` ≤ seconds), an
error-rate ceiling, and a throughput floor.  :func:`parse_slo` reads
the CLI form (``"p99=2.0,error_rate=0.01,rps=5"``);
:func:`evaluate_slo` turns observed numbers into per-objective
verdicts.

Verdicts reuse the wall-clock noise model from
:class:`repro.obs.diff.DiffThresholds` instead of a naive
``observed <= target`` comparison: an objective that is breached by
less than the noise band (2 % over a 2 s p99 ceiling, say) gets
``pass-within-noise`` rather than a hard fail, because a load test
rerun on the same machine jitters by more than that.  A breach beyond
the band is a hard ``fail``; error-rate ceilings are exact (dropped
requests are not scheduler jitter).  ``rejected`` and ``refused``
requests are flow control, not errors — they are excluded from the
error rate (the ISSUE's contract for 429 backpressure).

Verdict values: ``"pass"``, ``"pass-within-noise"``, ``"fail"``,
``"skipped"`` (objective had no observable data, e.g. a quantile with
zero ok requests).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from ..obs.diff import FASTER, SLOWER, DiffThresholds

__all__ = ["SLOSpec", "evaluate_slo", "parse_slo", "slo_ok"]

PASS = "pass"
PASS_WITHIN_NOISE = "pass-within-noise"
FAIL = "fail"
SKIPPED = "skipped"

#: Quantile objectives: field name -> quantile fraction.
_QUANTILE_FIELDS = {"p50": 0.50, "p95": 0.95, "p99": 0.99}


@dataclass(frozen=True)
class SLOSpec:
    """Targets; ``None`` means the objective is not asserted.

    Quantile fields are ceilings in seconds, ``error_rate`` is a
    ceiling as a fraction of non-rejected requests, ``rps`` is a
    throughput floor in completed (ok) requests per second.
    """

    p50: Optional[float] = None
    p95: Optional[float] = None
    p99: Optional[float] = None
    error_rate: Optional[float] = None
    rps: Optional[float] = None
    thresholds: DiffThresholds = field(default=DiffThresholds())

    def objectives(self) -> Dict[str, float]:
        """The asserted objectives as a flat name -> target mapping."""
        out: Dict[str, float] = {}
        for f in fields(self):
            if f.name == "thresholds":
                continue
            value = getattr(self, f.name)
            if value is not None:
                out[f.name] = float(value)
        return out

    def describe(self) -> Dict[str, Any]:
        """JSON-safe record for ``BENCH_serving.json``."""
        doc: Dict[str, Any] = dict(self.objectives())
        doc["noise"] = {
            "rel_tol": self.thresholds.rel_tol,
            "abs_floor_s": self.thresholds.abs_floor_s,
        }
        return doc


def parse_slo(text: str, thresholds: Optional[DiffThresholds] = None) -> SLOSpec:
    """Parse ``"p99=2.0,error_rate=0.01"`` into an :class:`SLOSpec`.

    Unknown objective names, repeats, and non-numeric or negative
    targets are :class:`ReproError`\\ s.
    """
    if not text or not text.strip():
        raise ReproError("empty SLO spec")
    known = set(_QUANTILE_FIELDS) | {"error_rate", "rps"}
    values: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, eq, raw = part.partition("=")
        name = name.strip().lower()
        if name not in known:
            raise ReproError(
                f"unknown SLO objective {name!r} "
                f"(known: {', '.join(sorted(known))})"
            )
        if name in values:
            raise ReproError(f"SLO objective {name!r} repeated")
        if not eq:
            raise ReproError(f"SLO objective {name!r} needs '=<target>'")
        try:
            target = float(raw)
        except ValueError:
            raise ReproError(
                f"bad target {raw!r} for SLO objective {name!r}"
            ) from None
        if target < 0:
            raise ReproError(
                f"SLO target for {name!r} must be >= 0, got {target}"
            )
        values[name] = target
    if not values:
        raise ReproError("SLO spec asserts no objectives")
    if thresholds is not None:
        values["thresholds"] = thresholds  # type: ignore[assignment]
    return SLOSpec(**values)  # type: ignore[arg-type]


def _ceiling_verdict(
    target: float, observed: float, thresholds: DiffThresholds
) -> str:
    """Verdict for an *upper bound* objective (latency ceilings)."""
    if observed <= target:
        return PASS
    # Breached — but by more than the noise band?  verdict() says
    # SLOWER only when observed exceeds target beyond both tolerances.
    if thresholds.verdict(target, observed) == SLOWER:
        return FAIL
    return PASS_WITHIN_NOISE


def _floor_verdict(
    target: float, observed: float, thresholds: DiffThresholds
) -> str:
    """Verdict for a *lower bound* objective (throughput floors)."""
    if observed >= target:
        return PASS
    if thresholds.verdict(target, observed) == FASTER:
        return FAIL
    return PASS_WITHIN_NOISE


def evaluate_slo(
    spec: SLOSpec,
    quantiles: Dict[str, Optional[float]],
    error_rate: Optional[float],
    rps: Optional[float],
) -> List[Dict[str, Any]]:
    """Per-objective verdict rows for one run.

    ``quantiles`` maps ``"p50"``/``"p95"``/``"p99"`` to observed
    latency seconds (``None`` when unobservable); ``error_rate`` and
    ``rps`` likewise.  Objectives absent from ``spec`` produce no row.
    """
    rows: List[Dict[str, Any]] = []
    thresholds = spec.thresholds

    def row(name: str, target: float, observed: Optional[float], verdict: str) -> None:
        rows.append(
            {
                "objective": name,
                "target": target,
                "observed": observed,
                "verdict": verdict,
            }
        )

    for name in _QUANTILE_FIELDS:
        target = getattr(spec, name)
        if target is None:
            continue
        observed = quantiles.get(name)
        if observed is None:
            row(name, target, None, SKIPPED)
        else:
            row(name, target, observed, _ceiling_verdict(target, observed, thresholds))

    if spec.error_rate is not None:
        if error_rate is None:
            row("error_rate", spec.error_rate, None, SKIPPED)
        else:
            # Exact: a lost request is not timing noise.  The epsilon
            # only absorbs float division artifacts.
            verdict = PASS if error_rate <= spec.error_rate + 1e-12 else FAIL
            row("error_rate", spec.error_rate, error_rate, verdict)

    if spec.rps is not None:
        if rps is None:
            row("rps", spec.rps, None, SKIPPED)
        else:
            row("rps", spec.rps, rps, _floor_verdict(spec.rps, rps, thresholds))

    return rows


def slo_ok(verdicts: List[Dict[str, Any]]) -> bool:
    """True when no objective hard-failed.

    ``pass-within-noise`` and ``skipped`` do not fail the gate — but
    the report renders them distinctly so a human sees the near-miss.
    """
    return all(v["verdict"] != FAIL for v in verdicts)
