"""Deterministic workload models: what to send, and when.

A :class:`Workload` turns ``(seed, mix, corpus size, zipf exponent)``
into an infinite deterministic sequence of :class:`RequestSpec`\\ s.
Request *i* draws its algorithm and corpus entry from its own RNG
seeded by :func:`repro.parallel.spawn_seeds` — child seed *i* depends
only on ``(seed, i)``, so the schedule is identical across runs,
platforms, and thread interleavings, and extending a run never
perturbs the prefix already sent.  Two delivery models share the
schedule:

* **closed-loop** — ``concurrency`` workers each issue the next
  request as soon as their previous one completes; offered load tracks
  service capacity (classic fixed-concurrency benchmarking);
* **open-loop** — requests arrive at Poisson times (exponential
  interarrivals at ``rate`` per second, drawn from the same per-request
  seeds), regardless of how fast the server answers — the model that
  actually reveals queueing collapse under overload.

Corpus draws are **zipf-repeated**: entry ranks are weighted
``1/(rank+1)**s``, so a handful of hot netlists dominate (cache-hit
traffic) while the tail stays cold — the shape real multi-user serving
traffic takes.
"""

from __future__ import annotations

import math
import random
import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ReproError
from ..parallel import spawn_seeds
from ..service.engine import ALGORITHMS

__all__ = [
    "ALGORITHM_ALIASES",
    "RequestSpec",
    "Workload",
    "parse_mix",
    "zipf_weights",
]

#: CLI-friendly spellings of the served algorithm names (the canonical
#: names contain dashes, which read poorly inside ``a=w,b=w`` mixes).
ALGORITHM_ALIASES: Dict[str, str] = {
    **{name: name for name in ALGORITHMS},
    "igmatch": "ig-match",
    "igvote": "ig-vote",
    "ig_match": "ig-match",
    "ig_vote": "ig-vote",
}


def parse_mix(text: str) -> Dict[str, float]:
    """Parse ``"igmatch=0.5,fm=0.3,eig1=0.2"`` into normalised weights.

    Weights are normalised to sum to 1; they need not arrive that way.
    Unknown algorithms, repeated names, and non-positive totals are
    :class:`ReproError`\\ s — a typo'd mix must not silently skew a
    benchmark.
    """
    if not text or not text.strip():
        raise ReproError("empty algorithm mix")
    weights: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, eq, raw = part.partition("=")
        name = name.strip().lower()
        canonical = ALGORITHM_ALIASES.get(name)
        if canonical is None:
            raise ReproError(
                f"unknown algorithm {name!r} in mix "
                f"(known: {', '.join(sorted(set(ALGORITHM_ALIASES)))})"
            )
        if not eq:
            weight = 1.0
        else:
            try:
                weight = float(raw)
            except ValueError:
                raise ReproError(
                    f"bad weight {raw!r} for {name!r} in mix"
                ) from None
        if weight < 0 or not math.isfinite(weight):
            raise ReproError(
                f"weight for {name!r} must be finite and >= 0, "
                f"got {weight!r}"
            )
        if canonical in weights:
            raise ReproError(f"algorithm {canonical!r} repeated in mix")
        weights[canonical] = weight
    total = sum(weights.values())
    if total <= 0:
        raise ReproError("algorithm mix weights sum to zero")
    return {name: weight / total for name, weight in weights.items()}


def zipf_weights(count: int, s: float) -> List[float]:
    """Normalised zipf rank weights: ``w[r] ∝ 1/(r+1)**s``.

    ``s=0`` is uniform; larger ``s`` concentrates traffic on the first
    ranks.  ``count`` must be >= 1.
    """
    if count < 1:
        raise ReproError(f"need at least one rank, got {count}")
    if s < 0 or not math.isfinite(s):
        raise ReproError(f"zipf exponent must be finite and >= 0, got {s}")
    raw = [(rank + 1) ** -s for rank in range(count)]
    total = sum(raw)
    return [w / total for w in raw]


@dataclass(frozen=True)
class RequestSpec:
    """One scheduled request: what to ask for, and (open loop) when."""

    index: int
    algorithm: str
    entry_index: int
    seed: int  # the partitioner seed carried in the request body
    arrival_s: Optional[float] = None  # offset from run start (open loop)


class Workload:
    """A deterministic request schedule over a corpus.

    ``spec(i)`` is a pure function of ``(seed, i)`` (plus the frozen
    mix/zipf/corpus-size configuration): the request's algorithm and
    corpus entry are drawn from an RNG seeded with the *i*-th
    :func:`repro.parallel.spawn_seeds` child.  The partition ``seed``
    in the request body is fixed per workload (``request_seed``) —
    repeats of the same corpus entry must produce the same cache
    fingerprint, or a "repeated" workload would never hit the cache.
    """

    def __init__(
        self,
        mix: Dict[str, float],
        corpus_size: int,
        zipf_s: float = 1.1,
        seed: int = 0,
        request_seed: int = 0,
    ):
        if not mix:
            raise ReproError("workload needs a non-empty algorithm mix")
        unknown = sorted(set(mix) - set(ALGORITHMS))
        if unknown:
            raise ReproError(
                f"unknown algorithm(s) in mix: {', '.join(unknown)}"
            )
        if corpus_size < 1:
            raise ReproError("workload needs a non-empty corpus")
        self.mix = dict(mix)
        self.corpus_size = int(corpus_size)
        self.zipf_s = float(zipf_s)
        self.seed = int(seed)
        self.request_seed = int(request_seed)
        self._algorithms = sorted(self.mix)
        self._alg_cumulative = _cumulative(
            [self.mix[name] for name in self._algorithms]
        )
        self._entry_cumulative = _cumulative(
            zipf_weights(self.corpus_size, self.zipf_s)
        )
        self._seed_lock = threading.Lock()
        self._seeds: List[int] = []

    # ------------------------------------------------------------------
    def _seed_for(self, index: int) -> int:
        """The *i*-th spawned child seed, cached with geometric growth
        (``spawn_seeds`` is prefix-stable, so regrowing is consistent)."""
        with self._seed_lock:
            if index >= len(self._seeds):
                count = max(64, index + 1, 2 * len(self._seeds))
                self._seeds = spawn_seeds(self.seed, count)
            return self._seeds[index]

    def spec(self, index: int) -> RequestSpec:
        """The deterministic request spec for schedule position ``index``."""
        if index < 0:
            raise ReproError(f"request index must be >= 0, got {index}")
        rng = random.Random(self._seed_for(index))
        algorithm = self._algorithms[
            bisect_left(self._alg_cumulative, rng.random())
        ]
        entry = bisect_left(self._entry_cumulative, rng.random())
        return RequestSpec(
            index=index,
            algorithm=algorithm,
            entry_index=min(entry, self.corpus_size - 1),
            seed=self.request_seed,
        )

    def open_loop_schedule(
        self, duration_s: float, rate: float
    ) -> List[RequestSpec]:
        """Poisson arrivals over ``[0, duration_s)`` at ``rate``/second.

        Interarrival gap *i* is an exponential draw from request *i*'s
        own spawned seed, so the arrival times are as deterministic and
        prefix-stable as the rest of the schedule.
        """
        if rate <= 0 or not math.isfinite(rate):
            raise ReproError(f"rate must be finite and > 0, got {rate}")
        if duration_s <= 0:
            raise ReproError(
                f"duration must be > 0 seconds, got {duration_s}"
            )
        schedule: List[RequestSpec] = []
        clock = 0.0
        index = 0
        while True:
            rng = random.Random(self._seed_for(index))
            # Consume the same two draws spec() makes, so the gap draw
            # is independent of the algorithm/entry choice.
            algorithm = self._algorithms[
                bisect_left(self._alg_cumulative, rng.random())
            ]
            entry = min(
                bisect_left(self._entry_cumulative, rng.random()),
                self.corpus_size - 1,
            )
            clock += rng.expovariate(rate)
            if clock >= duration_s:
                return schedule
            schedule.append(
                RequestSpec(
                    index=index,
                    algorithm=algorithm,
                    entry_index=entry,
                    seed=self.request_seed,
                    arrival_s=clock,
                )
            )
            index += 1

    def describe(self) -> Dict[str, object]:
        """JSON-safe configuration record for ``BENCH_serving.json``."""
        return {
            "mix": {k: round(v, 9) for k, v in sorted(self.mix.items())},
            "corpus_size": self.corpus_size,
            "zipf_s": self.zipf_s,
            "seed": self.seed,
            "request_seed": self.request_seed,
        }


def _cumulative(weights: List[float]) -> List[float]:
    out: List[float] = []
    total = 0.0
    for w in weights:
        total += w
        out.append(total)
    out[-1] = 1.0  # guard the last bisect against float undershoot
    return out
