"""Zipf-ready corpora of generated netlists for load generation.

:func:`build_corpus` realises ``distinct`` base circuits from the
benchmark suite's synthetic specs (cycling through the smallest specs
first and bumping the generator seed each cycle, so every entry is a
genuinely different instance) plus ``isomorphs`` *relabeled isomorphic
duplicates* — module-permuted copies built with
:func:`repro.hypergraph.transform.relabel_modules`.  A duplicate has a
**different exact fingerprint** (the cache key partitioners answer
under, since results are label-sensitive) but the **same canonical
Weisfeiler–Leman fingerprint** as its base, which is exactly the
traffic shape that a canonical-fingerprint cache tier (ROADMAP item 2)
would turn from misses into warm hits.  Load reports count those
misses as the tier's measured opportunity.

Entries carry their serialised ``repro-hypergraph-v1`` JSON body (built
once, not per request) and both fingerprints; entry order is given a
deterministic seed-derived shuffle so zipf rank popularity mixes base
and isomorph entries rather than leaving all duplicates in the cold
tail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..bench.specs import BENCHMARKS
from ..bench.suite import build_circuit
from ..errors import ReproError
from ..hypergraph import Hypergraph, to_json
from ..hypergraph.transform import relabel_modules
from ..parallel import spawn_seeds
from ..service import canonical_fingerprint, exact_fingerprint

__all__ = ["Corpus", "CorpusEntry", "build_corpus"]


@dataclass(frozen=True)
class CorpusEntry:
    """One submittable netlist with its provenance and fingerprints."""

    name: str
    kind: str  # "base" | "isomorph"
    base: str  # name of the base entry (== name for bases)
    netlist: Dict[str, Any]  # repro-hypergraph-v1 JSON document
    exact: str
    canonical: str
    num_modules: int
    num_nets: int


class Corpus:
    """An ordered list of :class:`CorpusEntry` (order defines zipf rank)."""

    def __init__(self, entries: Sequence[CorpusEntry]):
        if not entries:
            raise ReproError("corpus must contain at least one entry")
        self.entries: List[CorpusEntry] = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index: int) -> CorpusEntry:
        return self.entries[index]

    @property
    def bases(self) -> List[CorpusEntry]:
        return [e for e in self.entries if e.kind == "base"]

    @property
    def isomorphs(self) -> List[CorpusEntry]:
        return [e for e in self.entries if e.kind == "isomorph"]

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary for ``BENCH_serving.json``."""
        return {
            "entries": len(self.entries),
            "bases": len(self.bases),
            "isomorphs": len(self.isomorphs),
            "names": [e.name for e in self.entries],
            "modules": sum(e.num_modules for e in self.entries),
            "nets": sum(e.num_nets for e in self.entries),
        }


def _shuffled_permutation(
    n: int, rng: random.Random
) -> List[int]:
    """A random permutation of ``range(n)`` that is never the identity
    (for ``n >= 2``), so a relabeled duplicate truly differs."""
    order = list(range(n))
    rng.shuffle(order)
    if order == list(range(n)) and n >= 2:
        order[0], order[1] = order[1], order[0]
    return order


def _build_base(
    spec_name: str, gen_seed: int, scale: float
) -> "tuple[Hypergraph, int]":
    """Generate one base circuit, hopping the seed past the rare
    ``(spec, seed, scale)`` combinations whose random generation fails
    connectivity repair.  The hop stride keeps retried seeds clear of
    the per-cycle seeds other entries use.  Deterministic: the same
    inputs always settle on the same seed."""
    last: Optional[ReproError] = None
    for attempt in range(8):
        candidate = gen_seed + attempt * 7919
        try:
            return build_circuit(
                spec_name, seed=candidate, scale=scale
            ), candidate
        except ReproError as exc:
            last = exc
    raise ReproError(
        f"cannot generate {spec_name!r} at scale {scale} "
        f"(8 seeds tried from {gen_seed}): {last}"
    )


def build_corpus(
    distinct: int = 4,
    isomorphs: int = 2,
    seed: int = 0,
    scale: float = 0.2,
    names: Optional[Sequence[str]] = None,
) -> Corpus:
    """Build a corpus of ``distinct`` bases + ``isomorphs`` duplicates.

    Bases cycle through the benchmark specs smallest-first (or the
    given ``names``), bumping the generator seed every full cycle so
    each entry is a distinct instance.  Isomorph *j* permutes base
    ``j % distinct`` with a seed spawned from ``(seed, j)`` —
    deterministic, and prefix-stable when the counts grow.
    """
    if distinct < 1:
        raise ReproError(f"need at least one distinct netlist, got {distinct}")
    if isomorphs < 0:
        raise ReproError(f"isomorphs must be >= 0, got {isomorphs}")
    if names is None:
        names = [
            spec.name
            for spec in sorted(BENCHMARKS, key=lambda s: s.num_modules)
        ]
    if not names:
        raise ReproError("no circuit names to build the corpus from")

    entries: List[CorpusEntry] = []
    base_hypergraphs: List[Hypergraph] = []
    for i in range(distinct):
        spec_name = names[i % len(names)]
        gen_seed = seed + (i // len(names))
        h, gen_seed = _build_base(spec_name, gen_seed, scale)
        name = f"{spec_name}@s{gen_seed}"
        base_hypergraphs.append(h)
        entries.append(
            CorpusEntry(
                name=name,
                kind="base",
                base=name,
                netlist=to_json(h),
                exact=exact_fingerprint(h),
                canonical=canonical_fingerprint(h),
                num_modules=h.num_modules,
                num_nets=h.num_nets,
            )
        )

    iso_seeds = spawn_seeds(seed, isomorphs + 1)
    for j in range(isomorphs):
        base_entry = entries[j % distinct]
        base_h = base_hypergraphs[j % distinct]
        rng = random.Random(iso_seeds[j])
        order = _shuffled_permutation(base_h.num_modules, rng)
        relabeled, _ = relabel_modules(base_h, order)
        entries.append(
            CorpusEntry(
                name=f"{base_entry.name}~iso{j}",
                kind="isomorph",
                base=base_entry.name,
                netlist=to_json(relabeled),
                exact=exact_fingerprint(relabeled),
                canonical=canonical_fingerprint(relabeled),
                num_modules=relabeled.num_modules,
                num_nets=relabeled.num_nets,
            )
        )

    # Mix duplicate entries into the zipf ranks instead of leaving them
    # all in the cold tail.  Deterministic for a given
    # (seed, distinct, isomorphs) configuration.
    random.Random(iso_seeds[-1]).shuffle(entries)
    return Corpus(entries)
