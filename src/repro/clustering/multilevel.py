"""Multilevel hybrid partitioner: coarsen, partition, uncoarsen, refine.

The "hybrid algorithm which uses clustering to condense the input before
applying the partitioning algorithm" from the paper's conclusions.  The
coarsest netlist is partitioned with any bipartitioner (IG-Match by
default); the partition is projected back through the hierarchy with a
round of ratio-cut shifting refinement at each level.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..obs import emit, incr, span
from .coarsen import coarsen
from ..partitioning import (
    IGMatchConfig,
    Partition,
    PartitionResult,
    RCutConfig,
    ig_match,
    rcut,
)

__all__ = ["MultilevelConfig", "multilevel_partition"]

Bipartitioner = Callable[[Hypergraph], PartitionResult]


@dataclass(frozen=True)
class MultilevelConfig:
    """Options for :func:`multilevel_partition`.

    ``target_modules`` is the coarsest size handed to the core
    partitioner.  ``refine_rounds`` shifting rounds polish each
    projection level (0 disables refinement).
    """

    target_modules: int = 200
    net_model: str = "clique"
    seed: int = 0
    refine_rounds: int = 3


def multilevel_partition(
    h: Hypergraph,
    config: MultilevelConfig = MultilevelConfig(),
    bipartitioner: Optional[Bipartitioner] = None,
) -> PartitionResult:
    """Partition ``h`` with the coarsen/partition/refine hybrid."""
    if h.num_modules < 2:
        raise PartitionError("multilevel needs at least 2 modules")
    start = time.perf_counter()
    if bipartitioner is None:
        bipartitioner = lambda g: ig_match(g, IGMatchConfig())  # noqa: E731

    with span(
        "multilevel", modules=h.num_modules, nets=h.num_nets
    ) as ml_span:
        with span("multilevel.coarsen", target=config.target_modules) as csp:
            levels = coarsen(
                h,
                config.target_modules,
                net_model=config.net_model,
                seed=config.seed,
            )
            coarsest = levels[-1].coarse if levels else h
            csp.set(levels=len(levels), coarsest=coarsest.num_modules)
            incr("multilevel.levels", len(levels))
            for depth, level in enumerate(levels):
                emit(
                    "multilevel.level",
                    depth=depth,
                    fine_modules=level.fine.num_modules,
                    coarse_modules=level.coarse.num_modules,
                    fine_nets=level.fine.num_nets,
                    coarse_nets=level.coarse.num_nets,
                )

        with span("multilevel.initial", modules=coarsest.num_modules):
            result = bipartitioner(coarsest)
        sides = list(result.partition.sides)

        # Project back up, refining at each level.
        for level in reversed(levels):
            fine_sides = [
                sides[level.assignment[v]]
                for v in range(level.fine.num_modules)
            ]
            if config.refine_rounds > 0:
                with span(
                    "multilevel.refine", modules=level.fine.num_modules
                ):
                    refined = rcut(
                        level.fine,
                        RCutConfig(
                            restarts=1,
                            max_rounds=config.refine_rounds,
                            seed=config.seed,
                        ),
                        initial_sides=fine_sides,
                    )
                    fine_sides = list(refined.partition.sides)
            sides = fine_sides
        ml_span.set(levels=len(levels))

    elapsed = time.perf_counter() - start
    return PartitionResult(
        algorithm="Multilevel",
        partition=Partition(h, sides),
        elapsed_seconds=elapsed,
        details={
            "levels": len(levels),
            "coarsest_modules": coarsest.num_modules,
            "core_algorithm": result.algorithm,
            "target_modules": config.target_modules,
        },
    )
