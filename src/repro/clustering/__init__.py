"""Clustering condensation and the multilevel hybrid partitioner.

Implements the coarsening-based hybrid the paper's conclusion proposes:
heavy-edge matching contraction, a coarsening hierarchy, and the
coarsen → partition → project → refine pipeline.
"""

from .coarsen import CoarseningLevel, coarsen, heavy_edge_matching
from .multilevel import MultilevelConfig, multilevel_partition

__all__ = [
    "CoarseningLevel",
    "MultilevelConfig",
    "coarsen",
    "heavy_edge_matching",
    "multilevel_partition",
]
