"""Netlist coarsening by heavy-edge matching.

The clustering-condensation idea the paper cites from Bui et al. and
Lengauer as a promising hybrid: contract strongly connected module pairs
to shrink the netlist before running the (more expensive) partitioner.
We use the standard heavy-edge matching heuristic on the clique-model
graph: visit modules in random order and greedily pair each with its
unmatched neighbour of maximum connection weight.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..errors import ReproError
from ..hypergraph import Hypergraph, merge_modules
from ..netmodels import get_model

__all__ = ["CoarseningLevel", "heavy_edge_matching", "coarsen"]


@dataclass(frozen=True)
class CoarseningLevel:
    """One level of a coarsening hierarchy.

    ``assignment[fine_module] = coarse_module`` maps this level's input
    modules onto the coarse hypergraph's modules.
    """

    fine: Hypergraph
    coarse: Hypergraph
    assignment: List[int]


def heavy_edge_matching(
    h: Hypergraph, net_model: str = "clique", seed: int = 0
) -> List[List[int]]:
    """Cluster modules into pairs (or singletons) by heavy-edge matching.

    Returns a list of clusters covering every module exactly once.
    """
    g = get_model(net_model).to_graph(h)
    rng = random.Random(seed)
    order = list(range(h.num_modules))
    rng.shuffle(order)

    matched = [False] * h.num_modules
    clusters: List[List[int]] = []
    for v in order:
        if matched[v]:
            continue
        best_u = None
        best_w = 0.0
        for u, w in g.neighbor_weights(v):
            if not matched[u] and w > best_w:
                best_w = w
                best_u = u
        matched[v] = True
        if best_u is None:
            clusters.append([v])
        else:
            matched[best_u] = True
            clusters.append([v, best_u])
    return clusters


def coarsen(
    h: Hypergraph,
    target_modules: int,
    net_model: str = "clique",
    seed: int = 0,
    max_levels: int = 25,
) -> List[CoarseningLevel]:
    """Build a coarsening hierarchy down to roughly ``target_modules``.

    Stops early when a level shrinks the netlist by less than 10%
    (heavy-edge matching has saturated).  Returns levels ordered from
    finest to coarsest; an empty list means ``h`` is already at or below
    the target.
    """
    if target_modules < 2:
        raise ReproError(
            f"target_modules must be >= 2, got {target_modules}"
        )
    levels: List[CoarseningLevel] = []
    current = h
    for level in range(max_levels):
        if current.num_modules <= target_modules:
            break
        clusters = heavy_edge_matching(
            current, net_model=net_model, seed=seed + level
        )
        coarse, assignment = merge_modules(current, clusters)
        if coarse.num_modules > 0.9 * current.num_modules:
            break
        levels.append(
            CoarseningLevel(
                fine=current, coarse=coarse, assignment=assignment
            )
        )
        current = coarse
    return levels
