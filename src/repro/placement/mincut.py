"""Min-cut placement by recursive bisection with terminal propagation.

The paper's opening argument is that layout proceeds by hierarchical
decomposition and that partitioning quality constrains everything
downstream.
This module closes that loop with the classic consumer of a
bipartitioner: Dunlop–Kernighan-style **min-cut placement** — recursively
slice the chip region, partition the modules of each region across the
slice, and let nets anchored outside a region bias where its modules go
(**terminal propagation**).

The result is a coarse legalised placement on a ``2^levels`` grid,
scored by half-perimeter wirelength (HPWL).  Together with Hall's
analytical placement (:mod:`repro.spectral.hall`) it gives the library
both classical placement families.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PartitionError
from ..hypergraph import Hypergraph, induced_subhypergraph
from ..partitioning import FMEngine

__all__ = ["MincutPlacement", "hpwl", "mincut_placement"]


def hpwl(h: Hypergraph, positions: Sequence[Tuple[float, float]]) -> float:
    """Half-perimeter wirelength of a placement.

    Sum over nets of the half perimeter of the bounding box of the
    net's pin positions — the standard placement cost estimate.
    """
    if len(positions) != h.num_modules:
        raise PartitionError(
            f"{len(positions)} positions for {h.num_modules} modules"
        )
    total = 0.0
    for _, pins in h.iter_nets():
        if len(pins) < 2:
            continue
        xs = [positions[p][0] for p in pins]
        ys = [positions[p][1] for p in pins]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


@dataclass
class MincutPlacement:
    """A coarse grid placement.

    ``positions[v]`` is module v's (x, y) in the unit square — the
    centre of its grid cell; ``cell_of[v]`` its integer grid cell
    ``(col, row)`` on the ``grid x grid`` lattice.
    """

    hypergraph: Hypergraph
    positions: List[Tuple[float, float]]
    cell_of: List[Tuple[int, int]]
    grid: int
    elapsed_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def wirelength(self) -> float:
        return hpwl(self.hypergraph, self.positions)

    def occupancy(self) -> Dict[Tuple[int, int], int]:
        """Module count per grid cell."""
        out: Dict[Tuple[int, int], int] = {}
        for cell in self.cell_of:
            out[cell] = out.get(cell, 0) + 1
        return out


def _terminal_anchor(
    h: Hypergraph,
    module: int,
    inside: set,
    positions: Sequence[Tuple[float, float]],
    axis: int,
) -> Optional[float]:
    """Mean coordinate (along ``axis``) of external pins on this
    module's nets — the propagated-terminal pull, or None if all its
    nets are internal."""
    total = 0.0
    count = 0
    for net in h.nets_of(module):
        for pin in h.pins(net):
            if pin not in inside:
                total += positions[pin][axis]
                count += 1
    if count == 0:
        return None
    return total / count


def _partition_region(
    h: Hypergraph,
    members: List[int],
    positions: List[Tuple[float, float]],
    axis: int,
    fm_passes: int,
    seed: int,
) -> Tuple[List[int], List[int]]:
    """Split a region's modules into (low, high) halves along ``axis``.

    Terminal propagation seeds the split: members are ordered by the
    anchor coordinate of their external connections (internal-only
    modules fall in the middle), the balanced prefix forms the initial
    low side, and bisection FM refines the cut on the region's induced
    sub-netlist.
    """
    inside = set(members)
    keyed = []
    for index, module in enumerate(members):
        anchor = _terminal_anchor(h, module, inside, positions, axis)
        keyed.append((0.5 if anchor is None else anchor, index, module))
    keyed.sort()
    ordered = [module for _, _, module in keyed]
    half = len(ordered) // 2

    sub, module_map, _ = induced_subhypergraph(h, members)
    local_index = {module: i for i, module in enumerate(module_map)}
    sides = [1] * sub.num_modules
    for module in ordered[:half]:
        sides[local_index[module]] = 0

    if sub.num_nets >= 1 and sub.num_modules >= 4:
        engine = FMEngine(sub, sides)
        slack = 1  # allow one-module imbalance, like a bisection

        def feasible(cell: int) -> bool:
            from_side = engine.sides[cell]
            if engine.side_count[from_side] <= 1:
                return False
            new_diff = abs(
                (engine.side_count[0]
                 + (1 if from_side == 1 else -1)) * 2
                - sub.num_modules
            )
            return new_diff <= slack

        for _ in range(fm_passes):
            before = engine.cut
            moves, _ = engine.run_pass(feasible, objective="cut")
            if engine.cut >= before or moves == 0:
                break
        sides = engine.sides

    low = [module_map[i] for i, s in enumerate(sides) if s == 0]
    high = [module_map[i] for i, s in enumerate(sides) if s == 1]
    if not low or not high:
        # Degenerate sub-netlist: fall back to the ordered halves.
        low, high = ordered[:half], ordered[half:]
    return low, high


def mincut_placement(
    h: Hypergraph,
    levels: int = 3,
    fm_passes: int = 4,
    seed: int = 0,
) -> MincutPlacement:
    """Place ``h`` on a ``2^levels`` grid by recursive min-cut slicing.

    Slicing alternates vertical/horizontal per level.  Modules start at
    the chip centre; after each level every region's modules move to
    their sub-region centre, so terminal propagation at the next level
    sees progressively refined anchor positions.
    """
    if h.num_modules < 2:
        raise PartitionError("placement needs at least 2 modules")
    if levels < 1:
        raise PartitionError(f"levels must be >= 1, got {levels}")
    grid = 1 << levels
    start = time.perf_counter()

    positions: List[Tuple[float, float]] = [
        (0.5, 0.5) for _ in range(h.num_modules)
    ]
    # Regions as (x0, y0, size, members); size halves along the split
    # axis each level (alternating), so regions stay square every two
    # levels.
    regions: List[Tuple[float, float, float, float, List[int]]] = [
        (0.0, 0.0, 1.0, 1.0, list(range(h.num_modules)))
    ]
    for level in range(2 * levels):
        axis = level % 2  # 0: split in x, 1: split in y
        next_regions = []
        for x0, y0, width, height, members in regions:
            if len(members) <= 1:
                next_regions.append((x0, y0, width, height, members))
                continue
            low, high = _partition_region(
                h, members, positions, axis, fm_passes, seed
            )
            if axis == 0:
                first = (x0, y0, width / 2, height, low)
                second = (x0 + width / 2, y0, width / 2, height, high)
            else:
                first = (x0, y0, width, height / 2, low)
                second = (x0, y0 + height / 2, width, height / 2, high)
            next_regions.extend([first, second])
        regions = next_regions
        for x0, y0, width, height, members in regions:
            centre = (x0 + width / 2, y0 + height / 2)
            for module in members:
                positions[module] = centre

    cell_of = [
        (min(grid - 1, int(x * grid)), min(grid - 1, int(y * grid)))
        for x, y in positions
    ]
    elapsed = time.perf_counter() - start
    placement = MincutPlacement(
        hypergraph=h,
        positions=positions,
        cell_of=cell_of,
        grid=grid,
        elapsed_seconds=elapsed,
        details={"levels": levels, "fm_passes": fm_passes},
    )
    placement.details["hpwl"] = placement.wirelength
    return placement
