"""Placement consumers of the partitioning engine.

Two classical families: Hall's analytical quadratic placement lives in
:mod:`repro.spectral.hall`; this package adds min-cut placement by
recursive bisection with terminal propagation, scored by HPWL.
"""

from .mincut import MincutPlacement, hpwl, mincut_placement

__all__ = ["MincutPlacement", "hpwl", "mincut_placement"]
