"""Net models: hypergraph-to-graph conversions.

Importing this package registers all built-in models: ``clique`` (the
standard ``1/(k-1)``-weighted clique), ``unit-clique``, ``star``, ``path``
and ``cycle``.  Use :func:`get_model` / :func:`available_models` for
dynamic lookup.
"""

from .base import NetModel, available_models, get_model, register_model
from .clique import StandardCliqueModel, UnitCliqueModel
from .path import CycleModel, PathModel
from .star import StarModel

__all__ = [
    "CycleModel",
    "NetModel",
    "PathModel",
    "StandardCliqueModel",
    "StarModel",
    "UnitCliqueModel",
    "available_models",
    "get_model",
    "register_model",
]
