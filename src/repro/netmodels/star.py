"""Star net model.

Each k-pin net is expanded as a star centred on its first pin: ``k - 1``
edges of weight 1.  A real placement tool would use a synthetic centre
point or the net's centroid; for partitioning, anchoring on a member pin
keeps the vertex set unchanged while still giving O(k) edges per net.  The
paper notes centroid-based stars are "inherently dynamic" under placement;
the member-anchored variant here is static, but inherits the model's
nondeterministic asymmetry — which pin is the centre changes the graph.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from .base import NetModel, register_model

__all__ = ["StarModel"]


@register_model
class StarModel(NetModel):
    """Member-anchored star: net pins hang off the lowest-indexed pin."""

    name = "star"

    def expand_net(
        self, pins: Tuple[int, ...]
    ) -> Iterable[Tuple[int, int, float]]:
        center = pins[0]
        for leaf in pins[1:]:
            yield (center, leaf, 1.0)
