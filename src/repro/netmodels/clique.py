"""Clique net models.

The "standard" weighted clique model (Lengauer 1990, adopted by the paper)
expands a k-pin net into all ``C(k, 2)`` pairs, each weighted ``1/(k-1)``,
so that the total weight incident to each pin from this net is 1.  The
paper criticises the model's density: a 100-pin clock net alone generates
4950 edges (9900 adjacency nonzeros), defeating sparse eigensolvers.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Tuple

from .base import NetModel, register_model

__all__ = ["StandardCliqueModel", "UnitCliqueModel"]


@register_model
class StandardCliqueModel(NetModel):
    """Weighted clique: each pair of a k-pin net gets weight ``1/(k-1)``."""

    name = "clique"

    def expand_net(
        self, pins: Tuple[int, ...]
    ) -> Iterable[Tuple[int, int, float]]:
        weight = 1.0 / (len(pins) - 1)
        for u, v in combinations(pins, 2):
            yield (u, v, weight)


@register_model
class UnitCliqueModel(NetModel):
    """Unweighted clique: every pair gets weight 1.

    Included as the naive strawman; it over-weights large nets so badly
    that a single wide net dominates the Laplacian spectrum.
    """

    name = "unit-clique"

    def expand_net(
        self, pins: Tuple[int, ...]
    ) -> Iterable[Tuple[int, int, float]]:
        for u, v in combinations(pins, 2):
            yield (u, v, 1.0)
