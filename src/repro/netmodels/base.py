"""Net model framework.

A *net model* converts the netlist hypergraph into a weighted module graph
by expanding each k-pin net into a small graph over its pins (Section 2.1
of the paper).  Models register themselves by name so experiments can sweep
over them (ablation A3 in DESIGN.md).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Tuple, Type

from ..errors import ReproError
from ..graph import Graph
from ..hypergraph import Hypergraph

__all__ = ["NetModel", "register_model", "get_model", "available_models"]

_REGISTRY: Dict[str, "NetModel"] = {}


class NetModel(ABC):
    """Converts hypergraphs to weighted module graphs.

    Subclasses implement :meth:`expand_net`, emitting the weighted edges a
    single net contributes.  The shared :meth:`to_graph` accumulates
    contributions from all nets, so overlapping nets reinforce shared
    adjacencies — the standard semantics for every classical model.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    @abstractmethod
    def expand_net(
        self, pins: Tuple[int, ...]
    ) -> Iterable[Tuple[int, int, float]]:
        """Yield ``(u, v, weight)`` edges for one net's pin tuple.

        Nets with fewer than two pins contribute nothing; implementations
        may assume ``len(pins) >= 2``.
        """

    def to_graph(self, h: Hypergraph) -> Graph:
        """Expand every net of ``h`` and accumulate into a module graph."""
        g = Graph(h.num_modules)
        for _, pins in h.iter_nets():
            if len(pins) < 2:
                continue
            for u, v, w in self.expand_net(pins):
                g.add_edge(u, v, w)
        return g

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<NetModel {self.name!r}>"


def register_model(cls: Type[NetModel]) -> Type[NetModel]:
    """Class decorator adding a model to the global registry."""
    if not cls.name:
        raise ReproError(f"net model {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ReproError(f"net model name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls()
    return cls


def get_model(name: str) -> NetModel:
    """Look up a registered net model instance by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown net model {name!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def available_models() -> List[str]:
    """Names of all registered net models, sorted."""
    return sorted(_REGISTRY)
