"""Spanning path and cycle net models.

A k-pin net becomes a path (k-1 edges) or cycle (k edges) through its pins
in index order.  These are the "spanning paths, spanning cycles" of
Section 2.1; like the star model they are sparse but asymmetric — the
chosen pin order determines which adjacencies exist at all.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from .base import NetModel, register_model

__all__ = ["PathModel", "CycleModel"]


@register_model
class PathModel(NetModel):
    """Spanning path through the net's pins in sorted index order."""

    name = "path"

    def expand_net(
        self, pins: Tuple[int, ...]
    ) -> Iterable[Tuple[int, int, float]]:
        for u, v in zip(pins, pins[1:]):
            yield (u, v, 1.0)


@register_model
class CycleModel(NetModel):
    """Spanning cycle: the path model plus a closing edge.

    For a 2-pin net the closing edge would duplicate the single path edge,
    so it is emitted only for nets with at least three pins.
    """

    name = "cycle"

    def expand_net(
        self, pins: Tuple[int, ...]
    ) -> Iterable[Tuple[int, int, float]]:
        for u, v in zip(pins, pins[1:]):
            yield (u, v, 1.0)
        if len(pins) >= 3:
            yield (pins[-1], pins[0], 1.0)
