"""Per-netlist serving sessions for incremental (ECO) partitioning.

A session is everything the engine needs to answer ``POST
/partition/delta`` warm: the exact hypergraph a fingerprint names, and
per-request warm-start artifacts
(:class:`~repro.delta.warm.SessionArtifacts`) for each request shape
already served on it.  Sessions are held in a :class:`SessionStore` —
an LRU with TTL expiry and always-on memory accounting
(``service.session.{entries,bytes,evictions}`` in ``/metrics``).

Unlike the result cache (content-addressed, disk-spillable, shareable
across processes), sessions hold live Python/numpy state and are
intentionally process-local and bounded: losing one costs a cold
recompute, never a wrong answer.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..delta.warm import SessionArtifacts
from ..errors import ReproError
from ..hypergraph import Hypergraph

__all__ = ["SessionEntry", "SessionMissError", "SessionStore"]


class SessionMissError(ReproError):
    """``POST /partition/delta`` named a base with no live session.

    Carries the reason (never seen vs evicted vs expired is
    indistinguishable by design — the store does not remember the
    dead) so the HTTP layer can answer 404 with an actionable message.
    """

    def __init__(self, fingerprint: str, reason: str):
        super().__init__(reason)
        self.fingerprint = fingerprint
        self.reason = reason


def _estimate_hypergraph_bytes(h: Hypergraph) -> int:
    """Rough retained size of a hypergraph (pins dominate)."""
    pins = sum(h.net_sizes())
    # pin tuples appear in both incidence directions; ints are small
    # and shared, so count slot references plus per-net overhead.
    return 16 * 2 * pins + 64 * (h.num_nets + h.num_modules) + 256


@dataclass
class SessionEntry:
    """One live session: the hypergraph plus per-request artifacts."""

    hypergraph: Hypergraph
    #: Warm-start artifacts keyed by the request's cache-key fields
    #: (one session can serve ig-match and fm deltas independently).
    artifacts: Dict[str, SessionArtifacts] = field(default_factory=dict)
    created_at: float = 0.0
    touched_at: float = 0.0

    def estimated_bytes(self) -> int:
        total = _estimate_hypergraph_bytes(self.hypergraph)
        for art in self.artifacts.values():
            total += art.estimated_bytes()
        return total


class SessionStore:
    """LRU + TTL store of serving sessions, with memory accounting.

    ``capacity`` bounds live sessions (least-recently-used evicted
    first); ``ttl_s`` expires sessions untouched for that long
    (checked lazily on access and on every :meth:`sweep`).  ``clock``
    is injectable for tests.  All operations are thread-safe.
    """

    def __init__(
        self,
        capacity: int = 16,
        ttl_s: float = 3600.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl_s}")
        self.capacity = int(capacity)
        self.ttl_s = float(ttl_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: Dict[str, SessionEntry] = {}  # insertion = LRU
        self._bytes = 0
        self._evictions = 0
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    def _expire_locked(self, now: float) -> None:
        dead = [
            fp
            for fp, entry in self._entries.items()
            if now - entry.touched_at > self.ttl_s
        ]
        for fp in dead:
            entry = self._entries.pop(fp)
            self._bytes -= entry.estimated_bytes()
            self._evictions += 1

    def _touch_locked(self, fingerprint: str) -> SessionEntry:
        """Move to most-recently-used position (dicts keep order)."""
        entry = self._entries.pop(fingerprint)
        entry.touched_at = self._clock()
        self._entries[fingerprint] = entry
        return entry

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[SessionEntry]:
        """The session for ``fingerprint``, or ``None`` (miss/expired)."""
        with self._lock:
            self._expire_locked(self._clock())
            if fingerprint not in self._entries:
                self._misses += 1
                return None
            self._hits += 1
            return self._touch_locked(fingerprint)

    def put(
        self,
        fingerprint: str,
        h: Hypergraph,
        request_key: str,
        artifacts: SessionArtifacts,
    ) -> SessionEntry:
        """Install (or refresh) the session for ``fingerprint``.

        An existing session for the same fingerprint gains the new
        request's artifacts; otherwise a new entry is created, evicting
        the least-recently-used session when over capacity.
        """
        now = self._clock()
        with self._lock:
            self._expire_locked(now)
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._bytes -= entry.estimated_bytes()
                entry = self._touch_locked(fingerprint)
            else:
                entry = SessionEntry(
                    hypergraph=h, created_at=now, touched_at=now
                )
                self._entries[fingerprint] = entry
            entry.artifacts[request_key] = artifacts
            self._bytes += entry.estimated_bytes()
            while len(self._entries) > self.capacity:
                oldest_fp = next(iter(self._entries))
                oldest = self._entries.pop(oldest_fp)
                self._bytes -= oldest.estimated_bytes()
                self._evictions += 1
            return entry

    def sweep(self) -> int:
        """Expire overdue sessions now; returns the live count."""
        with self._lock:
            self._expire_locked(self._clock())
            return len(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    # ------------------------------------------------------------------
    def stats_dict(self) -> Dict[str, Any]:
        """Always-on gauges/counters, named for the ``/metrics``
        service section (``service.session.entries`` and
        ``service.session.bytes`` are gauges; the rest counters)."""
        with self._lock:
            return {
                "service.session.entries": len(self._entries),
                "service.session.bytes": max(0, self._bytes),
                "service.session.evictions": self._evictions,
                "service.session.hits": self._hits,
                "service.session.misses": self._misses,
            }
