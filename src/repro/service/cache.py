"""Two-tier content-addressed result cache (memory LRU + disk store).

Layer one is an in-process LRU with a **byte budget**: entries are
charged their canonical-JSON size and the least-recently-used entries
are evicted once the budget is exceeded.  Layer two is an optional disk
store under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``): one JSON
file per key, sharded by hash prefix, written atomically (temp file +
``os.replace``) so a crashed or concurrent writer can never leave a
half-written entry.  Disk hits are promoted into the memory tier.

Every stored file carries a ``schema`` version; entries that fail to
parse, fail validation, or carry an unknown schema are **quarantined**
— moved aside to ``quarantine/`` with a reason suffix instead of
crashing the service or being silently re-read forever.  A corrupt
cache entry therefore costs one recompute, never an outage.

All tiers are thread-safe; the service's single-flight request
deduplication lives one level up in :mod:`repro.service.engine`.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

__all__ = [
    "CACHE_ENTRY_SCHEMA",
    "DiskCache",
    "MemoryCache",
    "ResultCache",
    "default_cache_dir",
]

#: On-disk entry schema.  Bump when the stored envelope shape changes;
#: readers quarantine anything they do not recognise.
CACHE_ENTRY_SCHEMA = 1

#: Default in-memory budget: enough for thousands of bipartition results
#: on paper-scale netlists without letting a busy server grow unbounded.
DEFAULT_MEMORY_BUDGET = 32 * 1024 * 1024


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _encode(payload: Dict[str, Any]) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


class MemoryCache:
    """Thread-safe LRU keyed by fingerprint, evicting by byte budget.

    ``budget_bytes <= 0`` disables storage entirely (every ``put`` is a
    no-op), which keeps the calling code branch-free.  A single entry
    larger than the whole budget is refused rather than evicting
    everything else.
    """

    def __init__(self, budget_bytes: int = DEFAULT_MEMORY_BUDGET):
        self.budget_bytes = int(budget_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._used = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            blob = self._entries.get(key)
            if blob is None:
                return None
            self._entries.move_to_end(key)
        return json.loads(blob.decode("utf-8"))

    def put(self, key: str, payload: Dict[str, Any]) -> bool:
        blob = _encode(payload)
        if self.budget_bytes <= 0 or len(blob) > self.budget_bytes:
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._used -= len(old)
            self._entries[key] = blob
            self._used += len(blob)
            while self._used > self.budget_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._used -= len(evicted)
        return True

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    def keys(self) -> list:
        """Keys from least- to most-recently used (for tests/stats)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._used = 0


class DiskCache:
    """Content-addressed JSON files under a cache directory.

    Layout: ``<root>/objects/<key[:2]>/<key>.json`` holding
    ``{"schema": .., "key": .., "payload": ..}``.  Writes go through a
    sibling temp file and ``os.replace`` so readers only ever see
    complete entries.  Unreadable or mismatched entries are moved to
    ``<root>/quarantine/`` and reported as a miss.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._lock = threading.Lock()
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        target_dir = self.root / "quarantine"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / f"{path.name}.{reason}")
        except OSError:
            # Last resort: make sure the bad entry cannot be re-read.
            try:
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            envelope = json.loads(text)
        except ValueError:
            self._quarantine(path, "unparsable")
            return None
        if not isinstance(envelope, dict):
            self._quarantine(path, "malformed")
            return None
        if envelope.get("schema") != CACHE_ENTRY_SCHEMA:
            self._quarantine(path, "schema")
            return None
        if envelope.get("key") != key:
            self._quarantine(path, "keymismatch")
            return None
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            self._quarantine(path, "malformed")
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> bool:
        envelope = {
            "schema": CACHE_ENTRY_SCHEMA,
            "key": key,
            "payload": payload,
        }
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(envelope, handle, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()


class ResultCache:
    """The facade the engine talks to: memory in front of optional disk.

    ``get`` consults the memory tier first, then disk (promoting disk
    hits into memory).  ``put`` writes through to both tiers.  Hit and
    miss tallies are kept per tier for ``/metrics`` and tests.
    """

    def __init__(
        self,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        disk_dir: Union[str, Path, None] = None,
        use_disk: bool = True,
    ):
        self.memory = MemoryCache(memory_budget)
        self.disk: Optional[DiskCache] = (
            DiskCache(disk_dir) if use_disk else None
        )
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "stores": 0,
        }

    def _count(self, field: str) -> None:
        with self._lock:
            self.stats[field] += 1

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self.lookup(key)[0]

    def lookup(self, key: str) -> Tuple[Optional[Dict[str, Any]], str]:
        """``(payload, tier)`` where tier is ``memory``/``disk``/``miss``."""
        payload = self.memory.get(key)
        if payload is not None:
            self._count("memory_hits")
            return payload, "memory"
        if self.disk is not None:
            payload = self.disk.get(key)
            if payload is not None:
                self._count("disk_hits")
                self.memory.put(key, payload)
                return payload, "disk"
        self._count("misses")
        return None, "miss"

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        self._count("stores")
        self.memory.put(key, payload)
        if self.disk is not None:
            self.disk.put(key, payload)

    def check_disk_writable(self) -> Tuple[bool, str]:
        """Probe the disk tier with a real write (for ``/readyz``).

        Returns ``(True, detail)`` when the disk tier is absent (nothing
        to fail) or a probe file round-trips; ``(False, reason)`` when
        the cache directory cannot be created or written — the one
        dependency that turns every miss into a recompute *and* loses
        results across restarts.
        """
        if self.disk is None:
            return True, "disk tier disabled"
        probe_dir = self.disk.root / "objects"
        try:
            probe_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(probe_dir), prefix=".readyz-", suffix=".probe"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write("ok")
            os.unlink(tmp)
        except OSError as exc:
            return False, f"cache dir not writable: {exc}"
        return True, f"cache dir writable: {self.disk.root}"

    def snapshot(self) -> Dict[str, Any]:
        """Stats + sizing for ``/metrics``."""
        with self._lock:
            stats = dict(self.stats)
        stats.update(
            memory_entries=len(self.memory),
            memory_used_bytes=self.memory.used_bytes,
            memory_budget_bytes=self.memory.budget_bytes,
            disk_enabled=self.disk is not None,
            disk_quarantined=(
                self.disk.quarantined if self.disk is not None else 0
            ),
        )
        return stats
