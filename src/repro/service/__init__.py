"""repro.service — job-oriented partitioning with result caching.

The serving layer that turns the one-shot library/CLI pipeline into a
long-lived engine: requests are fingerprinted
(:mod:`~repro.service.fingerprint`), answered from a two-tier
content-addressed cache when possible (:mod:`~repro.service.cache`),
deduplicated against identical in-flight computations, and optionally
queued as prioritised, retryable jobs (:mod:`~repro.service.jobs`).
:mod:`~repro.service.http` exposes the whole thing over a stdlib-only
JSON API (``repro-serve``).

The correctness contract is strict: a result served through the engine
— cold, cached, deduplicated, or over HTTP — is byte-identical in its
deterministic fields to the direct library call with the same seed
(:func:`~repro.service.engine.canonical_result_bytes` is the comparison
the test suite enforces across all eight partitioners).

Quickstart::

    from repro.service import PartitionEngine, PartitionRequest, ResultCache

    engine = PartitionEngine(cache=ResultCache(use_disk=False))
    served = engine.partition(h, PartitionRequest("ig-match", seed=0))
    again = engine.partition(h, PartitionRequest("ig-match", seed=0))
    assert again.cached and again.result.nets_cut == served.result.nets_cut
"""

from .cache import (
    CACHE_ENTRY_SCHEMA,
    DiskCache,
    MemoryCache,
    ResultCache,
    default_cache_dir,
)
from .engine import (
    ALGORITHMS,
    RESULT_SCHEMA,
    PartitionEngine,
    PartitionRequest,
    ServedResult,
    SlowLog,
    canonical_result_bytes,
    payload_to_result,
    result_to_payload,
    run_partitioner,
)
from .fingerprint import (
    FINGERPRINT_SCHEMA,
    canonical_fingerprint,
    exact_fingerprint,
    request_fingerprint,
)
from .http import AccessLog, create_server, serve_main
from .jobs import JOB_STATES, Job, JobScheduler

__all__ = [
    "ALGORITHMS",
    "AccessLog",
    "CACHE_ENTRY_SCHEMA",
    "DiskCache",
    "FINGERPRINT_SCHEMA",
    "JOB_STATES",
    "Job",
    "JobScheduler",
    "MemoryCache",
    "PartitionEngine",
    "PartitionRequest",
    "RESULT_SCHEMA",
    "ResultCache",
    "ServedResult",
    "SlowLog",
    "canonical_fingerprint",
    "canonical_result_bytes",
    "create_server",
    "default_cache_dir",
    "exact_fingerprint",
    "payload_to_result",
    "request_fingerprint",
    "result_to_payload",
    "run_partitioner",
    "serve_main",
]
