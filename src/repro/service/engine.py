"""The serving request path: fingerprint → cache → partitioner.

:class:`PartitionRequest` is the frozen, hashable description of one
partitioning problem configuration — the algorithm plus every knob that
can change the answer.  :func:`run_partitioner` is the single dispatch
point from a request to the eight bipartitioning algorithms (the CLI
delegates here, so library, CLI, and HTTP callers run literally the
same code path — the base of the byte-identical serving contract).

:class:`PartitionEngine` wraps that dispatch with:

* **content-addressed caching** — the request fingerprint
  (:func:`repro.service.fingerprint.request_fingerprint`) keys a
  :class:`repro.service.cache.ResultCache`; hits skip the partitioner
  entirely (no intersection build, no eigensolve, no sweep — their obs
  spans are simply absent from a cached serve);
* **single-flight deduplication** — concurrent identical requests
  compute once; the N−1 waiters are served the first flight's payload
  and count as cache hits;
* **async jobs** — :meth:`PartitionEngine.submit` queues requests on a
  :class:`repro.service.jobs.JobScheduler` with priorities, deadlines
  and bounded retries; :meth:`PartitionEngine.submit_batch` additionally
  deduplicates identical requests *within* the batch;
* **request-scoped telemetry** — every serve runs inside a
  :class:`repro.obs.TraceCapture`, so the full span tree it produces
  (down to ``spectral.lanczos`` and the matching sweeps) is stamped
  with the request's ``trace_id``; latency lands in always-on
  :class:`repro.obs.HistogramSet` series (request, cache lookup,
  per-algorithm compute), and any request slower than the configured
  threshold leaves a full-trace exemplar in a :class:`SlowLog` ring
  buffer (served at ``GET /debug/slow``).

Counters (mirrored into :mod:`repro.obs` and always tallied locally for
``/metrics``): ``service.requests``, ``service.cache.hit``,
``service.cache.miss``, ``service.cache.hit.inflight``,
``service.computed``, ``service.rejected`` (ingress backpressure
429s, tallied by the HTTP layer via :meth:`PartitionEngine.reject`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..obs.trace import new_trace_id
from ..clustering import MultilevelConfig, multilevel_partition
from ..core import use_core
from ..errors import ReproError
from ..hypergraph import Hypergraph
from ..parallel import ParallelConfig
from ..partitioning import (
    AnnealingConfig,
    EIG1Config,
    FMConfig,
    IGMatchConfig,
    IGVoteConfig,
    KLConfig,
    PartitionResult,
    RCutConfig,
    anneal,
    eig1,
    fm_bipartition,
    ig_match,
    ig_vote,
    kl_bisection,
    rcut,
)
from ..partitioning.partition import Partition
from ..delta import (
    NetlistDelta,
    SessionArtifacts,
    seed_artifacts,
    warm_partition,
)
from .cache import ResultCache
from .fingerprint import request_fingerprint
from .jobs import Job, JobScheduler
from .sessions import SessionMissError, SessionStore

__all__ = [
    "ALGORITHMS",
    "PartitionEngine",
    "PartitionRequest",
    "RESULT_SCHEMA",
    "ServedResult",
    "SlowLog",
    "canonical_result_bytes",
    "payload_to_result",
    "result_to_payload",
    "run_partitioner",
]

#: The eight bipartitioning algorithms the service can run.
ALGORITHMS = (
    "ig-match",
    "ig-vote",
    "eig1",
    "rcut",
    "fm",
    "kl",
    "anneal",
    "multilevel",
)

#: Version of the cached/served result payload shape.
RESULT_SCHEMA = 1

#: Request knobs that only matter to *one* algorithm.  They are dropped
#: from the cache key for every other algorithm, so e.g. an ``fm``
#: request with the default ``restarts`` and one with ``restarts=50``
#: share a cache line (RCut is the only consumer of ``restarts``).
_ALGORITHM_KNOBS = {
    "ig-match": ("split_stride",),
    "rcut": ("restarts",),
    "fm": ("starts",),
}


@dataclass(frozen=True)
class PartitionRequest:
    """One frozen partitioning problem configuration.

    Only fields that can change the *answer* belong here; execution
    details (worker counts, backends, tracing) live outside the request
    because :mod:`repro.parallel` guarantees they cannot change results.
    """

    algorithm: str = "ig-match"
    seed: int = 0
    restarts: int = 10
    split_stride: int = 1
    starts: int = 1

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ReproError(
                f"unknown algorithm {self.algorithm!r} "
                f"(choose from {', '.join(ALGORITHMS)})"
            )
        for fname in ("seed", "restarts", "split_stride", "starts"):
            value = getattr(self, fname)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ReproError(
                    f"{fname} must be an integer, got {value!r}"
                )
        if self.restarts < 1 or self.split_stride < 1 or self.starts < 1:
            raise ReproError(
                "restarts, split_stride and starts must be >= 1"
            )

    @classmethod
    def from_mapping(cls, doc: Dict[str, Any]) -> "PartitionRequest":
        """Build from an untrusted dict (HTTP body), rejecting unknown
        keys with a clear error instead of silently ignoring them."""
        known = {"algorithm", "seed", "restarts", "split_stride", "starts"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ReproError(
                f"unknown request field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**doc)

    def key_fields(self) -> Dict[str, Any]:
        """The fields that enter the cache key for this algorithm."""
        fields: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "seed": self.seed,
        }
        for knob in _ALGORITHM_KNOBS.get(self.algorithm, ()):
            fields[knob] = getattr(self, knob)
        return fields


def run_partitioner(
    h: Hypergraph,
    request: PartitionRequest,
    parallel: Optional[ParallelConfig] = None,
    core: Optional[str] = None,
    capture: Optional[Dict[str, Any]] = None,
) -> PartitionResult:
    """Run the requested algorithm directly (no cache involvement).

    ``core`` selects the hypergraph core representation for this call
    (``"dict"`` or ``"csr"``); ``None`` inherits the ambient setting
    (``repro.core.set_core`` / ``$REPRO_CORE``).  Like ``parallel``, it
    never affects results — the cores are bit-identical by contract —
    only wall-clock time, so it does not enter any cache fingerprint.
    ``capture`` (ig-match only) receives the warm-start seed the
    serving sessions store; it never changes the result.
    """
    if core is not None:
        with use_core(core):
            return run_partitioner(
                h, request, parallel=parallel, capture=capture
            )
    algorithm = request.algorithm
    seed = request.seed
    if algorithm == "ig-match":
        return ig_match(
            h,
            IGMatchConfig(
                seed=seed,
                split_stride=request.split_stride,
                parallel=parallel,
            ),
            capture=capture,
        )
    if algorithm == "ig-vote":
        return ig_vote(h, IGVoteConfig(seed=seed))
    if algorithm == "eig1":
        return eig1(h, EIG1Config(seed=seed))
    if algorithm == "rcut":
        return rcut(
            h,
            RCutConfig(
                restarts=request.restarts, seed=seed, parallel=parallel
            ),
        )
    if algorithm == "fm":
        return fm_bipartition(
            h, FMConfig(seed=seed, starts=request.starts, parallel=parallel)
        )
    if algorithm == "kl":
        return kl_bisection(h, KLConfig(seed=seed))
    if algorithm == "anneal":
        return anneal(h, AnnealingConfig(seed=seed))
    if algorithm == "multilevel":
        return multilevel_partition(h, MultilevelConfig(seed=seed))
    raise ReproError(f"unknown algorithm {algorithm!r}")


def _request_key(request: PartitionRequest) -> str:
    """Canonical per-request artifact key within a serving session."""
    import json

    return json.dumps(request.key_fields(), sort_keys=True)


# ----------------------------------------------------------------------
# Result payloads
# ----------------------------------------------------------------------
def _scalar_details(details: Dict[str, Any]) -> Dict[str, Any]:
    return {
        k: v
        for k, v in details.items()
        if isinstance(v, (int, float, str, bool))
    }


def result_to_payload(result: PartitionResult) -> Dict[str, Any]:
    """Serialise a result into the JSON-safe cached payload."""
    return {
        "schema": RESULT_SCHEMA,
        "algorithm": result.algorithm,
        "sides": list(result.partition.sides),
        "areas": result.areas,
        "nets_cut": result.nets_cut,
        "ratio_cut": result.ratio_cut,
        "elapsed_seconds": result.elapsed_seconds,
        "details": _scalar_details(result.details),
    }


def payload_to_result(
    h: Hypergraph, payload: Dict[str, Any]
) -> PartitionResult:
    """Rebuild a :class:`PartitionResult` from a cached payload."""
    if payload.get("schema") != RESULT_SCHEMA:
        raise ReproError(
            f"unknown result payload schema {payload.get('schema')!r} "
            f"(expected {RESULT_SCHEMA})"
        )
    return PartitionResult(
        algorithm=payload["algorithm"],
        partition=Partition(h, payload["sides"]),
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        details=dict(payload.get("details", {})),
    )


def canonical_result_bytes(result: PartitionResult) -> bytes:
    """The deterministic fields of a result as canonical JSON bytes.

    This is the serving equivalence contract: for the same hypergraph,
    request, and seed, these bytes are identical whether the result came
    from a direct library call, a cold engine serve, a cached serve, or
    an HTTP round-trip.  Wall-clock fields are excluded — they are the
    only nondeterministic part of a result.
    """
    import json

    payload = result_to_payload(result)
    payload.pop("elapsed_seconds", None)
    details = payload.get("details", {})
    for key in list(details):
        if key.endswith(("seconds", "_s")) or key.startswith("time"):
            details.pop(key)
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class ServedResult:
    """What the engine returns: the result plus serving provenance."""

    result: PartitionResult
    fingerprint: str
    cached: bool
    source: str  # "computed" | "memory" | "disk" | "inflight"
    trace_id: str = ""
    duration_s: float = 0.0

    def response(self) -> Dict[str, Any]:
        """The JSON document the HTTP layer returns for a serve."""
        return {
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "source": self.source,
            "trace_id": self.trace_id,
            "duration_s": round(self.duration_s, 6),
            "result": result_to_payload(self.result),
        }


class SlowLog:
    """Ring buffer of slow-request exemplars (newest kept, oldest out).

    Any request whose wall-clock meets ``threshold_s`` leaves its full
    trace here: the span tree (with compute phases), raw events, and
    counter totals the request produced, all stamped with its
    ``trace_id``.  ``GET /debug/slow`` serves the buffer; the HTML form
    is :func:`repro.obs.render_slow_html`.  Thread-safe; bounded by
    ``capacity``, so a storm of slow requests costs memory for at most
    ``capacity`` traces.
    """

    def __init__(self, threshold_s: float = 1.0, capacity: int = 32):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold_s = float(threshold_s)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: List[Dict[str, Any]] = []
        self._recorded = 0

    def record(self, entry: Dict[str, Any]) -> None:
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
            if len(self._entries) > self.capacity:
                del self._entries[: len(self._entries) - self.capacity]

    def entries(self) -> List[Dict[str, Any]]:
        """Recorded exemplars, newest first."""
        with self._lock:
            return list(reversed(self._entries))

    def snapshot(self) -> Dict[str, Any]:
        """Sizing/threshold summary for ``/metrics``."""
        with self._lock:
            held = len(self._entries)
            recorded = self._recorded
        return {
            "threshold_s": self.threshold_s,
            "capacity": self.capacity,
            "held": held,
            "recorded": recorded,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _Flight:
    """A computation in progress that duplicates can wait on."""

    __slots__ = ("event", "payload", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None


class PartitionEngine:
    """Cache-fronted, dedup-aware partitioning engine.

    ``cache=None`` disables result caching entirely (every request
    computes).  ``parallel`` is forwarded to the partitioners' internal
    fan-outs; it never affects results, only wall-clock time.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        parallel: Optional[ParallelConfig] = None,
        scheduler: Optional[JobScheduler] = None,
        hists: Optional[obs.HistogramSet] = None,
        slow_threshold_s: float = 1.0,
        slow_capacity: int = 32,
        memprof: bool = False,
        core: Optional[str] = None,
        sessions: Optional[SessionStore] = None,
    ):
        self.cache = cache
        self.parallel = parallel
        #: Live warm-start sessions for ``POST /partition/delta``
        #: (always on; bounded LRU+TTL, see :class:`SessionStore`).
        self.sessions = sessions if sessions is not None else SessionStore()
        #: Hypergraph core for computes (``"dict"``/``"csr"``; ``None``
        #: inherits the ambient setting).  Bit-identical by contract,
        #: so it never enters cache fingerprints — entries written by a
        #: dict-core server are hits for a csr-core server and vice
        #: versa.
        self.core = core
        #: ``True`` forces per-span memory attribution on for every
        #: request's :class:`~repro.obs.TraceCapture` (``repro-serve
        #: --memprof``); ``False`` inherits whatever the surrounding
        #: context has, so a memory-profiled bench session still sees
        #: request memory.
        self.memprof = bool(memprof)
        self._scheduler = scheduler
        self._scheduler_lock = threading.Lock()
        self._inflight: Dict[str, _Flight] = {}
        self._inflight_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        #: Always-on latency distributions (request / cache lookup /
        #: compute / job queue-wait) — recorded whether or not obs
        #: tracing is enabled, like ``stats``.
        self.hists = hists if hists is not None else obs.HistogramSet()
        #: Full-trace exemplars of requests over the slow threshold.
        self.slow = SlowLog(
            threshold_s=slow_threshold_s, capacity=slow_capacity
        )
        self.stats: Dict[str, int] = {
            "service.requests": 0,
            "service.cache.hit": 0,
            "service.cache.miss": 0,
            "service.cache.hit.inflight": 0,
            "service.computed": 0,
            "service.rejected": 0,
            "service.delta.requests": 0,
            "service.delta.warm": 0,
            "service.delta.cold": 0,
            "service.delta.noop": 0,
            "service.delta.base_miss": 0,
        }

    # ------------------------------------------------------------------
    def _count(self, name: str, value: int = 1) -> None:
        with self._stats_lock:
            self.stats[name] = self.stats.get(name, 0) + value
        obs.incr(name, value)

    def reject(self) -> None:
        """Tally one backpressure rejection (an ingress 429)."""
        self._count("service.rejected")

    @property
    def scheduler(self) -> JobScheduler:
        """The job scheduler, created on first use."""
        with self._scheduler_lock:
            if self._scheduler is None:
                self._scheduler = JobScheduler(hists=self.hists)
            return self._scheduler

    def queue_depth(self) -> int:
        """Pending jobs right now (0 when no scheduler exists yet)."""
        with self._scheduler_lock:
            scheduler = self._scheduler
        if scheduler is None:
            return 0
        return int(scheduler.snapshot().get("pending", 0))

    def jobs_outstanding(self) -> int:
        """Pending plus running jobs (0 when no scheduler exists yet).

        The graceful-drain path polls this — unlike :attr:`scheduler`
        it never creates a scheduler as a side effect.
        """
        with self._scheduler_lock:
            scheduler = self._scheduler
        if scheduler is None:
            return 0
        snapshot = scheduler.snapshot()
        return (
            int(snapshot.get("pending", 0))
            + int(snapshot.get("running", 0))
            + int(snapshot.get("cancelling", 0))
        )

    # ------------------------------------------------------------------
    def partition(
        self,
        h: Hypergraph,
        request: PartitionRequest,
        use_cache: bool = True,
        trace_id: Optional[str] = None,
    ) -> ServedResult:
        """Serve one request: cache lookup, then compute-once.

        The returned result is byte-identical (in its deterministic
        fields, see :func:`canonical_result_bytes`) to calling
        :func:`run_partitioner` directly — whether it was computed now,
        found in a cache tier, or joined onto an in-flight computation.

        Every serve runs under a :class:`repro.obs.TraceCapture` keyed
        by ``trace_id`` (minted here when the caller did not propagate
        one from ingress): the request's spans and counters are
        attributable to it, its latency is recorded in ``hists``, and a
        request at or over ``slow.threshold_s`` leaves a full-trace
        exemplar in the slow log — on errors too, with
        ``source="error"``.
        """
        key = request_fingerprint(h, request)
        self._count("service.requests")
        capture = obs.TraceCapture(
            trace_id, memprof=True if self.memprof else None
        )
        served: Optional[ServedResult] = None
        try:
            with capture:
                with obs.span(
                    "service.request",
                    algorithm=request.algorithm,
                    fingerprint=key[:12],
                ) as sp:
                    served = self._serve(h, request, key, use_cache, sp)
        finally:
            duration = capture.duration_s
            source = served.source if served is not None else "error"
            self.hists.observe(
                "service.request.duration_seconds",
                duration,
                algorithm=request.algorithm,
                source=source,
            )
            if duration >= self.slow.threshold_s:
                self.slow.record(
                    {
                        "trace_id": capture.trace_id,
                        "time": datetime.now(timezone.utc).isoformat(
                            timespec="milliseconds"
                        ),
                        "algorithm": request.algorithm,
                        "fingerprint": key,
                        "duration_s": round(duration, 6),
                        "source": source,
                        "cached": served.cached if served else False,
                        "spans": capture.spans,
                        "events": capture.events,
                        "counters": capture.counters,
                        # Request memory footprint: RSS always; traced
                        # heap peak when the capture ran memprof (the
                        # capture snapshots while tracing is still on).
                        "mem": capture.mem or obs.memory_snapshot(),
                    }
                )
        served.trace_id = capture.trace_id
        served.duration_s = duration
        return served

    def _serve(
        self,
        h: Hypergraph,
        request: PartitionRequest,
        key: str,
        use_cache: bool,
        sp: Any,
    ) -> ServedResult:
        """The cache → single-flight → compute body of one serve."""
        if not use_cache or self.cache is None:
            capture: Dict[str, Any] = {}
            result = self._compute(h, request, capture=capture)
            self._seed_session(
                h, request, key, result_to_payload(result), capture
            )
            sp.set(source="computed", cached=False)
            return ServedResult(result, key, False, "computed")

        lookup_start = time.perf_counter()
        payload, source = self.cache.lookup(key)
        self.hists.observe(
            "service.cache.lookup.duration_seconds",
            time.perf_counter() - lookup_start,
            outcome="miss" if payload is None else "hit",
        )
        if payload is not None:
            self._count("service.cache.hit")
            # Result-only session (no warm engine state): delta serves
            # on it still reuse the prior sides/rank where they can.
            if key not in self.sessions:
                self.sessions.put(
                    h=h,
                    fingerprint=key,
                    request_key=_request_key(request),
                    artifacts=SessionArtifacts(payload=dict(payload)),
                )
            sp.set(source=source, cached=True)
            return ServedResult(
                payload_to_result(h, payload), key, True, source
            )

        flight, owner = self._join_flight(key)
        if not owner:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            self._count("service.cache.hit")
            self._count("service.cache.hit.inflight")
            sp.set(source="inflight", cached=True)
            assert flight.payload is not None
            return ServedResult(
                payload_to_result(h, flight.payload),
                key,
                True,
                "inflight",
            )

        try:
            self._count("service.cache.miss")
            capture = {}
            result = self._compute(h, request, capture=capture)
            payload = result_to_payload(result)
            self.cache.put(key, payload)
            self._seed_session(h, request, key, payload, capture)
            flight.payload = payload
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            flight.event.set()
        sp.set(source="computed", cached=False)
        return ServedResult(result, key, False, "computed")

    def _join_flight(self, key: str) -> Tuple[_Flight, bool]:
        """Register interest in ``key``; True when we own the compute."""
        with self._inflight_lock:
            flight = self._inflight.get(key)
            if flight is not None:
                return flight, False
            flight = _Flight()
            self._inflight[key] = flight
            return flight, True

    def _compute(
        self,
        h: Hypergraph,
        request: PartitionRequest,
        capture: Optional[Dict[str, Any]] = None,
    ) -> PartitionResult:
        self._count("service.computed")
        start = time.perf_counter()
        result = run_partitioner(
            h, request, parallel=self.parallel, core=self.core,
            capture=capture,
        )
        self.hists.observe(
            "service.compute.duration_seconds",
            time.perf_counter() - start,
            algorithm=request.algorithm,
        )
        return result

    def _seed_session(
        self,
        h: Hypergraph,
        request: PartitionRequest,
        key: str,
        payload: Dict[str, Any],
        capture: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Install full warm-start artifacts after a cold compute."""
        artifacts = seed_artifacts(
            h, payload, request.algorithm, capture
        )
        self.sessions.put(
            fingerprint=key,
            h=h,
            request_key=_request_key(request),
            artifacts=artifacts,
        )

    # ------------------------------------------------------------------
    def partition_delta(
        self,
        base_fingerprint: str,
        delta: Any,
        request: PartitionRequest,
        trace_id: Optional[str] = None,
    ) -> ServedResult:
        """Serve a netlist delta against a live session.

        ``delta`` is a :class:`~repro.delta.NetlistDelta` or its wire
        document.  Raises :class:`SessionMissError` when no session
        holds ``base_fingerprint`` (the HTTP layer maps it to a 404
        with the reason), and :class:`~repro.errors.DeltaError` (a 400)
        when the delta is malformed or inconsistent with the base.

        The result is exactly what applying the delta to the base
        hypergraph and warm-partitioning directly would produce; a
        no-op delta returns the session's prior answer verbatim.  The
        edited hypergraph becomes a new session under the returned
        fingerprint, so clients chain deltas indefinitely.
        """
        self._count("service.delta.requests")
        capture = obs.TraceCapture(
            trace_id, memprof=True if self.memprof else None
        )
        served: Optional[ServedResult] = None
        try:
            with capture:
                with obs.span(
                    "service.delta",
                    algorithm=request.algorithm,
                    base=base_fingerprint[:12],
                ) as sp:
                    served = self._serve_delta(
                        base_fingerprint, delta, request, sp
                    )
        finally:
            duration = capture.duration_s
            source = served.source if served is not None else "error"
            self.hists.observe(
                "service.delta.duration_seconds",
                duration,
                algorithm=request.algorithm,
                source=source,
            )
        served.trace_id = capture.trace_id
        served.duration_s = duration
        return served

    def _serve_delta(
        self,
        base_fingerprint: str,
        delta: Any,
        request: PartitionRequest,
        sp: Any,
    ) -> ServedResult:
        entry = self.sessions.get(base_fingerprint)
        if entry is None:
            self._count("service.delta.base_miss")
            raise SessionMissError(
                base_fingerprint,
                f"no live session for base {base_fingerprint!r}: serve "
                "the base netlist first via POST /partition (or the "
                "session was evicted or expired); then retry the delta",
            )
        base = entry.hypergraph
        if isinstance(delta, NetlistDelta):
            d = delta
        else:
            d = NetlistDelta.from_doc(delta)
        d.validate(base)
        application = d.apply_detailed(base)
        h2 = application.hypergraph
        new_key = request_fingerprint(h2, request)
        rkey = _request_key(request)
        artifacts = entry.artifacts.get(rkey)

        if (
            new_key == base_fingerprint
            and artifacts is not None
            and artifacts.payload
        ):
            # No-op delta: the session's stored answer, verbatim.
            self._count("service.delta.noop")
            self._count("service.delta.warm")
            sp.set(source="session", warm=True)
            return ServedResult(
                payload_to_result(h2, artifacts.payload),
                new_key,
                True,
                "session",
            )

        if artifacts is None:
            artifacts = SessionArtifacts(payload={})
        result, fresh, warm = warm_partition(
            base, artifacts, application, request, parallel=self.parallel
        )
        self._count("service.delta.warm" if warm else "service.delta.cold")
        payload = result_to_payload(result)
        fresh.payload = payload
        self.sessions.put(
            fingerprint=new_key,
            h=h2,
            request_key=rkey,
            artifacts=fresh,
        )
        source = "delta-warm" if warm else "delta-cold"
        sp.set(source=source, warm=warm)
        # Deliberately NOT written to the result cache: warm details
        # (window, warm flag) differ from a cold compute's, and cache
        # entries must stay byte-identical to cold serves.
        return ServedResult(result, new_key, False, source)

    # ------------------------------------------------------------------
    def submit(
        self,
        h: Hypergraph,
        request: PartitionRequest,
        priority: int = 0,
        max_retries: int = 0,
        deadline_s: Optional[float] = None,
        use_cache: bool = True,
        trace_id: Optional[str] = None,
    ) -> Job:
        """Queue a request as an async job; the job result is the
        :meth:`ServedResult.response` document.

        ``trace_id`` (from ingress) rides along on the job record and
        is reused when the worker finally serves the request, so async
        results stay attributable to the submitting HTTP request.
        """
        tid = trace_id or new_trace_id()

        def work() -> Dict[str, Any]:
            return self.partition(
                h, request, use_cache=use_cache, trace_id=tid
            ).response()

        return self.scheduler.submit(
            work,
            priority=priority,
            max_retries=max_retries,
            deadline_s=deadline_s,
            label=request.algorithm,
            trace_id=tid,
        )

    def submit_batch(
        self,
        items: Sequence[Tuple[Hypergraph, PartitionRequest]],
        priority: int = 0,
        use_cache: bool = True,
    ) -> List[Job]:
        """Submit many requests, deduplicating identical ones.

        Returns one :class:`Job` handle per input item, in order; items
        whose fingerprint matches an earlier item in the batch share the
        earlier item's job (so N identical submissions schedule exactly
        one computation).
        """
        jobs: List[Job] = []
        by_key: Dict[str, Job] = {}
        for h, request in items:
            key = request_fingerprint(h, request)
            job = by_key.get(key)
            if job is None:
                job = self.submit(
                    h, request, priority=priority, use_cache=use_cache
                )
                by_key[key] = job
            else:
                self._count("service.batch.dedup")
            jobs.append(job)
        return jobs

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """Metrics snapshot for ``/metrics``: counters, histograms,
        slow-log summary (engine, cache, jobs)."""
        with self._stats_lock:
            doc: Dict[str, Any] = {"service": dict(self.stats)}
        doc["service"].update(self.sessions.stats_dict())
        if self.cache is not None:
            doc["cache"] = self.cache.snapshot()
        with self._scheduler_lock:
            scheduler = self._scheduler
        if scheduler is not None:
            doc["jobs"] = scheduler.snapshot()
        doc["histograms"] = self.hists.snapshot()
        doc["slow"] = self.slow.snapshot()
        doc["process"] = obs.process_metrics()
        doc["info"] = obs.build_info()
        if obs.is_enabled():
            doc["obs"] = obs.counters("service.")
        return doc
