"""Stdlib-only HTTP JSON API over the partition engine.

A :class:`ThreadingHTTPServer` (one thread per connection, zero
dependencies beyond the standard library) exposing:

* ``POST /partition`` — body carries the netlist and request config::

      {"netlist": {...},            # repro-hypergraph-v1 JSON document
       "net": "...",                # OR: NET text format (one of the two)
       "algorithm": "ig-match",     # optional request fields ...
       "seed": 0,
       "cache": true,               # false forces a fresh compute
       "async": false,              # true -> 202 + job id
       "priority": 0, "max_retries": 0, "deadline_s": null}

  Synchronous requests return ``{"fingerprint", "cached", "source",
  "result": {...}}``; ``"async": true`` returns ``{"job": "<id>"}``
  with status 202.
* ``GET /jobs/<id>`` — the job's status/result record (404 unknown).
* ``DELETE /jobs/<id>`` — cancel a still-pending job.
* ``GET /healthz`` — liveness: version, uptime, worker config.
* ``GET /metrics`` — engine/cache/job counters as JSON.

Errors are always JSON: ``{"error": "<one line>"}`` with 400 for bad
requests, 404 for unknown routes/jobs, 405 for wrong methods.  The
``repro-serve`` console script (:func:`serve_main`) is the deployment
entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Sequence, Tuple

from ..errors import ReproError
from ..hypergraph import Hypergraph, from_json, loads_net
from ..parallel import BACKENDS, ParallelConfig, resolve_parallel
from .cache import ResultCache
from .engine import PartitionEngine, PartitionRequest

__all__ = ["create_server", "serve_main"]

#: Request bodies above this size are rejected up front (64 MiB is far
#: beyond any paper-scale netlist; it only guards the server's memory).
_MAX_BODY_BYTES = 64 * 1024 * 1024

_REQUEST_FIELDS = ("algorithm", "seed", "restarts", "split_stride", "starts")

#: Every key a ``POST /partition`` body may carry.  Anything else is a
#: 400 — silently ignoring a typo like ``retries`` would accept the
#: request while quietly not doing what the caller asked.
_BODY_FIELDS = frozenset(_REQUEST_FIELDS) | {
    "netlist", "net", "cache", "async", "priority", "max_retries",
    "deadline_s",
}


def _version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # pragma: no cover - metadata missing
        from .. import __version__

        return __version__


def _parse_body(doc: Dict[str, Any]) -> Tuple[Hypergraph, PartitionRequest]:
    """Extract the hypergraph and request from a ``POST /partition`` body."""
    if not isinstance(doc, dict):
        raise ReproError("request body must be a JSON object")
    unknown = sorted(set(doc) - _BODY_FIELDS)
    if unknown:
        raise ReproError(
            f"unknown request field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_BODY_FIELDS))})"
        )
    has_json = "netlist" in doc
    has_net = "net" in doc
    if has_json == has_net:
        raise ReproError(
            "give exactly one of 'netlist' (JSON document) or "
            "'net' (NET text)"
        )
    if has_json:
        h = from_json(doc["netlist"])
    else:
        if not isinstance(doc["net"], str):
            raise ReproError("'net' must be a string in NET text format")
        h = loads_net(doc["net"])
    config = {k: doc[k] for k in _REQUEST_FIELDS if k in doc}
    try:
        request = PartitionRequest.from_mapping(config)
    except TypeError as exc:
        raise ReproError(f"bad request config: {exc}") from None
    return h, request


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's engine.  One instance per request."""

    server_version = "repro-serve/" + _version()
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def _send_json(self, status: int, doc: Dict[str, Any]) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "quiet", True):
            return
        sys.stderr.write(
            "%s - %s\n" % (self.address_string(), format % args)
        )

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        engine: PartitionEngine = self.server.engine
        if self.path == "/healthz":
            parallel = engine.parallel or ParallelConfig()
            self._send_json(
                200,
                {
                    "status": "ok",
                    "version": _version(),
                    "uptime_s": round(
                        time.monotonic() - self.server.started_at, 3
                    ),
                    "workers": parallel.effective_workers(),
                    "backend": parallel.backend,
                    "cache": engine.cache is not None,
                },
            )
            return
        if self.path == "/metrics":
            self._send_json(200, engine.metrics())
            return
        if self.path.startswith("/jobs/"):
            job_id = self.path[len("/jobs/"):]
            job = engine.scheduler.get(job_id)
            if job is None:
                self._send_error_json(404, f"unknown job {job_id!r}")
                return
            self._send_json(200, job.record())
            return
        self._send_error_json(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:
        engine: PartitionEngine = self.server.engine
        if self.path != "/partition":
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(400, "bad Content-Length header")
            return
        if length <= 0:
            self._send_error_json(400, "empty request body")
            return
        if length > _MAX_BODY_BYTES:
            self._send_error_json(
                400, f"request body exceeds {_MAX_BODY_BYTES} bytes"
            )
            return
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return
        try:
            h, request = _parse_body(doc)
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        use_cache = bool(doc.get("cache", True))
        if doc.get("async"):
            deadline = doc.get("deadline_s")
            job = engine.submit(
                h,
                request,
                priority=int(doc.get("priority", 0)),
                max_retries=int(doc.get("max_retries", 0)),
                deadline_s=float(deadline) if deadline is not None else None,
                use_cache=use_cache,
            )
            self._send_json(202, {"job": job.id, "status": job.status})
            return
        try:
            served = engine.partition(h, request, use_cache=use_cache)
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(200, served.response())

    def do_DELETE(self) -> None:
        engine: PartitionEngine = self.server.engine
        if not self.path.startswith("/jobs/"):
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        job_id = self.path[len("/jobs/"):]
        if engine.scheduler.get(job_id) is None:
            self._send_error_json(404, f"unknown job {job_id!r}")
            return
        cancelled = engine.scheduler.cancel(job_id)
        self._send_json(200, {"job": job_id, "cancelled": cancelled})


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, engine: PartitionEngine, quiet: bool = True):
        super().__init__(address, _Handler)
        self.engine = engine
        self.quiet = quiet
        self.started_at = time.monotonic()


def create_server(
    engine: Optional[PartitionEngine] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> _Server:
    """Build a ready-to-run server (``port=0`` picks an ephemeral port).

    Call ``serve_forever()`` on the result (typically in a thread for
    tests) and ``shutdown()`` / ``server_close()`` to stop it.  The
    bound port is ``server.server_address[1]``.
    """
    if engine is None:
        engine = PartitionEngine(cache=ResultCache())
    return _Server((host, port), engine, quiet=quiet)


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-serve`` — run the partitioning service until interrupted."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve ratio-cut partitioning over HTTP with "
        "content-addressed result caching.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8377,
        help="listen port (0 = ephemeral; default 8377)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="disk cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="keep results only in the in-memory LRU",
    )
    parser.add_argument(
        "--memory-budget", type=int, default=None, metavar="BYTES",
        help="in-memory cache byte budget (default 32 MiB)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker pool size for the partitioners' parallel fan-outs "
        "(default: $REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="parallel backend (default: $REPRO_BACKEND)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="log one line per handled request",
    )
    args = parser.parse_args(argv)

    cache_kwargs: Dict[str, Any] = {
        "disk_dir": args.cache_dir,
        "use_disk": not args.no_disk_cache,
    }
    if args.memory_budget is not None:
        cache_kwargs["memory_budget"] = args.memory_budget
    try:
        engine = PartitionEngine(
            cache=ResultCache(**cache_kwargs),
            parallel=resolve_parallel(args.workers, args.backend),
        )
        server = create_server(
            engine, host=args.host, port=args.port, quiet=not args.verbose
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    host, port = server.server_address[:2]
    print(
        f"repro-serve {_version()} listening on http://{host}:{port} "
        f"(POST /partition, GET /jobs/<id>, /healthz, /metrics)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(serve_main())
