"""Stdlib-only HTTP JSON API over the partition engine.

A :class:`ThreadingHTTPServer` (one thread per connection, zero
dependencies beyond the standard library) exposing:

* ``POST /partition`` — body carries the netlist and request config::

      {"netlist": {...},            # repro-hypergraph-v1 JSON document
       "net": "...",                # OR: NET text format (one of the two)
       "algorithm": "ig-match",     # optional request fields ...
       "seed": 0,
       "cache": true,               # false forces a fresh compute
       "async": false,              # true -> 202 + job id
       "priority": 0, "max_retries": 0, "deadline_s": null}

  Synchronous requests return ``{"fingerprint", "cached", "source",
  "trace_id", "duration_s", "result": {...}}``; ``"async": true``
  returns ``{"job": "<id>", "trace_id": ...}`` with status 202.
* ``GET /jobs/<id>`` — the job's status/result record (404 unknown).
* ``DELETE /jobs/<id>`` — cancel a still-pending job.
* ``GET /healthz`` — liveness: version, uptime, worker config.  Always
  200 while the process can answer at all.
* ``GET /readyz`` — readiness: 200 only when the disk cache directory
  is writable (probed with a real write) and the job queue depth is
  within ``--ready-queue-bound``; 503 with per-check details otherwise.
* ``GET /metrics`` — content negotiated.  JSON by default; the
  Prometheus text exposition (0.0.4) when the client sends
  ``Accept: text/plain`` / ``application/openmetrics-text`` or asks
  explicitly with ``?format=prometheus``.  ``?format=json`` always
  wins back the JSON document.
* ``GET /debug/slow`` — the slow-request exemplar ring buffer (full
  span trees of every request over the engine's slow threshold), JSON
  by default, a rendered flame view with ``?format=html``.

**Request-scoped tracing**: every request gets a ``trace_id`` at
ingress (a client-supplied ``X-Trace-Id`` header is honoured, otherwise
one is minted), echoed back in the ``X-Trace-Id`` response header and
threaded through the engine so spans, jobs, and slow-log exemplars are
attributable to it.

**Structured access log**: one JSON line per handled request —
``{"type": "access", "time", "trace_id", "method", "path", "status",
"bytes", "duration_s"}`` plus ``source``/``cached`` provenance on
partition serves — written to stderr or ``--access-log PATH``.
Handler errors produce ``{"type": "error", ...}`` lines which are
**never** suppressed; ``--quiet`` silences only the access entries.

**Backpressure**: ``POST /partition`` answers ``429`` with a
``Retry-After`` header (and a ``service.rejected`` counter increment
plus an access-log line with ``rejected: true``) whenever the job
queue depth exceeds ``--ready-queue-bound`` — the same bound that
flips ``/readyz`` to 503 — instead of accepting work unboundedly.

**Graceful drain**: ``repro-serve`` handles SIGTERM/SIGINT by closing
the listener, answering requests that race in on open connections
with ``503 draining``, waiting (bounded by ``--drain-timeout``) for
every in-flight request and queued job to finish, then flushing and
closing the access log.  :meth:`_Server.drain` is the programmatic
form.

Errors are always JSON: ``{"error": "<one line>"}`` with 400 for bad
requests, 404 for unknown routes/jobs, 405 for wrong methods, 429 for
backpressure rejections, 500 (with the trace id) for handler crashes.
The ``repro-serve`` console script (:func:`serve_main`) is the
deployment entry point.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import threading
import time
from datetime import datetime, timezone
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, IO, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from ..core import CORES
from ..errors import ReproError
from ..hypergraph import Hypergraph, from_json, loads_net
from ..obs import render_prometheus, render_slow_html
from ..obs.trace import new_trace_id
from ..parallel import BACKENDS, ParallelConfig, resolve_parallel
from .cache import ResultCache
from .engine import PartitionEngine, PartitionRequest
from .sessions import SessionMissError

__all__ = ["AccessLog", "create_server", "serve_main"]

#: Request bodies above this size are rejected up front (64 MiB is far
#: beyond any paper-scale netlist; it only guards the server's memory).
_MAX_BODY_BYTES = 64 * 1024 * 1024

_REQUEST_FIELDS = ("algorithm", "seed", "restarts", "split_stride", "starts")

#: Every key a ``POST /partition`` body may carry.  Anything else is a
#: 400 — silently ignoring a typo like ``retries`` would accept the
#: request while quietly not doing what the caller asked.
_BODY_FIELDS = frozenset(_REQUEST_FIELDS) | {
    "netlist", "net", "cache", "async", "priority", "max_retries",
    "deadline_s",
}

#: Every key a ``POST /partition/delta`` body may carry.
_DELTA_BODY_FIELDS = frozenset(_REQUEST_FIELDS) | {"base", "delta"}

#: Inbound ``X-Trace-Id`` values must look like ids, not payloads.
_TRACE_ID_RE = re.compile(r"[A-Za-z0-9_-]{1,64}$")


def _version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # pragma: no cover - metadata missing
        from .. import __version__

        return __version__


def _parse_body(doc: Dict[str, Any]) -> Tuple[Hypergraph, PartitionRequest]:
    """Extract the hypergraph and request from a ``POST /partition`` body."""
    if not isinstance(doc, dict):
        raise ReproError("request body must be a JSON object")
    unknown = sorted(set(doc) - _BODY_FIELDS)
    if unknown:
        raise ReproError(
            f"unknown request field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_BODY_FIELDS))})"
        )
    has_json = "netlist" in doc
    has_net = "net" in doc
    if has_json == has_net:
        raise ReproError(
            "give exactly one of 'netlist' (JSON document) or "
            "'net' (NET text)"
        )
    if has_json:
        h = from_json(doc["netlist"])
    else:
        if not isinstance(doc["net"], str):
            raise ReproError("'net' must be a string in NET text format")
        h = loads_net(doc["net"])
    config = {k: doc[k] for k in _REQUEST_FIELDS if k in doc}
    try:
        request = PartitionRequest.from_mapping(config)
    except TypeError as exc:
        raise ReproError(f"bad request config: {exc}") from None
    return h, request


#: Known literal routes for the ``route`` histogram label; ``/jobs/<id>``
#: collapses to one label value so per-job ids cannot explode the series
#: cardinality, and unknown paths share a single ``other`` bucket.
_LITERAL_ROUTES = frozenset(
    {
        "/partition",
        "/partition/delta",
        "/healthz",
        "/readyz",
        "/metrics",
        "/debug/slow",
    }
)


def _route_label(path: str) -> str:
    if path in _LITERAL_ROUTES:
        return path
    if path.startswith("/jobs/"):
        return "/jobs/{id}"
    return "other"


class AccessLog:
    """Thread-safe JSON-lines structured log for the HTTP layer.

    Two entry types share the stream: ``access`` (one line per handled
    request) and ``error`` (handler crashes, connection faults).
    ``quiet`` suppresses *access* entries only — errors are always
    written, which is the whole point of replacing the old silenced
    ``log_message`` path.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        path: Optional[str] = None,
        quiet: bool = False,
    ):
        self.quiet = quiet
        self._lock = threading.Lock()
        self._owns_stream = path is not None
        if path is not None:
            self._stream: IO[str] = open(path, "a", encoding="utf-8")
        else:
            self._stream = stream if stream is not None else sys.stderr

    def _write(self, entry: Dict[str, Any]) -> None:
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):  # closed/broken stream
                pass

    def access(self, **fields: Any) -> None:
        if self.quiet:
            return
        entry = {
            "type": "access",
            "time": datetime.now(timezone.utc).isoformat(
                timespec="milliseconds"
            ),
        }
        entry.update(fields)
        self._write(entry)

    def error(self, **fields: Any) -> None:
        entry = {
            "type": "error",
            "time": datetime.now(timezone.utc).isoformat(
                timespec="milliseconds"
            ),
        }
        entry.update(fields)
        self._write(entry)

    def close(self) -> None:
        if self._owns_stream:
            try:
                self._stream.close()
            except OSError:  # pragma: no cover - close race
                pass


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's engine.  One instance per request."""

    server_version = "repro-serve/" + _version()
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def _send_json(
        self,
        status: int,
        doc: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(doc, sort_keys=True).encode("utf-8")
        self._send_bytes(
            status, body, "application/json", extra_headers=extra_headers
        )

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._status = status
        self._bytes_sent = len(body)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Trace-Id", self._trace_id)
        if extra_headers:
            for header, value in extra_headers.items():
                self.send_header(header, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def log_message(self, format: str, *args: Any) -> None:
        # Replaced by the structured access log written in _handle();
        # BaseHTTPRequestHandler's per-request stderr line is redundant.
        return

    def log_error(self, format: str, *args: Any) -> None:
        # http.server routes protocol-level errors here — keep them in
        # the structured stream instead of dropping them (the old
        # quiet-mode log_message swallowed these entirely).
        self.server.access_log.error(
            where="protocol",
            client=self.address_string(),
            error=format % args,
        )

    # ------------------------------------------------------------------
    def _handle(self, method: str, fn: Any) -> None:
        """One request: trace ingress, dispatch, access log, histogram."""
        header = (self.headers.get("X-Trace-Id") or "").strip()
        self._trace_id = (
            header if _TRACE_ID_RE.match(header) else new_trace_id()
        )
        self._status = 0
        self._bytes_sent = 0
        self._provenance: Optional[Tuple[str, bool]] = None
        split = urlsplit(self.path)
        self._route_path = split.path
        self._query = {
            k: v[-1] for k, v in parse_qs(split.query).items()
        }
        engine: PartitionEngine = self.server.engine
        start = time.perf_counter()
        self.server.request_started()
        try:
            if self.server.draining:
                # The listener is closed; this request arrived on an
                # already-open (keep-alive) connection after drain
                # started, so it was never accepted work.
                self.close_connection = True
                self._send_json(
                    503,
                    {"error": "server is draining"},
                    extra_headers={"Retry-After": "1"},
                )
            else:
                fn()
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-response; nothing left to send.
            self._status = self._status or 499
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.server.access_log.error(
                trace_id=self._trace_id,
                method=method,
                path=self.path,
                error=f"{type(exc).__name__}: {exc}",
            )
            try:
                self._send_error_json(
                    500,
                    f"internal error ({type(exc).__name__}); "
                    f"trace_id {self._trace_id}",
                )
            except OSError:  # pragma: no cover - response already dead
                pass
        finally:
            duration = time.perf_counter() - start
            engine.hists.observe(
                "http.request.duration_seconds",
                duration,
                method=method,
                route=_route_label(self._route_path),
            )
            entry: Dict[str, Any] = {
                "trace_id": self._trace_id,
                "method": method,
                "path": self.path,
                "status": self._status,
                "bytes": self._bytes_sent,
                "duration_s": round(duration, 6),
            }
            if self._provenance is not None:
                entry["source"], entry["cached"] = self._provenance
            if self._status == 429:
                entry["rejected"] = True
            self.server.access_log.access(**entry)
            self.server.request_finished()

    def do_GET(self) -> None:
        self._handle("GET", self._get)

    def do_POST(self) -> None:
        self._handle("POST", self._post)

    def do_DELETE(self) -> None:
        self._handle("DELETE", self._delete)

    # ------------------------------------------------------------------
    def _get(self) -> None:
        engine: PartitionEngine = self.server.engine
        path = self._route_path
        if path == "/healthz":
            parallel = engine.parallel or ParallelConfig()
            self._send_json(
                200,
                {
                    "status": "ok",
                    "version": _version(),
                    "uptime_s": round(
                        time.monotonic() - self.server.started_at, 3
                    ),
                    "workers": parallel.effective_workers(),
                    "backend": parallel.backend,
                    "cache": engine.cache is not None,
                },
            )
            return
        if path == "/readyz":
            self._readyz(engine)
            return
        if path == "/metrics":
            self._metrics(engine)
            return
        if path == "/debug/slow":
            self._debug_slow(engine)
            return
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            job = engine.scheduler.get(job_id)
            if job is None:
                self._send_error_json(404, f"unknown job {job_id!r}")
                return
            self._send_json(200, job.record())
            return
        self._send_error_json(404, f"unknown path {path!r}")

    def _readyz(self, engine: PartitionEngine) -> None:
        """Readiness: can this instance *usefully* take traffic now?

        Liveness (``/healthz``) answers "is the process up"; this
        answers "will a request actually succeed" — a read-only cache
        directory or a backed-up job queue should pull the instance out
        of rotation, not keep silently degrading.
        """
        checks: Dict[str, Dict[str, Any]] = {}
        if engine.cache is not None:
            ok, detail = engine.cache.check_disk_writable()
            checks["cache"] = {"ok": ok, "detail": detail}
        else:
            checks["cache"] = {"ok": True, "detail": "no cache configured"}
        depth = engine.queue_depth()
        bound = self.server.ready_queue_bound
        checks["jobs"] = {
            "ok": depth <= bound,
            "detail": f"{depth} pending (bound {bound})",
        }
        ready = all(check["ok"] for check in checks.values())
        self._send_json(
            200 if ready else 503,
            {"status": "ready" if ready else "unready", "checks": checks},
        )

    def _metrics(self, engine: PartitionEngine) -> None:
        doc = engine.metrics()
        fmt = self._query.get("format", "").lower()
        accept = self.headers.get("Accept", "")
        want_prometheus = fmt in ("prometheus", "prom", "text") or (
            not fmt
            and ("text/plain" in accept or "openmetrics" in accept)
        )
        if want_prometheus:
            self._send_bytes(
                200,
                render_prometheus(doc).encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._send_json(200, doc)

    def _debug_slow(self, engine: PartitionEngine) -> None:
        entries = engine.slow.entries()
        if self._query.get("format", "").lower() == "html":
            html = render_slow_html(entries)
            self._send_bytes(
                200, html.encode("utf-8"), "text/html; charset=utf-8"
            )
            return
        self._send_json(
            200,
            {
                "threshold_s": engine.slow.threshold_s,
                "capacity": engine.slow.capacity,
                "entries": entries,
            },
        )

    def _post(self) -> None:
        engine: PartitionEngine = self.server.engine
        if self._route_path not in ("/partition", "/partition/delta"):
            self._send_error_json(
                404, f"unknown path {self._route_path!r}"
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(400, "bad Content-Length header")
            return
        if length <= 0:
            self._send_error_json(400, "empty request body")
            return
        if length > _MAX_BODY_BYTES:
            self._send_error_json(
                400, f"request body exceeds {_MAX_BODY_BYTES} bytes"
            )
            return
        raw = self.rfile.read(length)
        depth = engine.queue_depth()
        if depth > self.server.ready_queue_bound:
            # Backpressure: the job queue is past the same bound that
            # already flips /readyz to 503 — shed the request now with
            # an honest retry hint instead of accepting unboundedly.
            # (The body was read above so the connection stays clean.)
            engine.reject()
            self._send_json(
                429,
                {
                    "error": (
                        f"job queue depth {depth} exceeds bound "
                        f"{self.server.ready_queue_bound}; retry later"
                    ),
                    "queue_depth": depth,
                },
                extra_headers={"Retry-After": "1"},
            )
            return
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return
        if self._route_path == "/partition/delta":
            self._post_delta(engine, doc)
            return
        try:
            h, request = _parse_body(doc)
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        use_cache = bool(doc.get("cache", True))
        if doc.get("async"):
            deadline = doc.get("deadline_s")
            job = engine.submit(
                h,
                request,
                priority=int(doc.get("priority", 0)),
                max_retries=int(doc.get("max_retries", 0)),
                deadline_s=float(deadline) if deadline is not None else None,
                use_cache=use_cache,
                trace_id=self._trace_id,
            )
            self._send_json(
                202,
                {
                    "job": job.id,
                    "status": job.status,
                    "trace_id": self._trace_id,
                },
            )
            return
        try:
            served = engine.partition(
                h, request, use_cache=use_cache, trace_id=self._trace_id
            )
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        self._provenance = (served.source, served.cached)
        self._send_json(200, served.response())

    def _post_delta(self, engine: PartitionEngine, doc: Any) -> None:
        """``POST /partition/delta``: base fingerprint + delta → warm
        result and the edited netlist's new fingerprint."""
        if not isinstance(doc, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return
        unknown = sorted(set(doc) - _DELTA_BODY_FIELDS)
        if unknown:
            self._send_error_json(
                400,
                f"unknown request field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(_DELTA_BODY_FIELDS))})",
            )
            return
        base = doc.get("base")
        if not isinstance(base, str) or not base:
            self._send_error_json(
                400,
                "'base' must be a fingerprint string from a prior "
                "POST /partition response",
            )
            return
        delta_doc = doc.get("delta")
        if not isinstance(delta_doc, dict):
            self._send_error_json(
                400, "'delta' must be a netlist-delta JSON object"
            )
            return
        config = {k: doc[k] for k in _REQUEST_FIELDS if k in doc}
        try:
            request = PartitionRequest.from_mapping(config)
        except TypeError as exc:
            self._send_error_json(400, f"bad request config: {exc}")
            return
        try:
            served = engine.partition_delta(
                base, delta_doc, request, trace_id=self._trace_id
            )
        except SessionMissError as exc:
            self._send_json(
                404,
                {
                    "error": str(exc),
                    "reason": exc.reason,
                    "base": exc.fingerprint,
                },
            )
            return
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        self._provenance = (served.source, served.cached)
        self._send_json(200, served.response())

    def _delete(self) -> None:
        engine: PartitionEngine = self.server.engine
        path = self._route_path
        if not path.startswith("/jobs/"):
            self._send_error_json(404, f"unknown path {path!r}")
            return
        job_id = path[len("/jobs/"):]
        if engine.scheduler.get(job_id) is None:
            self._send_error_json(404, f"unknown job {job_id!r}")
            return
        cancelled = engine.scheduler.cancel(job_id)
        # Re-read after cancel: a pending job is CANCELLED outright, a
        # running one only CANCELLING — report the honest state rather
        # than implying the work already stopped.
        job = engine.scheduler.get(job_id)
        status = job.status if job is not None else "cancelled"
        self._send_json(
            200, {"job": job_id, "cancelled": cancelled, "status": status}
        )


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Drain does its own bounded in-flight accounting; joining handler
    #: threads in server_close() would make shutdown unbounded again.
    block_on_close = False

    def __init__(
        self,
        address,
        engine: PartitionEngine,
        access_log: Optional[AccessLog] = None,
        ready_queue_bound: int = 64,
    ):
        super().__init__(address, _Handler)
        self.engine = engine
        self.access_log = (
            access_log if access_log is not None else AccessLog(quiet=True)
        )
        self.ready_queue_bound = int(ready_queue_bound)
        self.started_at = time.monotonic()
        self.draining = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Condition(self._inflight_lock)

    # -- in-flight request accounting (drives graceful drain) ----------
    def request_started(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def request_finished(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Graceful shutdown: stop accepts, finish in-flight work, close.

        Stops the accept loop (new connections are refused; requests on
        already-open connections get 503), then waits — bounded by
        ``timeout_s`` — for every in-flight HTTP request to complete
        and the job scheduler to finish pending/running jobs.  Finally
        closes the listener and flushes/closes the access log.

        Returns ``True`` when everything finished inside the budget,
        ``False`` when the timeout expired with work still running
        (the work is abandoned to daemon threads, as before).
        """
        self.draining = True
        self.shutdown()  # blocks until the serve_forever loop exits
        self._drain_backlog()
        deadline = time.monotonic() + max(0.0, float(timeout_s))
        clean = True
        with self._inflight_lock:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    clean = False
                    break
                self._idle.wait(remaining)
        while clean and self.engine.jobs_outstanding() > 0:
            if time.monotonic() >= deadline:
                clean = False
                break
            time.sleep(0.02)
        self.server_close()  # closes the socket and the access log
        return clean

    def _drain_backlog(self) -> int:
        """Answer connections the kernel had already completed into the
        listen backlog when the accept loop stopped.

        Those clients connected successfully before the listener closed,
        so they deserve an honest ``503 Retry-After`` (``draining`` is
        already set) rather than the TCP reset ``server_close()`` would
        hand them.  Served synchronously — no handler threads to race
        the in-flight accounting — with a one-second socket timeout so a
        connected-but-silent peer cannot stall the drain."""
        served = 0
        try:
            self.socket.setblocking(False)
        except OSError:
            return served
        while True:
            try:
                request, client_address = self.socket.accept()
            except (BlockingIOError, OSError):
                break
            served += 1
            try:
                request.settimeout(1.0)
                self.finish_request(request, client_address)
            except Exception:
                self.handle_error(request, client_address)
            finally:
                self.shutdown_request(request)
        return served

    def handle_error(self, request, client_address) -> None:
        # Connection-layer failures (the per-request 500 path never
        # reaches here).  Client disconnects are routine, not errors.
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            return
        self.access_log.error(
            where="connection",
            client=f"{client_address[0]}:{client_address[1]}",
            error=f"{type(exc).__name__}: {exc}",
        )

    def server_close(self) -> None:
        super().server_close()
        self.access_log.close()


def create_server(
    engine: Optional[PartitionEngine] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    access_log: Optional[AccessLog] = None,
    ready_queue_bound: int = 64,
) -> _Server:
    """Build a ready-to-run server (``port=0`` picks an ephemeral port).

    Call ``serve_forever()`` on the result (typically in a thread for
    tests) and ``shutdown()`` / ``server_close()`` to stop it.  The
    bound port is ``server.server_address[1]``.

    ``quiet`` suppresses per-request *access* entries on the default
    stderr log; error entries are always written.  Pass an
    :class:`AccessLog` to control the destination (it overrides
    ``quiet``).
    """
    if engine is None:
        engine = PartitionEngine(cache=ResultCache())
    if access_log is None:
        access_log = AccessLog(quiet=quiet)
    return _Server(
        (host, port),
        engine,
        access_log=access_log,
        ready_queue_bound=ready_queue_bound,
    )


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-serve`` — run the partitioning service until interrupted."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve ratio-cut partitioning over HTTP with "
        "content-addressed result caching.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8377,
        help="listen port (0 = ephemeral; default 8377)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="disk cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="keep results only in the in-memory LRU",
    )
    parser.add_argument(
        "--memory-budget", type=int, default=None, metavar="BYTES",
        help="in-memory cache byte budget (default 32 MiB)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker pool size for the partitioners' parallel fan-outs "
        "(default: $REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="parallel backend (default: $REPRO_BACKEND)",
    )
    parser.add_argument(
        "--core", choices=CORES, default=None,
        help="hypergraph core representation for computes: dict "
        "(reference) or csr (vectorised flat arrays).  Served results "
        "are bit-identical either way, and cache entries are shared "
        "across cores; default: $REPRO_CORE or dict",
    )
    parser.add_argument(
        "--access-log", metavar="PATH", default=None,
        help="append JSON-lines access/error log entries to PATH "
        "(default: stderr)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-request access log entries "
        "(errors are always logged)",
    )
    parser.add_argument(
        "--slow-threshold", type=float, default=1.0, metavar="SECONDS",
        help="requests at least this slow leave a full-trace exemplar "
        "at GET /debug/slow (default 1.0)",
    )
    parser.add_argument(
        "--memprof", action="store_true",
        help="attribute Python-heap memory to every request's span tree "
        "(tracemalloc; measurably slows allocation-heavy compute) — "
        "slow-log exemplars and /metrics gain memory detail",
    )
    parser.add_argument(
        "--ready-queue-bound", type=int, default=64, metavar="N",
        help="GET /readyz reports unready — and POST /partition starts "
        "returning 429 with Retry-After — when more than N jobs are "
        "queued (default 64)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="on SIGTERM/SIGINT: stop accepting, wait up to this long "
        "for in-flight requests and queued jobs to finish, then close "
        "(default 10.0)",
    )
    args = parser.parse_args(argv)

    cache_kwargs: Dict[str, Any] = {
        "disk_dir": args.cache_dir,
        "use_disk": not args.no_disk_cache,
    }
    if args.memory_budget is not None:
        cache_kwargs["memory_budget"] = args.memory_budget
    try:
        if args.core:
            os.environ["REPRO_CORE"] = args.core
        engine = PartitionEngine(
            cache=ResultCache(**cache_kwargs),
            parallel=resolve_parallel(args.workers, args.backend),
            slow_threshold_s=args.slow_threshold,
            memprof=args.memprof,
            core=args.core,
        )
        access_log = AccessLog(path=args.access_log, quiet=args.quiet)
        server = create_server(
            engine,
            host=args.host,
            port=args.port,
            access_log=access_log,
            ready_queue_bound=args.ready_queue_bound,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    host, port = server.server_address[:2]
    print(
        f"repro-serve {_version()} listening on http://{host}:{port} "
        f"(POST /partition, GET /jobs/<id>, /healthz, /readyz, /metrics, "
        f"/debug/slow)",
        file=sys.stderr,
    )

    # Graceful drain: SIGTERM/SIGINT stop the accept loop, let in-flight
    # requests and queued jobs finish (bounded by --drain-timeout), then
    # flush and close the access log.  serve_forever runs in a worker
    # thread so the main thread stays free to receive signals.
    stop = threading.Event()

    def _on_signal(signum: int, frame: Any) -> None:  # pragma: no cover
        stop.set()

    import signal

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass
    serve_thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    serve_thread.start()
    try:
        while not stop.wait(0.2):
            pass
    except KeyboardInterrupt:
        pass
    print(
        f"draining (up to {args.drain_timeout:g}s for in-flight work)",
        file=sys.stderr,
    )
    clean = server.drain(args.drain_timeout)
    serve_thread.join(5.0)
    if not clean:
        print(
            "drain timeout expired with work still in flight",
            file=sys.stderr,
        )
        return 1
    print("drained cleanly", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(serve_main())
