"""A small thread-backed job scheduler for partitioning requests.

Jobs are callables submitted with a priority, an optional deadline, and
a bounded retry budget.  A fixed pool of daemon worker threads drains a
priority queue (highest priority first; FIFO within a priority level).
Each job carries a full status record — queued/running timestamps,
attempt count, result or error text — that the HTTP layer serves at
``GET /jobs/<id>``.

Semantics worth stating precisely:

* **Deadlines** are *start* deadlines: a job still queued when its
  deadline passes is marked ``expired`` and never runs.  Python threads
  cannot be safely killed, so a job that has already started is allowed
  to finish (the engine's work units are seconds-scale).
* **Retries** re-queue the job after an exponential backoff
  (``backoff_s * 2**(attempt-1)``) at the same priority.  Only job
  *exceptions* trigger retries; cancellation and expiry do not.
* **Cancellation** flips a pending job to ``cancelled``; the queue
  entry is abandoned lazily when a worker dequeues it.  A *running*
  job cannot be killed (Python threads), so cancelling one marks it
  ``cancelling``: the worker lets the work finish, then resolves the
  job to ``cancelled`` — its result is discarded and retries are
  suppressed.  ``DELETE /jobs/<id>`` reports the post-cancel status
  honestly instead of pretending a running job was stopped.

Counters: ``service.jobs.submitted`` / ``completed`` / ``failed`` /
``retried`` / ``cancelled`` / ``expired`` are mirrored into
:mod:`repro.obs` (no-ops while tracing is off) and tallied locally for
``/metrics``.  Queue-wait latency (dequeue minus submit) is recorded in
the always-on ``service.job.queue_wait_seconds`` histogram, labelled by
job label.  Jobs carry the submitting request's ``trace_id`` so async
results stay attributable end-to-end.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .. import obs

__all__ = ["Job", "JobScheduler", "JOB_STATES"]

#: The job lifecycle vocabulary.
PENDING = "pending"
RUNNING = "running"
#: Cancel arrived while the job was running: the work is finishing
#: (threads cannot be killed) and will resolve to ``cancelled``.
CANCELLING = "cancelling"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"
EXPIRED = "expired"

JOB_STATES = (
    PENDING, RUNNING, CANCELLING, SUCCEEDED, FAILED, CANCELLED, EXPIRED
)

_TERMINAL = frozenset({SUCCEEDED, FAILED, CANCELLED, EXPIRED})


@dataclass
class Job:
    """One unit of work and its full lifecycle record."""

    id: str
    fn: Callable[[], Any]
    priority: int = 0
    max_retries: int = 0
    deadline_s: Optional[float] = None
    label: str = ""
    trace_id: str = ""
    status: str = PENDING
    attempts: int = 0
    result: Any = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.status in _TERMINAL

    def record(self) -> Dict[str, Any]:
        """A JSON-safe status document (what ``GET /jobs/<id>`` serves)."""
        now = time.monotonic()
        doc: Dict[str, Any] = {
            "id": self.id,
            "label": self.label,
            "trace_id": self.trace_id,
            "status": self.status,
            "priority": self.priority,
            "attempts": self.attempts,
            "max_retries": self.max_retries,
            "queued_s": round(
                (self.started_at or now) - self.submitted_at, 6
            ),
        }
        if self.started_at is not None:
            doc["running_s"] = round(
                (self.finished_at or now) - self.started_at, 6
            )
        if self.error is not None:
            doc["error"] = self.error
        if self.status == SUCCEEDED:
            doc["result"] = self.result
        return doc


class JobScheduler:
    """Priority-queue scheduler over a fixed daemon thread pool."""

    def __init__(
        self,
        workers: int = 2,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        hists: Optional[obs.HistogramSet] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        #: Where queue-wait latency is recorded (the engine passes its
        #: set so job and request distributions share one ``/metrics``).
        self.hists = hists if hists is not None else obs.HistogramSet()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: List[Any] = []  # (-priority, seq, not_before, job)
        self._seq = itertools.count()
        self._jobs: Dict[str, Job] = {}
        self._done = threading.Condition(self._lock)
        self._shutdown = False
        self.counts: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "retried": 0,
            "cancelled": 0,
            "expired": 0,
        }
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[[], Any],
        priority: int = 0,
        max_retries: int = 0,
        deadline_s: Optional[float] = None,
        label: str = "",
        job_id: Optional[str] = None,
        trace_id: str = "",
    ) -> Job:
        """Queue ``fn`` and return its :class:`Job` handle."""
        job = Job(
            id=job_id or uuid.uuid4().hex[:12],
            fn=fn,
            priority=int(priority),
            max_retries=int(max_retries),
            deadline_s=deadline_s,
            label=label,
            trace_id=trace_id,
        )
        with self._lock:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            if job.id in self._jobs:
                raise ValueError(f"duplicate job id {job.id!r}")
            self._jobs[job.id] = job
            self._push_locked(job, not_before=0.0)
            self.counts["submitted"] += 1
            self._wakeup.notify()
        obs.incr("service.jobs.submitted")
        return job

    def _push_locked(self, job: Job, not_before: float) -> None:
        heapq.heappush(
            self._queue, (-job.priority, next(self._seq), not_before, job)
        )

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Request cancellation of a job; finished jobs are left alone.

        A pending job is cancelled immediately.  A running job is
        marked ``cancelling`` — the work finishes (threads cannot be
        killed safely) and the worker then resolves it to
        ``cancelled``, discarding the result and suppressing retries.
        Returns ``True`` when the cancellation took effect (including
        a repeat cancel of an already-``cancelling`` job), ``False``
        for unknown or already-terminal jobs.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status in _TERMINAL:
                return False
            if job.status == CANCELLING:
                return True  # idempotent repeat
            if job.status == RUNNING:
                job.status = CANCELLING
                return True
            job.status = CANCELLED
            job.finished_at = time.monotonic()
            self.counts["cancelled"] += 1
            self._done.notify_all()
        obs.incr("service.jobs.cancelled")
        return True

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            job = self._jobs[job_id]
            while not job.done:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    break
                self._done.wait(remaining)
            return job

    def snapshot(self) -> Dict[str, Any]:
        """Queue depth and lifetime tallies for ``/metrics``."""
        with self._lock:
            pending = sum(
                1 for j in self._jobs.values() if j.status == PENDING
            )
            running = sum(
                1 for j in self._jobs.values() if j.status == RUNNING
            )
            cancelling = sum(
                1 for j in self._jobs.values() if j.status == CANCELLING
            )
            counts = dict(self.counts)
        counts.update(
            pending=pending, running=running, cancelling=cancelling
        )
        return counts

    def shutdown(self) -> None:
        """Stop the workers; pending jobs are left un-run."""
        with self._lock:
            self._shutdown = True
            self._wakeup.notify_all()

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._lock:
                job = None
                while job is None:
                    if self._shutdown:
                        return
                    job, wait_s = self._next_runnable_locked()
                    if job is None:
                        self._wakeup.wait(wait_s)
                job.status = RUNNING
                job.started_at = time.monotonic()
                job.attempts += 1
                queue_wait = job.started_at - job.submitted_at
            self.hists.observe(
                "service.job.queue_wait_seconds",
                queue_wait,
                label=job.label or "unlabelled",
            )
            self._run_one(job)

    def _next_runnable_locked(self):
        """Pop the best runnable job, expiring stale ones on the way.

        Returns ``(job, _)`` or ``(None, wait_seconds)`` when nothing is
        runnable yet (backoff delay pending or queue empty).
        """
        now = time.monotonic()
        wait_s: Optional[float] = None
        deferred = []
        job = None
        while self._queue:
            neg_priority, seq, not_before, candidate = heapq.heappop(
                self._queue
            )
            if candidate.status != PENDING:
                continue  # cancelled while queued
            if (
                candidate.deadline_s is not None
                and now - candidate.submitted_at > candidate.deadline_s
            ):
                candidate.status = EXPIRED
                candidate.error = (
                    f"deadline of {candidate.deadline_s}s passed "
                    "before the job started"
                )
                candidate.finished_at = now
                self.counts["expired"] += 1
                obs.incr("service.jobs.expired")
                self._done.notify_all()
                continue
            if not_before > now:
                deferred.append((neg_priority, seq, not_before, candidate))
                wait_s = (
                    not_before - now
                    if wait_s is None
                    else min(wait_s, not_before - now)
                )
                continue
            job = candidate
            break
        for item in deferred:
            heapq.heappush(self._queue, item)
        return job, wait_s

    def _resolve_cancelled_locked(self, job: Job, note: str) -> None:
        """Finish a ``cancelling`` job as ``cancelled`` (work is done)."""
        job.status = CANCELLED
        job.error = note
        job.result = None
        job.finished_at = time.monotonic()
        self.counts["cancelled"] += 1
        self._done.notify_all()

    def _run_one(self, job: Job) -> None:
        try:
            result = job.fn()
        except Exception as exc:
            with self._lock:
                if job.status == CANCELLING:
                    # Cancelled mid-run: no retries, honest final state.
                    self._resolve_cancelled_locked(
                        job,
                        "cancelled while running (work then raised "
                        f"{type(exc).__name__})",
                    )
                    obs.incr("service.jobs.cancelled")
                    return
                if job.attempts <= job.max_retries:
                    job.status = PENDING
                    delay = min(
                        self.backoff_s * (2 ** (job.attempts - 1)),
                        self.max_backoff_s,
                    )
                    self.counts["retried"] += 1
                    self._push_locked(
                        job, not_before=time.monotonic() + delay
                    )
                    self._wakeup.notify()
                    retried = True
                else:
                    job.status = FAILED
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.finished_at = time.monotonic()
                    self.counts["failed"] += 1
                    retried = False
                self._done.notify_all()
            obs.incr(
                "service.jobs.retried" if retried else "service.jobs.failed"
            )
        else:
            with self._lock:
                if job.status == CANCELLING:
                    self._resolve_cancelled_locked(
                        job,
                        "cancelled while running "
                        "(work completed; result discarded)",
                    )
                    cancelled = True
                else:
                    job.result = result
                    job.status = SUCCEEDED
                    job.finished_at = time.monotonic()
                    self.counts["completed"] += 1
                    self._done.notify_all()
                    cancelled = False
            obs.incr(
                "service.jobs.cancelled"
                if cancelled
                else "service.jobs.completed"
            )
